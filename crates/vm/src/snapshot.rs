//! Crash-safe persistence of warm translation state.
//!
//! A VM restart normally pays the full translation bill again: every memo
//! entry and every cached control program is rebuilt from scratch. This
//! module snapshots the two warm stores — the translation memo
//! ([`crate::memo`]) and the code cache ([`crate::cache`]) — into a
//! versioned byte stream and restores them on the next boot, so a restarted
//! service replays instead of recomputing.
//!
//! # Trust model
//!
//! A snapshot file is **untrusted input**, exactly like a binary module
//! (DESIGN.md §9): it may be truncated by a crash mid-write, bit-rotted on
//! disk, produced by an older build with a different cost model, or forged
//! outright. The restore path therefore promises:
//!
//! 1. **No panic, ever.** Every read is bounds-checked, every count is
//!    validated against the bytes that remain, and every failure is a typed
//!    [`EntryReject`].
//! 2. **No invalid state.** An entry only enters the live memo/cache after
//!    it re-passes the same validators a fresh translation would:
//!    [`veal_ir::verify_dfg`] plus a content-hash cross-check on the graph,
//!    [`veal_sched::verify_schedule`] with zero defects on the schedule,
//!    [`crate::verify::verify_priority`] on any stored static order,
//!    register-map bounds checks, and a fingerprint gate against the live
//!    [`Translator`] (or family fingerprint). Derived fields the session
//!    relies on for accounting (`control_words`, `accel_ops`, cache bytes)
//!    are **recomputed** from the validated structure, never trusted, so a
//!    forged snapshot cannot overcommit the cache byte budget.
//! 3. **Per-entry salvage.** A corrupt, stale, or malformed entry is
//!    counted and skipped; it never aborts the restore. A wholly bad
//!    snapshot degrades gracefully to a cold start ([`RestoreReport`]
//!    says which happened).
//!
//! What it deliberately does **not** promise is *authenticity*: the
//! per-section FNV-1a checksum catches corruption, not adversaries — anyone
//! who can edit the file can reseal it ([`crate::binfmt::reseal_section`]).
//! A resealed forgery that survives re-validation is, by construction, a
//! semantically valid entry (a real graph with a real defect-free
//! schedule); at worst it carries wrong-but-plausible cost accounting. It
//! can never crash the VM, admit an invalid schedule, or breach a budget.
//! Deployments that need authenticity should wrap the file in a real MAC.
//!
//! # Layout
//!
//! Little endian: magic `VSNP`, version u16, then the same
//! `tag u8, len u32, checksum u64, payload` section frames as the binary
//! module format (the framing code is shared), terminated by [`SNAP_END`].
//! Unlike a module, a tag may repeat: each memo/cache entry rides in its
//! own section so one flipped bit costs one entry, not the file. The
//! [`SNAP_META`] section is advisory (counts and fingerprints for
//! `vealc snapshot inspect`); restore ignores what it claims.
//!
//! Restore bumps the observability counters `vm.snapshot.restored`,
//! `vm.snapshot.salvaged`, and `vm.snapshot.rejected`.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Arc;

use veal_accel::resources::ALL_RESOURCES;
use veal_accel::{AcceleratorConfig, CapabilityError};
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::meter::ALL_PHASES;
use veal_ir::streams::{SeparationError, StreamSummary};
use veal_ir::{verify_dfg, CostMeter, OpId, Opcode, PhaseBreakdown};
use veal_obs::metrics;
use veal_sched::{
    verify_schedule, ModuloSchedule, RegisterAssignment, RegisterPressure, ScheduleError,
    ScheduledLoop, SymbolicSchedule,
};

use crate::binfmt::{section_checksum, DecodeError, Reader, SectionRange, Writer};
use crate::cache::CodeCache;
use crate::memo::{MemoBackend, MemoEntry, MemoKey, MemoizedOutcome};
use crate::translator::{
    SymbolicBody, SymbolicTranslation, TranslatedLoop, TranslationError, Translator,
};
use crate::verify::{verify_priority, HintError, HintVerdict};

/// Snapshot magic bytes.
pub const SNAP_MAGIC: &[u8; 4] = b"VSNP";
/// Snapshot format version.
pub const SNAP_VERSION: u16 = 1;

/// End-of-stream marker tag.
pub const SNAP_END: u8 = 0;
/// Advisory metadata: fingerprints and entry counts.
pub const SNAP_META: u8 = 1;
/// One point memo entry ([`MemoEntry::Point`]).
pub const SNAP_POINT: u8 = 2;
/// One family memo entry ([`MemoEntry::Family`]).
pub const SNAP_FAMILY: u8 = 3;
/// One code-cache entry.
pub const SNAP_CACHE: u8 = 4;

/// Loop lengths above this are rejected as implausible (a forged length
/// would otherwise inflate replayed cost accounting without bound).
const MAX_LOOP_LEN: u64 = 1 << 24;

/// Why warm state could not be serialized: a structural count or id does
/// not fit the format's fixed-width fields.
///
/// Encoding only fails on implausibly oversized state — a graph or memo
/// with more than `u32::MAX` elements — but a silent truncating cast there
/// would alias `OpId`s across the wrap and corrupt the snapshot
/// undetectably (the per-section checksum seals the *truncated* bytes), so
/// the bound is checked and the failure typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// Which field overflowed.
    pub what: &'static str,
    /// The value that does not fit.
    pub value: u64,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} does not fit in u32", self.what, self.value)
    }
}

impl std::error::Error for EncodeError {}

/// Checked `usize -> u32` narrowing for the fixed-width count/id fields.
fn fit_u32(what: &'static str, v: usize) -> Result<u32, EncodeError> {
    u32::try_from(v).map_err(|_| EncodeError {
        what,
        value: v as u64,
    })
}

/// Why one snapshot entry was refused (the restore itself continues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryReject {
    /// The payload bytes do not decode.
    Decode(DecodeError),
    /// The entry was produced under a different translator/family
    /// fingerprint than the live one — stale, not corrupt.
    StaleFingerprint {
        /// Fingerprint stored with the entry.
        stored: u64,
        /// Fingerprint of the live translator (or family).
        live: u64,
    },
    /// The stored graph hash disagrees with the hash of the decoded graph.
    ContentHash {
        /// Hash stored in the payload.
        stored: u64,
        /// Hash recomputed over the decoded graph.
        recomputed: u64,
    },
    /// The decoded schedule fails re-verification against the live config.
    BadSchedule {
        /// Number of defects [`veal_sched::verify_schedule`] reported.
        defects: usize,
    },
    /// A stored static order fails [`crate::verify::verify_priority`].
    BadStaticOrder(HintError),
    /// The register map names an op outside the decoded graph.
    RegisterOutOfRange(OpId),
}

impl From<DecodeError> for EntryReject {
    fn from(e: DecodeError) -> Self {
        EntryReject::Decode(e)
    }
}

impl fmt::Display for EntryReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryReject::Decode(e) => write!(f, "payload does not decode: {e}"),
            EntryReject::StaleFingerprint { stored, live } => {
                write!(f, "stale fingerprint {stored:#018x} (live {live:#018x})")
            }
            EntryReject::ContentHash { stored, recomputed } => {
                write!(
                    f,
                    "graph hash mismatch: stored {stored:#018x}, got {recomputed:#018x}"
                )
            }
            EntryReject::BadSchedule { defects } => {
                write!(f, "schedule fails re-verification with {defects} defect(s)")
            }
            EntryReject::BadStaticOrder(e) => write!(f, "static order invalid: {e}"),
            EntryReject::RegisterOutOfRange(id) => {
                write!(f, "register map names out-of-range op {}", id.index())
            }
        }
    }
}

impl std::error::Error for EntryReject {}

/// What a restore accomplished. `salvaged` frames were skipped on
/// checksum/framing damage; `rejected` frames decoded but failed semantic
/// re-validation or the fingerprint gate; `torn` means the stream ended
/// before its end marker (crash mid-write). None of these abort a restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Point memo entries restored.
    pub points: u64,
    /// Family memo entries restored.
    pub families: u64,
    /// Code-cache entries restored.
    pub cache_entries: u64,
    /// Sections skipped for checksum mismatch or unknown tag.
    pub salvaged: u64,
    /// Sections whose payload decoded but failed re-validation.
    pub rejected: u64,
    /// The stream ended without [`SNAP_END`] (torn write).
    pub torn: bool,
}

impl RestoreReport {
    /// Total entries that entered the live stores.
    #[must_use]
    pub fn restored(&self) -> u64 {
        self.points + self.families + self.cache_entries
    }

    /// Whether nothing was restored — the VM starts cold.
    #[must_use]
    pub fn is_cold(&self) -> bool {
        self.restored() == 0
    }
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restored {} (points {}, families {}, cache {}), salvaged {}, rejected {}{}",
            self.restored(),
            self.points,
            self.families,
            self.cache_entries,
            self.salvaged,
            self.rejected,
            if self.torn { ", torn" } else { "" }
        )
    }
}

/// The advisory [`SNAP_META`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Fingerprint of the translator the snapshot was taken under.
    pub translator_fp: u64,
    /// Family fingerprint, if the session ran in family mode.
    pub family_fp: Option<u64>,
    /// Point entries the writer claims to have emitted.
    pub points: u32,
    /// Family entries the writer claims to have emitted.
    pub families: u32,
    /// Cache entries the writer claims to have emitted.
    pub cache_entries: u32,
}

/// A checksum-walk summary of a snapshot, without decoding any entry
/// (what `vealc snapshot inspect` prints).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Decoded metadata section, if present and intact.
    pub meta: Option<SnapshotMeta>,
    /// Point sections with intact checksums.
    pub points: u64,
    /// Family sections with intact checksums.
    pub families: u64,
    /// Cache sections with intact checksums.
    pub cache_entries: u64,
    /// Sections with an unknown tag (skipped on restore).
    pub unknown: u64,
    /// Sections whose checksum does not match their payload.
    pub bad_sections: u64,
    /// The stream ended without [`SNAP_END`].
    pub torn: bool,
    /// Total snapshot size in bytes.
    pub total_bytes: usize,
}

// ---------------------------------------------------------------------------
// Leaf codecs. The encoders are infallible; every decoder is bounds-checked
// and returns a typed rejection. Derived quantities (control words, accel
// ops, cache bytes) are never serialized — the decoder recomputes them from
// the validated structure so a forged snapshot cannot skew accounting.
// ---------------------------------------------------------------------------

fn encode_breakdown(w: &mut Writer, b: &PhaseBreakdown) {
    for &p in ALL_PHASES {
        w.u64(b.get(p));
    }
}

fn decode_breakdown(r: &mut Reader) -> Result<PhaseBreakdown, EntryReject> {
    let mut b = PhaseBreakdown::default();
    for &p in ALL_PHASES {
        b.set(p, r.u64()?);
    }
    Ok(b)
}

fn encode_key(w: &mut Writer, key: &MemoKey) {
    w.u64(key.loop_hash);
    w.u64(key.translator_fp);
    w.u64(key.hints_fp);
}

fn decode_key(r: &mut Reader) -> Result<MemoKey, EntryReject> {
    Ok(MemoKey {
        loop_hash: r.u64()?,
        translator_fp: r.u64()?,
        hints_fp: r.u64()?,
    })
}

fn encode_hint_error(w: &mut Writer, e: &HintError) -> Result<(), EncodeError> {
    let op = |id: &OpId| fit_u32("diagnostic op id", id.index());
    match e {
        HintError::PriorityWrongLength { expected, got } => {
            w.u8(0);
            w.u64(*expected as u64);
            w.u64(*got as u64);
        }
        HintError::PriorityUnknownOp(id) => {
            w.u8(1);
            w.u32(op(id)?);
        }
        HintError::PriorityDuplicate(id) => {
            w.u8(2);
            w.u32(op(id)?);
        }
        HintError::CcaEmptyGroup => w.u8(3),
        HintError::CcaMemberOutOfRange(id) => {
            w.u8(4);
            w.u32(op(id)?);
        }
        HintError::CcaMemberNotSchedulable(id) => {
            w.u8(5);
            w.u32(op(id)?);
        }
        HintError::CcaDuplicateMember(id) => {
            w.u8(6);
            w.u32(op(id)?);
        }
        HintError::CcaIllegalGroup { group } => {
            w.u8(7);
            w.u64(*group as u64);
        }
    }
    Ok(())
}

fn decode_hint_error(r: &mut Reader) -> Result<HintError, EntryReject> {
    // The op ids here are diagnostic payloads, not indices into a live
    // graph, so they carry no bound.
    Ok(match r.u8()? {
        0 => HintError::PriorityWrongLength {
            expected: r.u64()? as usize,
            got: r.u64()? as usize,
        },
        1 => HintError::PriorityUnknownOp(OpId::new(r.u32()? as usize)),
        2 => HintError::PriorityDuplicate(OpId::new(r.u32()? as usize)),
        3 => HintError::CcaEmptyGroup,
        4 => HintError::CcaMemberOutOfRange(OpId::new(r.u32()? as usize)),
        5 => HintError::CcaMemberNotSchedulable(OpId::new(r.u32()? as usize)),
        6 => HintError::CcaDuplicateMember(OpId::new(r.u32()? as usize)),
        7 => HintError::CcaIllegalGroup {
            group: r.u64()? as usize,
        },
        _ => return Err(DecodeError::BadHint.into()),
    })
}

fn encode_check(w: &mut Writer, c: &Option<Result<(), HintError>>) -> Result<(), EncodeError> {
    match c {
        None => w.u8(0),
        Some(Ok(())) => w.u8(1),
        Some(Err(e)) => {
            w.u8(2);
            encode_hint_error(w, e)?;
        }
    }
    Ok(())
}

fn decode_check(r: &mut Reader) -> Result<Option<Result<(), HintError>>, EntryReject> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Ok(())),
        2 => Some(Err(decode_hint_error(r)?)),
        _ => return Err(DecodeError::BadHint.into()),
    })
}

fn encode_verdict(w: &mut Writer, v: &HintVerdict) -> Result<(), EncodeError> {
    encode_check(w, &v.priority)?;
    encode_check(w, &v.cca)
}

fn decode_verdict(r: &mut Reader) -> Result<HintVerdict, EntryReject> {
    Ok(HintVerdict {
        priority: decode_check(r)?,
        cca: decode_check(r)?,
    })
}

fn encode_separation_error(w: &mut Writer, e: &SeparationError) -> Result<(), EncodeError> {
    match e {
        SeparationError::NoBackBranch => w.u8(0),
        SeparationError::MultipleBranches => w.u8(1),
        SeparationError::ComplexControl => w.u8(2),
        SeparationError::ComplexAddress(id) => {
            w.u8(3);
            w.u32(fit_u32("diagnostic op id", id.index())?);
        }
        SeparationError::CallInLoop => w.u8(4),
    }
    Ok(())
}

fn decode_separation_error(r: &mut Reader) -> Result<SeparationError, EntryReject> {
    Ok(match r.u8()? {
        0 => SeparationError::NoBackBranch,
        1 => SeparationError::MultipleBranches,
        2 => SeparationError::ComplexControl,
        3 => SeparationError::ComplexAddress(OpId::new(r.u32()? as usize)),
        4 => SeparationError::CallInLoop,
        t => return Err(DecodeError::BadOpcode(t).into()),
    })
}

fn encode_pressure(w: &mut Writer, p: &RegisterPressure) {
    w.u64(p.int_live as u64);
    w.u64(p.fp_live as u64);
    w.u64(p.int_regs as u64);
    w.u64(p.fp_regs as u64);
}

fn decode_pressure(r: &mut Reader) -> Result<RegisterPressure, EntryReject> {
    Ok(RegisterPressure {
        int_live: r.u64()? as usize,
        fp_live: r.u64()? as usize,
        int_regs: r.u64()? as usize,
        fp_regs: r.u64()? as usize,
    })
}

fn encode_schedule_error(w: &mut Writer, e: &ScheduleError) {
    match e {
        ScheduleError::Capability(c) => {
            w.u8(0);
            match c {
                CapabilityError::TooManyLoadStreams { needed, available } => {
                    w.u8(0);
                    w.u64(*needed as u64);
                    w.u64(*available as u64);
                }
                CapabilityError::TooManyStoreStreams { needed, available } => {
                    w.u8(1);
                    w.u64(*needed as u64);
                    w.u64(*available as u64);
                }
            }
        }
        ScheduleError::MiiExceedsControlStore { mii, max_ii } => {
            w.u8(1);
            w.u32(*mii);
            w.u32(*max_ii);
        }
        ScheduleError::NoSchedule { tried_up_to } => {
            w.u8(2);
            w.u32(*tried_up_to);
        }
        ScheduleError::Registers(p) => {
            w.u8(3);
            encode_pressure(w, p);
        }
    }
}

fn decode_schedule_error(r: &mut Reader) -> Result<ScheduleError, EntryReject> {
    Ok(match r.u8()? {
        0 => {
            let sub = r.u8()?;
            let needed = r.u64()? as usize;
            let available = r.u64()? as usize;
            ScheduleError::Capability(match sub {
                0 => CapabilityError::TooManyLoadStreams { needed, available },
                1 => CapabilityError::TooManyStoreStreams { needed, available },
                t => return Err(DecodeError::BadOpcode(t).into()),
            })
        }
        1 => ScheduleError::MiiExceedsControlStore {
            mii: r.u32()?,
            max_ii: r.u32()?,
        },
        2 => ScheduleError::NoSchedule {
            tried_up_to: r.u32()?,
        },
        3 => ScheduleError::Registers(decode_pressure(r)?),
        t => return Err(DecodeError::BadOpcode(t).into()),
    })
}

/// Full-fidelity graph codec. The module format's node codec is lossy by
/// design (it erases dead slots and CCA membership, which a *loader*
/// re-derives); a snapshot must reproduce the post-rewrite graph
/// slot-for-slot or the memo's content hashes stop matching, so it carries
/// its own.
fn encode_dfg(w: &mut Writer, dfg: &Dfg) -> Result<(), EncodeError> {
    w.u32(fit_u32("graph node count", dfg.len())?);
    for i in 0..dfg.len() {
        let n = dfg.node(OpId::new(i));
        match n.kind {
            NodeKind::Op(op) => {
                w.u8(0);
                w.u8(op.encode());
            }
            NodeKind::LiveIn => w.u8(1),
            NodeKind::Const(v) => {
                w.u8(2);
                w.i64(v);
            }
        }
        w.u16(n.stream.unwrap_or(u16::MAX));
        let mut flags = 0u8;
        if n.live_out {
            flags |= 1;
        }
        if n.is_dead() {
            flags |= 2;
        }
        w.u8(flags);
        w.u32(fit_u32("cca member count", n.cca_members.len())?);
        for &m in &n.cca_members {
            w.u32(fit_u32("cca member id", m.index())?);
        }
    }
    w.u32(fit_u32("graph edge count", dfg.edges().len())?);
    for e in dfg.edges() {
        w.u32(fit_u32("edge source id", e.src.index())?);
        w.u32(fit_u32("edge target id", e.dst.index())?);
        w.u32(e.distance);
        w.u8(match e.kind {
            EdgeKind::Data => 0,
            EdgeKind::Mem => 1,
        });
    }
    w.u64(dfg.content_hash());
    Ok(())
}

fn decode_dfg(r: &mut Reader) -> Result<Dfg, EntryReject> {
    let nnodes = r.u32()? as usize;
    // Smallest possible node: kind tag + stream + flags + member count.
    if nnodes > r.remaining() / 8 {
        return Err(DecodeError::BadCount.into());
    }
    let mut dfg = Dfg::new();
    for _ in 0..nnodes {
        let kind = match r.u8()? {
            0 => {
                let b = r.u8()?;
                NodeKind::Op(Opcode::decode(b).ok_or(DecodeError::BadOpcode(b))?)
            }
            1 => NodeKind::LiveIn,
            2 => NodeKind::Const(r.i64()?),
            t => return Err(DecodeError::BadNodeKind(t).into()),
        };
        let id = dfg.add_node(kind);
        let stream = r.u16()?;
        let flags = r.u8()?;
        if flags > 3 {
            return Err(DecodeError::BadNodeKind(flags).into());
        }
        let nmembers = r.u32()? as usize;
        if nmembers > r.remaining() / 4 {
            return Err(DecodeError::BadCount.into());
        }
        let mut members = Vec::with_capacity(nmembers);
        for _ in 0..nmembers {
            let m = r.u32()? as usize;
            if m >= nnodes {
                return Err(DecodeError::BadHint.into());
            }
            members.push(OpId::new(m));
        }
        {
            let node = dfg.node_mut(id);
            if stream != u16::MAX {
                node.stream = Some(stream);
            }
            node.live_out = flags & 1 != 0;
            node.cca_members = members;
        }
        if flags & 2 != 0 {
            dfg.mark_dead(id);
        }
    }
    let nedges = r.u32()? as usize;
    // src + dst + distance + kind.
    if nedges > r.remaining() / 13 {
        return Err(DecodeError::BadCount.into());
    }
    for _ in 0..nedges {
        let src = r.u32()? as usize;
        let dst = r.u32()? as usize;
        if src >= nnodes || dst >= nnodes {
            return Err(DecodeError::BadEdge.into());
        }
        let distance = r.u32()?;
        let kind = match r.u8()? {
            0 => EdgeKind::Data,
            1 => EdgeKind::Mem,
            _ => return Err(DecodeError::BadEdge.into()),
        };
        dfg.add_edge(OpId::new(src), OpId::new(dst), distance, kind);
    }
    let stored = r.u64()?;
    verify_dfg(&dfg).map_err(|e| EntryReject::Decode(DecodeError::BadGraph(e)))?;
    let recomputed = dfg.content_hash();
    if recomputed != stored {
        return Err(EntryReject::ContentHash { stored, recomputed });
    }
    Ok(dfg)
}

fn encode_schedule(w: &mut Writer, s: &ModuloSchedule) -> Result<(), EncodeError> {
    let (ii, times, units) = s.raw_parts();
    w.u32(ii);
    w.u32(fit_u32("schedule slot count", times.len())?);
    for (&t, &(kind, unit)) in times.iter().zip(units) {
        w.i64(t);
        w.u8(kind.index() as u8);
        w.u64(unit as u64);
    }
    Ok(())
}

fn decode_schedule(
    r: &mut Reader,
    dfg: &Dfg,
    config: &AcceleratorConfig,
) -> Result<ModuloSchedule, EntryReject> {
    let ii = r.u32()?;
    let n = r.u32()? as usize;
    if n != dfg.len() {
        return Err(DecodeError::BadCount.into());
    }
    // time + resource kind + unit.
    if n > r.remaining() / 17 {
        return Err(DecodeError::BadCount.into());
    }
    let mut times = Vec::with_capacity(n);
    let mut units = Vec::with_capacity(n);
    for _ in 0..n {
        times.push(r.i64()?);
        let k = r.u8()?;
        let kind = *ALL_RESOURCES
            .get(k as usize)
            .ok_or(DecodeError::BadNodeKind(k))?;
        units.push((kind, r.u64()? as usize));
    }
    let schedule = ModuloSchedule::from_raw_parts(ii, times, units);
    let defects = verify_schedule(dfg, &schedule, config);
    if !defects.is_empty() {
        return Err(EntryReject::BadSchedule {
            defects: defects.len(),
        });
    }
    Ok(schedule)
}

fn encode_registers(w: &mut Writer, ra: &RegisterAssignment) -> Result<(), EncodeError> {
    encode_pressure(w, &ra.pressure);
    w.u64(ra.pinned_int as u64);
    w.u64(ra.pinned_fp as u64);
    let mut pairs = Vec::with_capacity(ra.assignment.len());
    for (&id, &reg) in &ra.assignment {
        pairs.push((fit_u32("register op id", id.index())?, reg));
    }
    pairs.sort_unstable();
    w.u32(fit_u32("register map size", pairs.len())?);
    for (i, reg) in pairs {
        w.u32(i);
        w.u16(reg);
    }
    Ok(())
}

fn decode_registers(r: &mut Reader, bound: usize) -> Result<RegisterAssignment, EntryReject> {
    let pressure = decode_pressure(r)?;
    let pinned_int = r.u64()? as usize;
    let pinned_fp = r.u64()? as usize;
    let n = r.u32()? as usize;
    // op id + register.
    if n > r.remaining() / 6 {
        return Err(DecodeError::BadCount.into());
    }
    let mut assignment = HashMap::with_capacity(n);
    for _ in 0..n {
        let i = r.u32()? as usize;
        if i >= bound {
            return Err(EntryReject::RegisterOutOfRange(OpId::new(i)));
        }
        assignment.insert(OpId::new(i), r.u16()?);
    }
    Ok(RegisterAssignment {
        pressure,
        pinned_int,
        pinned_fp,
        assignment,
    })
}

fn encode_translated(w: &mut Writer, t: &TranslatedLoop) -> Result<(), EncodeError> {
    encode_dfg(w, &t.dfg)?;
    w.u32(fit_u32("cca group count", t.cca_groups)?);
    encode_schedule(w, &t.scheduled.schedule)?;
    encode_registers(w, &t.scheduled.registers)?;
    w.u32(t.scheduled.mii);
    w.u32(fit_u32("load stream count", t.streams.loads)?);
    w.u32(fit_u32("store stream count", t.streams.stores)?);
    Ok(())
}

fn decode_translated(
    r: &mut Reader,
    config: &AcceleratorConfig,
) -> Result<TranslatedLoop, EntryReject> {
    let dfg = decode_dfg(r)?;
    let cca_groups = r.u32()? as usize;
    let schedule = decode_schedule(r, &dfg, config)?;
    let registers = decode_registers(r, dfg.len())?;
    let mii = r.u32()?;
    let streams = StreamSummary {
        loads: r.u32()? as usize,
        stores: r.u32()? as usize,
    };
    // Derived, never trusted: a forged control-word count would skew cache
    // budgets, a forged op count would skew stats.
    let control_words = schedule.control_words(config);
    let accel_ops = dfg.schedulable_ops().count();
    Ok(TranslatedLoop {
        dfg,
        scheduled: ScheduledLoop {
            schedule,
            registers,
            mii,
        },
        streams,
        control_words,
        cca_groups,
        accel_ops,
    })
}

fn encode_point(w: &mut Writer, key: &MemoKey, m: &MemoizedOutcome) -> Result<(), EncodeError> {
    encode_key(w, key);
    encode_breakdown(w, &m.breakdown);
    encode_verdict(w, &m.verdict)?;
    match &m.result {
        Ok(t) => {
            w.u8(0);
            encode_translated(w, t)?;
        }
        Err(TranslationError::Unsupported(e)) => {
            w.u8(1);
            encode_separation_error(w, e)?;
        }
        Err(TranslationError::Schedule(e)) => {
            w.u8(2);
            encode_schedule_error(w, e);
        }
    }
    Ok(())
}

fn decode_point(
    r: &mut Reader,
    live_fp: u64,
    config: &AcceleratorConfig,
) -> Result<(MemoKey, MemoEntry), EntryReject> {
    let key = decode_key(r)?;
    if key.translator_fp != live_fp {
        return Err(EntryReject::StaleFingerprint {
            stored: key.translator_fp,
            live: live_fp,
        });
    }
    let breakdown = decode_breakdown(r)?;
    let verdict = decode_verdict(r)?;
    let result = match r.u8()? {
        0 => Ok(Arc::new(decode_translated(r, config)?)),
        1 => Err(TranslationError::Unsupported(decode_separation_error(r)?)),
        2 => Err(TranslationError::Schedule(decode_schedule_error(r)?)),
        t => return Err(DecodeError::BadOpcode(t).into()),
    };
    Ok((
        key,
        MemoEntry::Point(MemoizedOutcome {
            result,
            breakdown,
            verdict,
        }),
    ))
}

fn encode_family(
    w: &mut Writer,
    key: &MemoKey,
    f: &SymbolicTranslation,
) -> Result<(), EncodeError> {
    encode_key(w, key);
    w.u64(f.loop_len as u64);
    encode_breakdown(w, &f.prefix);
    encode_verdict(w, &f.verdict)?;
    match &f.body {
        Ok(b) => {
            w.u8(0);
            encode_dfg(w, &b.dfg)?;
            w.u32(fit_u32("load stream count", b.summary.loads)?);
            w.u32(fit_u32("store stream count", b.summary.stores)?);
            w.u32(fit_u32("cca group count", b.cca_groups)?);
            match &b.static_order {
                None => w.u8(0),
                Some(order) => {
                    w.u8(1);
                    w.u32(fit_u32("static order length", order.len())?);
                    for &id in order {
                        w.u32(fit_u32("static order op id", id.index())?);
                    }
                }
            }
        }
        Err(e) => {
            w.u8(1);
            encode_separation_error(w, e)?;
        }
    }
    Ok(())
}

fn decode_family(r: &mut Reader, live_family_fp: u64) -> Result<(MemoKey, MemoEntry), EntryReject> {
    let key = decode_key(r)?;
    if key.translator_fp != live_family_fp {
        return Err(EntryReject::StaleFingerprint {
            stored: key.translator_fp,
            live: live_family_fp,
        });
    }
    let loop_len64 = r.u64()?;
    if loop_len64 > MAX_LOOP_LEN {
        return Err(DecodeError::BadCount.into());
    }
    let loop_len = loop_len64 as usize;
    let prefix = decode_breakdown(r)?;
    let verdict = decode_verdict(r)?;
    let body = match r.u8()? {
        0 => {
            let dfg = decode_dfg(r)?;
            let summary = StreamSummary {
                loads: r.u32()? as usize,
                stores: r.u32()? as usize,
            };
            let cca_groups = r.u32()? as usize;
            let static_order = match r.u8()? {
                0 => None,
                1 => {
                    let n = r.u32()? as usize;
                    if n > r.remaining() / 4 {
                        return Err(DecodeError::BadCount.into());
                    }
                    let mut order = Vec::with_capacity(n);
                    for _ in 0..n {
                        let i = r.u32()? as usize;
                        if i >= dfg.len() {
                            return Err(DecodeError::BadHint.into());
                        }
                        order.push(OpId::new(i));
                    }
                    // Same gate a fresh hint goes through; the throwaway
                    // meter keeps re-validation off the session's books.
                    verify_priority(&dfg, &order, &mut CostMeter::new())
                        .map_err(EntryReject::BadStaticOrder)?;
                    Some(order)
                }
                _ => return Err(DecodeError::BadHint.into()),
            };
            Ok(SymbolicBody {
                dfg,
                summary,
                cca_groups,
                static_order,
                // The symbolic caches are lazy and config-keyed; a fresh one
                // reproduces bit-identical concretizations, so they are
                // never serialized.
                sym: SymbolicSchedule::new(),
            })
        }
        1 => Err(decode_separation_error(r)?),
        t => return Err(DecodeError::BadOpcode(t).into()),
    };
    Ok((
        key,
        MemoEntry::Family(Arc::new(SymbolicTranslation {
            loop_len,
            prefix,
            verdict,
            body,
        })),
    ))
}

fn encode_cache_entry(
    w: &mut Writer,
    key: u64,
    translator_fp: u64,
    t: &TranslatedLoop,
) -> Result<(), EncodeError> {
    w.u64(key);
    w.u64(translator_fp);
    encode_translated(w, t)
}

fn decode_cache_entry(
    r: &mut Reader,
    live_fp: u64,
    config: &AcceleratorConfig,
) -> Result<(u64, TranslatedLoop), EntryReject> {
    let key = r.u64()?;
    let stored_fp = r.u64()?;
    if stored_fp != live_fp {
        return Err(EntryReject::StaleFingerprint {
            stored: stored_fp,
            live: live_fp,
        });
    }
    Ok((key, decode_translated(r, config)?))
}

fn encode_meta(w: &mut Writer, meta: &SnapshotMeta) {
    w.u64(meta.translator_fp);
    w.u64(meta.family_fp.unwrap_or(0));
    w.u32(meta.points);
    w.u32(meta.families);
    w.u32(meta.cache_entries);
}

fn decode_meta(r: &mut Reader) -> Result<SnapshotMeta, EntryReject> {
    let translator_fp = r.u64()?;
    let fam = r.u64()?;
    Ok(SnapshotMeta {
        translator_fp,
        family_fp: if fam == 0 { None } else { Some(fam) },
        points: r.u32()?,
        families: r.u32()?,
        cache_entries: r.u32()?,
    })
}

// ---------------------------------------------------------------------------
// Whole-snapshot operations.
// ---------------------------------------------------------------------------

/// Serializes warm state to a snapshot byte stream.
///
/// `memo_entries` and `cache_entries` come from the stores' sorted
/// `export_entries` accessors, so two snapshots of the same logical state
/// are byte-identical regardless of shard striping or insertion order.
///
/// # Errors
///
/// [`EncodeError`] when a count or id does not fit the format's
/// fixed-width fields — only possible on implausibly oversized state,
/// but typed rather than silently truncated (see [`EncodeError`]).
pub fn encode_warm_state(
    translator_fp: u64,
    family_fp: Option<u64>,
    memo_entries: &[(MemoKey, MemoEntry)],
    cache_entries: &[(u64, &Arc<TranslatedLoop>, usize)],
) -> Result<Vec<u8>, EncodeError> {
    let points = memo_entries
        .iter()
        .filter(|(_, e)| matches!(e, MemoEntry::Point(_)))
        .count();
    let points = fit_u32("memo point count", points)?;
    let families = fit_u32("memo entry count", memo_entries.len())? - points;
    let mut w = Writer::new();
    w.buf.extend_from_slice(SNAP_MAGIC);
    w.u16(SNAP_VERSION);
    let mut p = Writer::new();
    encode_meta(
        &mut p,
        &SnapshotMeta {
            translator_fp,
            family_fp,
            points,
            families,
            cache_entries: fit_u32("cache entry count", cache_entries.len())?,
        },
    );
    w.section(SNAP_META, &p.buf);
    for (key, entry) in memo_entries {
        let mut p = Writer::new();
        match entry {
            MemoEntry::Point(m) => {
                encode_point(&mut p, key, m)?;
                w.section(SNAP_POINT, &p.buf);
            }
            MemoEntry::Family(f) => {
                encode_family(&mut p, key, f)?;
                w.section(SNAP_FAMILY, &p.buf);
            }
        }
    }
    for &(key, t, _bytes) in cache_entries {
        let mut p = Writer::new();
        encode_cache_entry(&mut p, key, translator_fp, t)?;
        w.section(SNAP_CACHE, &p.buf);
    }
    w.u8(SNAP_END);
    Ok(w.buf)
}

/// Serializes one translated loop in the snapshot's full-fidelity codec —
/// the payload a serving response carries over the wire.
///
/// # Errors
///
/// [`EncodeError`] when a count or id overflows the fixed-width fields.
pub fn encode_translated_loop(t: &TranslatedLoop) -> Result<Vec<u8>, EncodeError> {
    let mut w = Writer::new();
    encode_translated(&mut w, t)?;
    Ok(w.buf)
}

/// Decodes one translated loop from **untrusted** bytes, re-running the
/// full verification gauntlet a snapshot entry passes: [`verify_dfg`] plus
/// a content-hash cross-check, [`verify_schedule`] against `config` with
/// zero defects, register bounds checks, and recomputed accounting. A
/// network client uses this on response payloads so a compromised or
/// corrupted server can never hand it an invalid schedule.
///
/// # Errors
///
/// A typed [`EntryReject`] naming the first check the bytes failed.
pub fn decode_translated_loop(
    bytes: &[u8],
    config: &AcceleratorConfig,
) -> Result<TranslatedLoop, EntryReject> {
    let mut r = Reader::new(bytes);
    let t = decode_translated(&mut r, config)?;
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(0).into());
    }
    Ok(t)
}

/// Restores a snapshot into live stores, treating every byte as hostile.
///
/// Never fails: damage is absorbed per entry (see [`RestoreReport`]). A
/// stream that is not a snapshot at all (wrong magic or version) restores
/// nothing — a cold start. Point and cache entries are gated on the live
/// translator's fingerprint; family entries on `family_fp` (a session
/// running without a family rejects all family entries as stale). Memo
/// inserts are first-writer-wins, so restoring into a store that already
/// has fresher entries never clobbers them.
pub fn restore_warm_state(
    bytes: &[u8],
    translator: &Translator,
    family_fp: Option<u64>,
    memo: Option<&dyn MemoBackend>,
    mut cache: Option<&mut CodeCache<Arc<TranslatedLoop>>>,
) -> RestoreReport {
    let mut report = RestoreReport::default();
    let mut r = Reader::new(bytes);
    let header_ok = matches!(r.take(4), Ok(m) if m == SNAP_MAGIC)
        && matches!(r.u16(), Ok(v) if v == SNAP_VERSION);
    if !header_ok {
        return report;
    }
    let live_fp = translator.fingerprint();
    let live_family_fp = family_fp.unwrap_or(0);
    let config = translator.config();
    loop {
        let tag = match r.u8() {
            Ok(t) => t,
            Err(_) => {
                report.torn = true;
                break;
            }
        };
        if tag == SNAP_END {
            break;
        }
        let (stored_sum, payload) = match next_frame(&mut r) {
            Ok(f) => f,
            Err(_) => {
                // A torn length field loses the rest of the stream; every
                // frame before it has already been restored.
                report.torn = true;
                break;
            }
        };
        if section_checksum(payload) != stored_sum {
            report.salvaged += 1;
            continue;
        }
        let mut pr = Reader::new(payload);
        match tag {
            // Advisory only: restore counts what it verifies, not what the
            // writer claims.
            SNAP_META => {}
            SNAP_POINT | SNAP_FAMILY => {
                let Some(memo) = memo else { continue };
                let decoded = if tag == SNAP_POINT {
                    decode_point(&mut pr, live_fp, config)
                } else {
                    decode_family(&mut pr, live_family_fp)
                };
                match decoded {
                    Ok((key, entry)) if pr.is_done() => {
                        memo.insert(key, entry);
                        if tag == SNAP_POINT {
                            report.points += 1;
                        } else {
                            report.families += 1;
                        }
                    }
                    Ok(_) | Err(_) => report.rejected += 1,
                }
            }
            SNAP_CACHE => {
                let Some(c) = cache.as_deref_mut() else {
                    continue;
                };
                match decode_cache_entry(&mut pr, live_fp, config) {
                    Ok((key, t)) if pr.is_done() => {
                        // Bytes are recharged from the re-verified schedule,
                        // so the cache budget holds whatever the file said.
                        let bytes = t.control_words * 4;
                        c.insert_sized(key, Arc::new(t), bytes);
                        report.cache_entries += 1;
                    }
                    Ok(_) | Err(_) => report.rejected += 1,
                }
            }
            _ => report.salvaged += 1,
        }
    }
    metrics::counter("vm.snapshot.restored").add(report.restored());
    metrics::counter("vm.snapshot.salvaged").add(report.salvaged);
    metrics::counter("vm.snapshot.rejected").add(report.rejected);
    report
}

fn next_frame<'a>(r: &mut Reader<'a>) -> Result<(u64, &'a [u8]), DecodeError> {
    let len = r.u32()? as usize;
    let sum = r.u64()?;
    let payload = r.take(len)?;
    Ok((sum, payload))
}

/// Walks a snapshot's framing and checksums without decoding any entry.
///
/// # Errors
///
/// Only [`DecodeError::BadMagic`] / [`DecodeError::BadVersion`] — anything
/// else is reported in the returned [`SnapshotInfo`], not an error.
pub fn inspect_snapshot(bytes: &[u8]) -> Result<SnapshotInfo, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4).map_err(|_| DecodeError::BadMagic)? != SNAP_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let v = r.u16().map_err(|_| DecodeError::BadMagic)?;
    if v != SNAP_VERSION {
        return Err(DecodeError::BadVersion(v));
    }
    let mut info = SnapshotInfo {
        total_bytes: bytes.len(),
        ..SnapshotInfo::default()
    };
    loop {
        let tag = match r.u8() {
            Ok(t) => t,
            Err(_) => {
                info.torn = true;
                break;
            }
        };
        if tag == SNAP_END {
            break;
        }
        let (stored_sum, payload) = match next_frame(&mut r) {
            Ok(f) => f,
            Err(_) => {
                info.torn = true;
                break;
            }
        };
        if section_checksum(payload) != stored_sum {
            info.bad_sections += 1;
            continue;
        }
        match tag {
            SNAP_META => info.meta = decode_meta(&mut Reader::new(payload)).ok(),
            SNAP_POINT => info.points += 1,
            SNAP_FAMILY => info.families += 1,
            SNAP_CACHE => info.cache_entries += 1,
            _ => info.unknown += 1,
        }
    }
    Ok(info)
}

/// Maps every section frame in a snapshot, checksums unverified — the
/// fault harness uses this with [`crate::binfmt::reseal_section`] to build
/// forged-but-resealed snapshots, and tooling uses it to patch in place.
/// `loop_index` is always 0 (snapshots have no per-loop structure).
///
/// # Errors
///
/// Returns [`DecodeError`] if the framing itself is malformed.
pub fn snapshot_section_ranges(bytes: &[u8]) -> Result<Vec<SectionRange>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != SNAP_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let v = r.u16()?;
    if v != SNAP_VERSION {
        return Err(DecodeError::BadVersion(v));
    }
    let mut out = Vec::new();
    loop {
        let start = r.pos;
        let tag = r.u8()?;
        if tag == SNAP_END {
            break;
        }
        let len = r.u32()? as usize;
        let checksum = r.pos..r.pos + 8;
        r.u64()?;
        let payload_start = r.pos;
        r.take(len)?;
        out.push(SectionRange {
            loop_index: 0,
            tag,
            frame: start..r.pos,
            checksum,
            payload: payload_start..r.pos,
        });
    }
    Ok(out)
}

/// Writes `bytes` to `path` crash-safely: a same-directory temp file is
/// written and fsynced, then renamed over the target and the parent
/// directory fsynced, so a reader never observes a half-written snapshot —
/// it sees the old file or the new one — and the rename itself survives a
/// crash (the directory entry is durable, not just the file contents).
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename/dir-sync; the temp file is
/// removed on failure.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path.file_name().map_or_else(
        || "snapshot".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let tmp_name = format!(".{name}.tmp{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Durability of the rename itself: fsync the directory so a crash
        // after this call can't resurrect the old entry (or lose the new
        // one). Some platforms refuse to fsync a directory handle; treat
        // that as best-effort rather than failing a completed rename.
        let dir_handle = fs::File::open(dir.unwrap_or_else(|| Path::new(".")))?;
        match dir_handle.sync_all() {
            Err(e) if e.kind() != io::ErrorKind::Unsupported => Err(e),
            _ => Ok(()),
        }
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::StaticHints;
    use crate::memo::TranslationMemo;
    use crate::translator::TranslationPolicy;
    use veal_accel::AcceleratorFamily;
    use veal_cca::CcaSpec;
    use veal_ir::{DfgBuilder, LoopBody};

    fn translator() -> Translator {
        Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::fully_dynamic(),
        )
    }

    fn simple_loop(name: &str) -> LoopBody {
        let mut b = DfgBuilder::new();
        let k = b.constant(3);
        let x = b.load_stream(0);
        let y = b.op(Opcode::Mul, &[x, k]);
        let z = b.op(Opcode::Add, &[y, y]);
        b.mark_live_out(z);
        b.store_stream(1, z);
        LoopBody::new(name, b.finish())
    }

    fn call_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Call, &[x]);
        b.store_stream(1, y);
        LoopBody::new("calls", b.finish())
    }

    /// A memo holding one successful point entry, one failed point entry,
    /// and one family entry, plus a cache holding the successful loop.
    fn warm_state(
        t: &Translator,
    ) -> (
        TranslationMemo,
        CodeCache<Arc<TranslatedLoop>>,
        u64, // family fingerprint
    ) {
        let memo = TranslationMemo::new();
        let mut cache = CodeCache::new(16);
        let hints = StaticHints::none();
        let fp = t.fingerprint();
        let family = AcceleratorFamily::point(t.config());
        let family_fp = t.family_fingerprint(&family);

        for body in [simple_loop("a"), call_loop()] {
            let outcome = t.translate(&body, &hints);
            let key = MemoKey {
                loop_hash: body.dfg.content_hash(),
                translator_fp: fp,
                hints_fp: hints.fingerprint(),
            };
            if let Ok(tl) = &outcome.result {
                let arc = Arc::new(tl.clone());
                let bytes = arc.control_words * 4;
                cache.insert_sized(key.loop_hash, arc, bytes);
            }
            memo.insert(
                key,
                MemoEntry::Point(MemoizedOutcome {
                    result: outcome.result.map(Arc::new),
                    breakdown: outcome.breakdown,
                    verdict: outcome.verdict,
                }),
            );
        }

        let fam_body = simple_loop("fam");
        let sym = t.translate_symbolic(&fam_body, &hints);
        memo.insert(
            MemoKey {
                loop_hash: fam_body.dfg.content_hash(),
                translator_fp: family_fp,
                hints_fp: hints.fingerprint(),
            },
            MemoEntry::Family(Arc::new(sym)),
        );
        (memo, cache, family_fp)
    }

    fn snapshot_of(t: &Translator) -> (Vec<u8>, u64) {
        let (memo, cache, family_fp) = warm_state(t);
        let bytes = encode_warm_state(
            t.fingerprint(),
            Some(family_fp),
            &memo.export_entries(),
            &cache.export_entries(),
        )
        .expect("warm state fits the format");
        (bytes, family_fp)
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);

        let memo2 = TranslationMemo::new();
        let mut cache2 = CodeCache::new(16);
        let report =
            restore_warm_state(&bytes, &t, Some(family_fp), Some(&memo2), Some(&mut cache2));
        assert_eq!(report.points, 2);
        assert_eq!(report.families, 1);
        assert_eq!(report.cache_entries, 1);
        assert_eq!(report.salvaged, 0);
        assert_eq!(report.rejected, 0);
        assert!(!report.torn);
        assert!(!report.is_cold());

        // The strongest oracle available without Eq on the stores: a
        // snapshot of the restored state reproduces the original stream
        // bit for bit.
        let bytes2 = encode_warm_state(
            t.fingerprint(),
            Some(family_fp),
            &memo2.export_entries(),
            &cache2.export_entries(),
        )
        .expect("restored state re-encodes");
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn not_a_snapshot_is_a_cold_start() {
        let t = translator();
        let memo = TranslationMemo::new();
        for junk in [&b""[..], b"VEAL", b"VSNP", b"VSNP\x07\x00garbage"] {
            let report = restore_warm_state(junk, &t, None, Some(&memo), None);
            assert!(report.is_cold(), "{junk:?} restored something");
        }
        assert!(memo.export_entries().is_empty());
    }

    #[test]
    fn every_truncation_salvages_the_intact_prefix_without_panicking() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let full = restore_warm_state(
            &bytes,
            &t,
            Some(family_fp),
            Some(&TranslationMemo::new()),
            None,
        )
        .restored();
        for len in 0..bytes.len() {
            let memo = TranslationMemo::new();
            let report = restore_warm_state(&bytes[..len], &t, Some(family_fp), Some(&memo), None);
            if len < SNAP_MAGIC.len() + 2 {
                // Not even a header: that is "not a snapshot", a cold start.
                assert!(report.is_cold());
            } else {
                assert!(report.torn, "prefix of {len} bytes has no end marker");
            }
            assert!(report.restored() <= full);
            assert_eq!(
                report.restored() - report.cache_entries,
                memo.export_entries().len() as u64
            );
        }
    }

    #[test]
    fn a_flipped_payload_byte_costs_at_most_that_entry() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let ranges = snapshot_section_ranges(&bytes).expect("framing is valid");
        for section in &ranges {
            let mut dirty = bytes.clone();
            dirty[section.payload.start] ^= 0x40;
            let memo = TranslationMemo::new();
            let mut cache = CodeCache::new(16);
            let report =
                restore_warm_state(&dirty, &t, Some(family_fp), Some(&memo), Some(&mut cache));
            assert!(!report.torn, "payload damage must not tear the stream");
            assert_eq!(report.salvaged, 1, "tag {} not salvaged", section.tag);
            // Everything the damage did not touch still lands.
            assert_eq!(report.restored() + u64::from(section.tag != SNAP_META), 4);
        }
    }

    #[test]
    fn resealed_forgeries_never_admit_invalid_state() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let ranges = snapshot_section_ranges(&bytes).expect("framing is valid");
        for section in &ranges {
            for offset in 0..(section.payload.len().min(64)) {
                let mut forged = bytes.clone();
                forged[section.payload.start + offset] ^= 1;
                crate::binfmt::reseal_section(&mut forged, section);
                let memo = TranslationMemo::new();
                let mut cache = CodeCache::new(16);
                restore_warm_state(&forged, &t, Some(family_fp), Some(&memo), Some(&mut cache));
                // Whatever got through must re-verify clean: that is the
                // whole trust model.
                for (_, entry) in memo.export_entries() {
                    match entry {
                        MemoEntry::Point(m) => {
                            if let Ok(tl) = &m.result {
                                verify_dfg(&tl.dfg).expect("restored graph verifies");
                                assert!(verify_schedule(
                                    &tl.dfg,
                                    &tl.scheduled.schedule,
                                    t.config()
                                )
                                .is_empty());
                            }
                        }
                        MemoEntry::Family(f) => {
                            if let Ok(b) = &f.body {
                                verify_dfg(&b.dfg).expect("restored family graph verifies");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stale_translator_fingerprint_rejects_points_and_cache() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let other = Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::static_hints(),
        );
        assert_ne!(t.fingerprint(), other.fingerprint());
        let memo = TranslationMemo::new();
        let mut cache = CodeCache::new(16);
        let report = restore_warm_state(
            &bytes,
            &other,
            Some(family_fp),
            Some(&memo),
            Some(&mut cache),
        );
        // Family entries key on the family fingerprint and still land; the
        // point/cache entries are stale.
        assert_eq!(report.points, 0);
        assert_eq!(report.cache_entries, 0);
        assert_eq!(report.families, 1);
        assert_eq!(report.rejected, 3);
    }

    #[test]
    fn a_session_without_a_family_rejects_family_entries() {
        let t = translator();
        let (bytes, _family_fp) = snapshot_of(&t);
        let memo = TranslationMemo::new();
        let report = restore_warm_state(&bytes, &t, None, Some(&memo), None);
        assert_eq!(report.families, 0);
        assert_eq!(report.points, 2);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn restore_respects_the_cache_byte_budget() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let memo = TranslationMemo::new();
        // A budget of one byte admits nothing, whatever the file claims.
        let mut tiny = CodeCache::with_byte_budget(16, 1);
        let report = restore_warm_state(&bytes, &t, Some(family_fp), Some(&memo), Some(&mut tiny));
        assert_eq!(tiny.export_entries().len(), 0);
        // The entry decoded and verified; the cache then refused it on
        // budget, which is the cache's call, not a snapshot defect.
        assert_eq!(report.rejected, 0);
        assert_eq!(tiny.stats().oversized_rejections, 1);
    }

    #[test]
    fn inspect_reports_counts_meta_and_damage() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        let info = inspect_snapshot(&bytes).expect("valid snapshot");
        assert_eq!(info.points, 2);
        assert_eq!(info.families, 1);
        assert_eq!(info.cache_entries, 1);
        assert_eq!(info.bad_sections, 0);
        assert!(!info.torn);
        assert_eq!(info.total_bytes, bytes.len());
        let meta = info.meta.expect("meta section present");
        assert_eq!(meta.translator_fp, t.fingerprint());
        assert_eq!(meta.family_fp, Some(family_fp));
        assert_eq!((meta.points, meta.families, meta.cache_entries), (2, 1, 1));

        let ranges = snapshot_section_ranges(&bytes).unwrap();
        let mut dirty = bytes.clone();
        dirty[ranges[1].payload.start] ^= 0xff;
        let info = inspect_snapshot(&dirty).unwrap();
        assert_eq!(info.bad_sections, 1);

        assert_eq!(inspect_snapshot(b"nope"), Err(DecodeError::BadMagic));
        let mut wrong = bytes.clone();
        wrong[4] = 0x99;
        assert!(matches!(
            inspect_snapshot(&wrong),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn unknown_tags_are_skipped_for_forward_compatibility() {
        let t = translator();
        let (bytes, family_fp) = snapshot_of(&t);
        // Splice an unknown-but-well-formed section in front of the end
        // marker.
        let mut w = Writer::new();
        w.buf.extend_from_slice(&bytes[..bytes.len() - 1]);
        w.section(0x77, b"from the future");
        w.u8(SNAP_END);
        let memo = TranslationMemo::new();
        let report = restore_warm_state(&w.buf, &t, Some(family_fp), Some(&memo), None);
        assert_eq!(report.salvaged, 1);
        assert_eq!(report.points, 2);
        assert!(!report.torn);
    }

    #[test]
    fn save_atomic_round_trips_and_replaces() {
        let t = translator();
        let (bytes, _) = snapshot_of(&t);
        // A dedicated subdirectory so the parent-directory fsync after the
        // rename runs against a real `Some(dir)` parent, not the cwd
        // fallback.
        let dir = std::env::temp_dir().join(format!("veal-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("test dir");
        let path = dir.join("state.vsnp");
        save_atomic(&path, b"old contents").expect("first write");
        assert_eq!(fs::read(&path).expect("reopen old"), b"old contents");
        // Replace, then reopen through a fresh handle: the reader must see
        // the complete new stream, never a blend of old and new.
        save_atomic(&path, &bytes).expect("replace");
        let read_back = fs::read(&path).expect("read back");
        assert_eq!(read_back, bytes);
        inspect_snapshot(&read_back).expect("saved file is a valid snapshot");
        // And replacing the replacement still round-trips.
        save_atomic(&path, b"third generation").expect("second replace");
        assert_eq!(fs::read(&path).expect("reopen third"), b"third generation");
        // No temp-file debris left behind.
        let stray: Vec<_> = fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(|e| e.ok().map(|e| e.file_name()))
            .filter(|n| n != "state.vsnp")
            .collect();
        let _ = fs::remove_dir_all(&dir);
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn oversized_counts_are_a_typed_encode_error_not_a_truncation() {
        // A count past u32::MAX would silently alias under the old
        // `as u32` cast — and the per-section checksum would then seal the
        // corrupted bytes, making the damage undetectable on restore. Every
        // count/id field now narrows through `fit_u32`, which must refuse.
        // (Ids are `OpId`-backed and bounded at u32 by construction, so the
        // checked narrowing is the single gate a collection length passes.)
        let over = u32::MAX as usize + 1;
        let err = fit_u32("graph node count", over).expect_err("must not narrow");
        assert_eq!(err.what, "graph node count");
        assert_eq!(err.value, u64::from(u32::MAX) + 1);
        assert!(err.to_string().contains("does not fit"));
        // Boundary: exactly u32::MAX still fits; one past does not.
        assert_eq!(fit_u32("n", u32::MAX as usize), Ok(u32::MAX));
        assert!(fit_u32("n", over + 12345).is_err());
    }

    #[test]
    fn translated_loop_codec_round_trips_and_reverifies() {
        let t = translator();
        let outcome = t.translate(&simple_loop("wire"), &StaticHints::none());
        let original = outcome.result.expect("simple loop translates");
        let bytes = encode_translated_loop(&original).expect("encodes");
        let decoded = decode_translated_loop(&bytes, t.config()).expect("decodes");
        // Byte-identity of the re-encoding is the equality oracle.
        assert_eq!(encode_translated_loop(&decoded).expect("re-encodes"), bytes);
        // Derived accounting is recomputed, not trusted, and must agree.
        assert_eq!(decoded.control_words, original.control_words);
        assert_eq!(decoded.accel_ops, original.accel_ops);

        // Trailing bytes are not tolerated: a frame must be exactly one loop.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_translated_loop(&padded, t.config()).is_err());

        // Any single flipped byte is caught by decode or re-verification.
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0x20;
            if let Ok(tl) = decode_translated_loop(&dirty, t.config()) {
                verify_dfg(&tl.dfg).expect("admitted graph verifies");
                assert!(verify_schedule(&tl.dfg, &tl.scheduled.schedule, t.config()).is_empty());
            }
        }
    }
}
