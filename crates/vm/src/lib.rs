//! The co-designed virtual machine (paper §4.2).
//!
//! This crate implements the software side of VEAL's virtualization story:
//!
//! * [`binfmt`] — a binary module format for applications expressed in the
//!   baseline ISA, including the two *binary-compatible* hint encodings of
//!   Figure 9: scheduling priorities in a data section preceding each loop
//!   (9c) and CCA subgraphs as branch-and-link procedural abstraction (9b).
//!   A binary with hints still runs correctly on any system — hints are
//!   advisory.
//! * [`hints`] — the static compiler pass that produces those hints.
//! * [`cache`] — the VM's software code cache for translated accelerator
//!   control (16-entry LRU in the paper's evaluation, ~48 KB).
//! * [`translator`] — the dynamic translation pipeline: loop
//!   identification, stream separation, CCA mapping (dynamic or decoded
//!   from hints), MII, priority (dynamic Swing, dynamic height-based, or
//!   decoded), scheduling, and register assignment, each charged to the
//!   [`veal_ir::CostMeter`].
//! * [`verify`] — the semantic trust boundary for hints: permutation and
//!   legality validation, metered, with per-step degradation verdicts.
//! * [`session`] — a stateful VM session combining translator and cache,
//!   tracking per-benchmark translation statistics, hint quarantine, and a
//!   translation-budget watchdog.
//! * [`faults`] — a seeded fault-injection harness (byte corruption,
//!   structural hint mutation) with a differential oracle against the
//!   [`veal_ir::interp`] reference semantics.
//! * [`snapshot`] — crash-safe persistence of warm state (memo + code
//!   cache) with untrusted-snapshot re-validation and per-entry salvage.
//!
//! # Example
//!
//! ```
//! use veal_accel::AcceleratorConfig;
//! use veal_cca::CcaSpec;
//! use veal_ir::{DfgBuilder, LoopBody, Opcode};
//! use veal_vm::{StaticHints, TranslationPolicy, Translator};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.load_stream(0);
//! let y = b.op(Opcode::Add, &[x, x]);
//! b.store_stream(1, y);
//! let body = LoopBody::new("double", b.finish());
//!
//! let t = Translator::new(
//!     AcceleratorConfig::paper_design(),
//!     Some(CcaSpec::paper()),
//!     TranslationPolicy::fully_dynamic(),
//! );
//! let outcome = t.translate(&body, &StaticHints::none());
//! assert!(outcome.result.is_ok());
//! assert!(outcome.breakdown.total() > 0);
//! ```

pub mod binfmt;
pub mod cache;
pub mod disasm;
pub mod faults;
pub mod hints;
pub mod memo;
pub mod session;
pub mod snapshot;
pub mod translator;
pub mod verify;

pub use binfmt::{
    decode_module, encode_module, reseal_section, section_checksum, section_ranges, BinaryModule,
    DecodeError, EncodedLoop, Reader, SectionRange, Writer,
};
pub use cache::{CacheStats, CodeCache};
pub use disasm::disassemble;
pub use faults::{
    check_degradation, check_restore, exposed_translator, FaultVerdict, HintFuzzer, SnapshotFuzzer,
};
pub use hints::{compute_hints, StaticHints};
pub use memo::{
    MemoBackend, MemoEntry, MemoKey, MemoStats, MemoizedOutcome, ShardedMemo, TranslationMemo,
};
pub use session::{fold_vm_stats, ConcretizeStats, VmSession, VmStats};
pub use snapshot::{
    decode_translated_loop, encode_translated_loop, encode_warm_state, inspect_snapshot,
    restore_warm_state, save_atomic, snapshot_section_ranges, EncodeError, EntryReject,
    RestoreReport, SnapshotInfo, SnapshotMeta,
};
pub use translator::{
    SymbolicTranslation, TranslatedLoop, TranslationError, TranslationOutcome, TranslationPolicy,
    Translator,
};
pub use verify::{DegradeReason, HintError, HintVerdict};
// The host execution backend, re-exported so VM users reach the artifact
// type its session APIs hand out.
pub use veal_exec::{CompileError as ExecCompileError, ExecutableLoop, DEFAULT_LANES};
