//! The VM's software code cache for translated accelerator control.
//!
//! Paper §4.3: "The code cache used to store LA control provided enough
//! space to store the previous 16 translated loops using an LRU eviction
//! policy … approximately 48 KB of dedicated storage." A miss re-pays the
//! loop's full translation cost, which is why Figure 6 stresses cache
//! sizing.

use std::collections::HashMap;
use std::fmt;

/// Hit/miss statistics of a [`CodeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
    /// Inserts rejected because the entry alone exceeds the byte budget
    /// (the control store physically cannot hold it).
    pub oversized_rejections: u64,
}

impl CacheStats {
    /// Hit rate in \[0, 1\]; 1.0 for an unused cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({:.1}%), {} evictions, {} oversized rejections",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions,
            self.oversized_rejections
        )
    }
}

/// An LRU cache from loop keys to translated entries.
///
/// # Example
///
/// ```
/// use veal_vm::CodeCache;
/// let mut c: CodeCache<&'static str> = CodeCache::new(2);
/// c.insert(1, "a");
/// c.insert(2, "b");
/// assert!(c.get(1).is_some());
/// c.insert(3, "c"); // evicts 2 (least recently used)
/// assert!(c.get(2).is_none());
/// assert_eq!(c.stats().evictions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CodeCache<T> {
    capacity: usize,
    byte_budget: Option<usize>,
    entries: HashMap<u64, (T, u64, usize)>,
    bytes_resident: usize,
    clock: u64,
    stats: CacheStats,
}

impl<T> CodeCache<T> {
    /// Creates a cache holding up to `capacity` translated loops.
    ///
    /// A zero capacity saturates to one entry: sweep configurations are
    /// data (often swept right down to the degenerate point), and a cache
    /// that cannot hold its own current loop would make `insert` diverge —
    /// so the smallest cache is a single-entry one, not a panic.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CodeCache {
            capacity: capacity.max(1),
            byte_budget: None,
            entries: HashMap::new(),
            bytes_resident: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache additionally bounded by a byte budget: entries are
    /// inserted with a size ([`CodeCache::insert_sized`]) and LRU eviction
    /// also runs until the resident bytes fit. The paper sizes its 16-entry
    /// cache at ~48 KB of accelerator control (§4.3). Zero bounds saturate
    /// like [`CodeCache::new`]: at least one entry, at least one byte. An
    /// entry larger than the whole budget can never fit and is rejected
    /// (counted in [`CacheStats::oversized_rejections`]) — the control
    /// store's resident bytes never exceed the budget.
    #[must_use]
    pub fn with_byte_budget(capacity: usize, bytes: usize) -> Self {
        let mut c = Self::new(capacity);
        c.byte_budget = Some(bytes.max(1));
        c
    }

    /// The paper's evaluation configuration: 16 entries.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(16)
    }

    /// Looks up `key`, updating recency and statistics.
    pub fn get(&mut self, key: u64) -> Option<&T> {
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some((v, stamp, _)) => {
                *stamp = self.clock;
                self.stats.hits += 1;
                Some(&*v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks residency without touching recency or statistics.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Inserts a translation, evicting the least recently used entry when
    /// full. Equivalent to [`CodeCache::insert_sized`] with size 0.
    pub fn insert(&mut self, key: u64, value: T) {
        self.insert_sized(key, value, 0);
    }

    /// Inserts a translation occupying `bytes` of code-cache storage,
    /// evicting LRU entries until both the entry count and the byte budget
    /// (when configured) fit. An entry larger than the entire byte budget
    /// is rejected outright — evicting everything else still could not
    /// make it fit, and silently overcommitting the control store would
    /// leave `bytes_resident` above the budget.
    pub fn insert_sized(&mut self, key: u64, value: T, bytes: usize) {
        self.clock += 1;
        if let Some((_, _, old)) = self.entries.remove(&key) {
            self.bytes_resident -= old;
        }
        if self.byte_budget.is_some_and(|b| bytes > b) {
            self.stats.oversized_rejections += 1;
            return;
        }
        let over = |c: &Self| {
            c.entries.len() >= c.capacity
                || c.byte_budget
                    .is_some_and(|b| c.bytes_resident + bytes > b && !c.entries.is_empty())
        };
        while over(self) {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, s, _))| *s) else {
                break;
            };
            if let Some((_, _, b)) = self.entries.remove(&victim) {
                self.bytes_resident -= b;
            }
            self.stats.evictions += 1;
        }
        self.bytes_resident += bytes;
        self.entries.insert(key, (value, self.clock, bytes));
    }

    /// Removes `key`, returning the resident translation, if any. This is
    /// an explicit invalidation (the session drops a translation it knows
    /// is stale, e.g. on a quarantine lift), not LRU pressure — statistics
    /// are untouched; resident bytes shrink by the entry's size.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (v, _, bytes) = self.entries.remove(&key)?;
        self.bytes_resident -= bytes;
        Some(v)
    }

    /// Bytes currently resident (0 unless sized inserts are used).
    #[must_use]
    pub fn bytes_resident(&self) -> usize {
        self.bytes_resident
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Every resident entry as `(key, value, bytes)`, sorted by key so two
    /// snapshots of the same state serialize byte-identically. Recency and
    /// statistics are untouched — this is a serializer's read, not a use.
    #[must_use]
    pub fn export_entries(&self) -> Vec<(u64, &T, usize)> {
        let mut out: Vec<(u64, &T, usize)> = self
            .entries
            .iter()
            .map(|(&k, (v, _, bytes))| (k, v, *bytes))
            .collect();
        out.sort_by_key(|&(k, _, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: CodeCache<u32> = CodeCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(&10)); // 1 is now most recent
        c.insert(3, 30);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c: CodeCache<u32> = CodeCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c: CodeCache<u32> = CodeCache::new(4);
        assert!(c.get(5).is_none());
        c.insert(5, 50);
        assert!(c.get(5).is_some());
        assert!(c.get(5).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_within_capacity_hits_always() {
        // The paper's observation: with 16 entries, per-app hit rates were
        // "very close to 100%".
        let mut c: CodeCache<usize> = CodeCache::paper_default();
        for round in 0..100 {
            for k in 0..12u64 {
                if c.get(k).is_none() {
                    c.insert(k, k as usize);
                }
                let _ = round;
            }
        }
        let s = c.stats();
        assert_eq!(s.misses, 12); // cold misses only
        assert_eq!(s.evictions, 0);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn thrashing_working_set_misses() {
        let mut c: CodeCache<usize> = CodeCache::new(4);
        for _ in 0..10 {
            for k in 0..8u64 {
                if c.get(k).is_none() {
                    c.insert(k, 0);
                }
            }
        }
        assert!(c.stats().hit_rate() < 0.5);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn byte_budget_evicts_by_size() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(16, 100);
        c.insert_sized(1, 0, 60);
        c.insert_sized(2, 0, 30);
        assert_eq!(c.bytes_resident(), 90);
        // 50 more bytes exceed the budget: key 1 (LRU) goes.
        c.insert_sized(3, 0, 50);
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.bytes_resident(), 80);
    }

    #[test]
    fn oversized_entry_is_rejected_not_overcommitted() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(4, 10);
        c.insert_sized(1, 0, 50); // bigger than the whole budget
        assert!(!c.contains(1), "an entry that can never fit is rejected");
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes_resident(), 0);
        assert_eq!(c.stats().oversized_rejections, 1);
        // The regression this guards: the old code evicted the whole cache
        // and inserted anyway, leaving bytes_resident > byte_budget.
        c.insert_sized(2, 0, 8);
        c.insert_sized(3, 0, 11);
        assert!(c.contains(2), "resident entries survive a rejected insert");
        assert!(c.bytes_resident() <= 10);
        assert_eq!(c.stats().evictions, 0, "rejection does not evict");
        assert_eq!(c.stats().oversized_rejections, 2);
    }

    #[test]
    fn oversized_reinsert_of_a_resident_key_drops_the_old_entry() {
        // The new translation logically replaces the old one; if it cannot
        // be stored, the stale version must not linger either.
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(4, 10);
        c.insert_sized(1, 0, 5);
        c.insert_sized(1, 1, 50);
        assert!(!c.contains(1));
        assert_eq!(c.bytes_resident(), 0);
        assert_eq!(c.stats().oversized_rejections, 1);
    }

    #[test]
    fn budget_is_never_exceeded_under_mixed_inserts() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(8, 64);
        for k in 0..200u64 {
            c.insert_sized(k, 0, (k as usize * 13) % 90);
            assert!(
                c.bytes_resident() <= 64,
                "key {k}: {} bytes resident over the 64-byte budget",
                c.bytes_resident()
            );
        }
        assert!(c.stats().oversized_rejections > 0);
    }

    #[test]
    fn resizing_a_key_updates_residency() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(4, 100);
        c.insert_sized(1, 0, 40);
        c.insert_sized(1, 0, 10);
        assert_eq!(c.bytes_resident(), 10);
    }

    #[test]
    fn remove_releases_residency_without_counting_an_eviction() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(4, 100);
        c.insert_sized(1, 7, 40);
        assert_eq!(c.remove(1), Some(7));
        assert!(!c.contains(1));
        assert_eq!(c.bytes_resident(), 0);
        assert_eq!(c.stats().evictions, 0, "an invalidation is not an eviction");
        assert_eq!(c.remove(1), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let mut c: CodeCache<u32> = CodeCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.len(), 1);
        c.insert(2, 20);
        assert_eq!(c.len(), 1, "single-entry cache evicts on the second key");
        assert!(c.contains(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn export_entries_is_sorted_and_leaves_stats_alone() {
        let mut c: CodeCache<u32> = CodeCache::new(8);
        for k in [9u64, 2, 7, 4] {
            c.insert_sized(k, k as u32 * 10, 3);
        }
        let before = c.stats();
        let exported = c.export_entries();
        assert_eq!(
            exported.iter().map(|&(k, _, _)| k).collect::<Vec<_>>(),
            vec![2, 4, 7, 9]
        );
        assert!(exported
            .iter()
            .all(|&(k, &v, b)| v == k as u32 * 10 && b == 3));
        assert_eq!(c.stats(), before, "export must not count as lookups");
    }

    #[test]
    fn zero_byte_budget_clamps_to_one_byte() {
        let mut c: CodeCache<u8> = CodeCache::with_byte_budget(0, 0);
        c.insert_sized(1, 0, 50);
        assert!(!c.contains(1), "50 bytes cannot fit the 1-byte floor");
        assert_eq!(c.stats().oversized_rejections, 1);
        // Entries within the clamped budget still insert.
        c.insert_sized(2, 0, 1);
        assert!(c.contains(2));
        assert_eq!(c.len(), 1);
    }
}
