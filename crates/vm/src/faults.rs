//! Seeded fault injection for the hint trust boundary (DESIGN.md §9).
//!
//! The hardening claim is behavioral: *no* byte-level corruption of a
//! module and *no* structural mutation of its hints may panic the VM,
//! mis-schedule a loop, or change what a correct translation computes.
//! This module supplies the two halves of that proof:
//!
//! * [`HintFuzzer`] — a deterministic ([`Rng64`]-seeded) corruption engine
//!   operating at three levels: raw bytes (transport faults: bit flips,
//!   truncation, duplication, splices), *resealed* hint payloads (semantic
//!   faults that forge the section checksum, so they pass transport
//!   integrity and must be caught by [`crate::verify`]), and decoded
//!   [`StaticHints`] structures (the mutations a hostile or stale compiler
//!   could emit: permute, truncate, duplicate, cross-loop splice,
//!   out-of-range injection);
//! * [`check_degradation`] — a differential oracle: whatever a translation
//!   under suspect hints produces must be *exactly* what the same
//!   translator produces with every rejected hint replaced by its dynamic
//!   fallback, and any surviving schedule must pass the independent
//!   checker [`veal_sched::verify_schedule`]. End-to-end execution
//!   fidelity (the [`veal_ir::interp`] golden checksums) is asserted by
//!   the integration harness in `tests/fault_injection.rs`, which owns the
//!   workload fixtures.
//!
//! The same discipline extends to warm-state persistence: [`SnapshotFuzzer`]
//! corrupts snapshot streams (transport faults, truncations, resealed
//! forgeries, cross-version and cross-fingerprint splices) and
//! [`check_restore`] is the restore-side oracle — whatever a hostile
//! snapshot smuggles past the checksums must still re-verify as valid
//! state, or the restore must have refused it.

use crate::binfmt::{reseal_section, section_ranges, SectionRange, SEC_CCA, SEC_PRIORITY};
use crate::cache::CodeCache;
use crate::hints::StaticHints;
use crate::memo::{MemoEntry, TranslationMemo};
use crate::snapshot::{restore_warm_state, snapshot_section_ranges, RestoreReport};
use crate::translator::{TranslationError, TranslationPolicy, Translator};
use crate::verify::{verify_priority, HintVerdict};
use veal_ir::rng::Rng64;
use veal_ir::{verify_dfg, CostMeter, LoopBody, OpId};
use veal_sched::verify_schedule;

/// How a corrupted module's loop was ultimately disposed of. Every fuzz
/// case must land in one of these — anything else (a panic, a schedule
/// differing from the dynamic fallback's) is a harness failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultVerdict {
    /// The loop translated and passed the differential and schedule
    /// checks; `degradations` hints were rejected along the way.
    Accelerated {
        /// How many hint kinds degraded to their dynamic fallback.
        degradations: u64,
    },
    /// Translation aborted (same abort the dynamic fallback produces);
    /// the loop runs on the baseline CPU.
    CpuFallback(TranslationError),
}

/// Deterministic corruption engine for encoded modules and decoded hints.
///
/// Same seed, same corruption sequence — a failing fuzz case is
/// reproducible from its (seed, case index) pair alone.
#[derive(Debug)]
pub struct HintFuzzer {
    rng: Rng64,
}

impl HintFuzzer {
    /// Creates a fuzzer from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        HintFuzzer {
            rng: Rng64::new(seed),
        }
    }

    /// Byte-level transport fault: returns a corrupted copy of `bytes`.
    /// One of: single-bit flip, byte overwrite, range zeroing, truncation,
    /// range duplication, or a splice of one random range over another.
    pub fn corrupt_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        transport_fault(&mut self.rng, bytes)
    }

    /// Semantic fault that forges transport integrity: corrupts bytes
    /// inside a hint section's payload, then reseals that section's
    /// checksum so the module still *decodes*. Returns `None` when the
    /// module's framing is unwalkable or it carries no hint section.
    pub fn corrupt_hint_payload(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        let sections: Vec<SectionRange> = section_ranges(bytes)
            .ok()?
            .into_iter()
            .filter(|s| (s.tag == SEC_PRIORITY || s.tag == SEC_CCA) && s.payload.len() > 4)
            .collect();
        if sections.is_empty() {
            return None;
        }
        let target = sections[self.rng.gen_range(0, sections.len())].clone();
        let mut out = bytes.to_vec();
        // Id words start past the leading count word.
        let ids = target.payload.start + 4;
        let nwords = (target.payload.end - ids) / 4;
        match self.rng.gen_range(0, 5) {
            // Id-level splice: copy one 4-byte id word over another. The
            // result stays in the decoder's accepted range, so it *must*
            // travel all the way to the semantic validator (a duplicated
            // priority entry breaks the permutation; a duplicated CCA
            // member breaks group disjointness).
            0 | 1 if nwords >= 2 => {
                let src = ids + 4 * self.rng.gen_range(0, nwords);
                let dst = ids + 4 * self.rng.gen_range(0, nwords);
                out.copy_within(src..src + 4, dst);
            }
            // Byte-level faults: corrupt past the count word 75% of the
            // time so the mutation lands on ids more often than on framing
            // (both are valid targets; ids exercise the decoder's range
            // checks, counts its sub-decoders).
            m => {
                let lo = target.payload.start + usize::from(self.rng.gen_bool(0.75)) * 4;
                let i = lo + self.rng.gen_range(0, target.payload.end - lo);
                match m {
                    0..=2 => out[i] ^= 1 << self.rng.gen_range(0, 8),
                    3 => out[i] = (self.rng.next_u64() & 0xFF) as u8,
                    _ => {
                        let end = (i + self.rng.gen_range(1, 5)).min(target.payload.end);
                        out[i..end].fill(0xFF);
                    }
                }
            }
        }
        crate::binfmt::reseal_section(&mut out, &target);
        Some(out)
    }

    /// Structural mutation of decoded hints: the faults a stale or hostile
    /// *compiler* produces. `donor` supplies foreign material for the
    /// cross-loop splice (hints that were valid — for a different loop).
    pub fn mutate_hints(
        &mut self,
        hints: &StaticHints,
        donor: Option<&StaticHints>,
    ) -> StaticHints {
        let mut out = hints.clone();
        match self.rng.gen_range(0, 8) {
            // Permute the priority order (stays a permutation — must pass
            // validation; the scheduler just gets a worse order).
            0 => {
                if let Some(order) = &mut out.priority {
                    for i in (1..order.len()).rev() {
                        order.swap(i, self.rng.gen_range(0, i + 1));
                    }
                }
            }
            // Truncate the priority order.
            1 => {
                if let Some(order) = &mut out.priority {
                    let keep = self.rng.gen_range(0, order.len().max(1));
                    order.truncate(keep);
                }
            }
            // Duplicate one priority entry over another.
            2 => {
                if let Some(order) = &mut out.priority {
                    if order.len() >= 2 {
                        let src = self.rng.gen_range(0, order.len());
                        let dst = self.rng.gen_range(0, order.len());
                        order[dst] = order[src];
                    }
                }
            }
            // Inject an out-of-range op id.
            3 => {
                if let Some(order) = &mut out.priority {
                    if !order.is_empty() {
                        let i = self.rng.gen_range(0, order.len());
                        order[i] = OpId::new(1000 + self.rng.gen_range(0, 9000));
                    }
                }
            }
            // Cross-loop splice: replace a hint kind wholesale with the
            // donor loop's.
            4 => {
                if let Some(d) = donor {
                    if self.rng.gen_bool(0.5) {
                        out.priority = d.priority.clone();
                    } else {
                        out.cca_groups = d.cca_groups.clone();
                    }
                }
            }
            // Duplicate a CCA group, or a member within one.
            5 => {
                if let Some(groups) = &mut out.cca_groups {
                    if !groups.is_empty() {
                        let g = self.rng.gen_range(0, groups.len());
                        if self.rng.gen_bool(0.5) {
                            let dup = groups[g].clone();
                            groups.push(dup);
                        } else if !groups[g].is_empty() {
                            let m = groups[g][self.rng.gen_range(0, groups[g].len())];
                            groups[g].push(m);
                        }
                    }
                }
            }
            // Corrupt a CCA member id (out of range or collided).
            6 => {
                if let Some(groups) = &mut out.cca_groups {
                    if let Some(g) = groups.iter_mut().find(|g| !g.is_empty()) {
                        let i = self.rng.gen_range(0, g.len());
                        g[i] = OpId::new(self.rng.gen_range(0, 2000));
                    }
                }
            }
            // Drop a hint kind entirely (the legacy-binary path).
            _ => {
                if self.rng.gen_bool(0.5) {
                    out.priority = None;
                } else {
                    out.cca_groups = None;
                }
            }
        }
        out
    }
}

/// The six transport-fault modes shared by the module and snapshot
/// fuzzers: bit flip, byte overwrite, range zeroing, truncation, range
/// duplication, range splice.
fn transport_fault(rng: &mut Rng64, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    match rng.gen_range(0, 6) {
        0 => {
            let i = rng.gen_range(0, out.len());
            out[i] ^= 1 << rng.gen_range(0, 8);
        }
        1 => {
            let i = rng.gen_range(0, out.len());
            out[i] = (rng.next_u64() & 0xFF) as u8;
        }
        2 => {
            let start = rng.gen_range(0, out.len());
            let end = (start + rng.gen_range(1, 9)).min(out.len());
            out[start..end].fill(0);
        }
        3 => {
            out.truncate(rng.gen_range(0, out.len()));
        }
        4 => {
            let start = rng.gen_range(0, out.len());
            let end = (start + rng.gen_range(1, 17)).min(out.len());
            let dup: Vec<u8> = out[start..end].to_vec();
            out.splice(end..end, dup);
        }
        _ => {
            let a = rng.gen_range(0, out.len());
            let b = rng.gen_range(0, out.len());
            let n = rng.gen_range(1, 9).min(out.len() - a.max(b));
            let src: Vec<u8> = out[b..b + n].to_vec();
            out[a..a + n].copy_from_slice(&src);
        }
    }
    out
}

/// Deterministic corruption engine for warm-state snapshots
/// ([`crate::snapshot`]). Five prongs, mirroring what disks, crashes, and
/// adversaries actually do to a checkpoint file:
///
/// * [`SnapshotFuzzer::corrupt_bytes`] — transport faults anywhere in the
///   stream (the checksums must catch these);
/// * [`SnapshotFuzzer::truncate`] — a crash mid-write (the restore must
///   salvage the intact prefix and flag the tear);
/// * [`SnapshotFuzzer::reseal_forgery`] — payload corruption with the
///   section checksum recomputed, so it *passes* transport integrity and
///   the semantic re-validators must hold the line;
/// * [`SnapshotFuzzer::splice`] — cross-version and cross-snapshot
///   surgery: a stamped-over version, or a section frame transplanted from
///   a snapshot taken under a different translator (the fingerprint gate's
///   job);
/// * [`SnapshotFuzzer::boundary_counts`] — a resealed 32-bit count/id field
///   stamped to a boundary value (`u32::MAX`, a sign-bit pattern, a huge
///   length), probing for unchecked-allocation and cast-aliasing holes in
///   the decoders.
#[derive(Debug)]
pub struct SnapshotFuzzer {
    rng: Rng64,
}

impl SnapshotFuzzer {
    /// Creates a fuzzer from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SnapshotFuzzer {
            rng: Rng64::new(seed),
        }
    }

    /// Arbitrary transport fault (same six modes as [`HintFuzzer`]).
    pub fn corrupt_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        transport_fault(&mut self.rng, bytes)
    }

    /// A crash mid-write: some prefix of the stream.
    pub fn truncate(&mut self, bytes: &[u8]) -> Vec<u8> {
        bytes[..self.rng.gen_range(0, bytes.len() + 1)].to_vec()
    }

    /// Corrupts bytes inside one section's payload, then reseals that
    /// section's checksum so the damage passes transport integrity and
    /// reaches the semantic re-validators. `None` if the framing is
    /// unwalkable or there is no non-empty section.
    pub fn reseal_forgery(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        let sections: Vec<SectionRange> = snapshot_section_ranges(bytes)
            .ok()?
            .into_iter()
            .filter(|s| !s.payload.is_empty())
            .collect();
        if sections.is_empty() {
            return None;
        }
        let target = sections[self.rng.gen_range(0, sections.len())].clone();
        let mut out = bytes.to_vec();
        let hits = self.rng.gen_range(1, 4);
        for _ in 0..hits {
            let i = target.payload.start + self.rng.gen_range(0, target.payload.len());
            match self.rng.gen_range(0, 3) {
                0 => out[i] ^= 1 << self.rng.gen_range(0, 8),
                1 => out[i] = (self.rng.next_u64() & 0xFF) as u8,
                _ => out[i] = 0,
            }
        }
        reseal_section(&mut out, &target);
        Some(out)
    }

    /// Cross-version / cross-snapshot surgery. Half the time the version
    /// stamp is rewritten (the restore must treat the file as not-a-
    /// snapshot); otherwise a whole section frame from `donor` — a
    /// snapshot taken under a *different* translator — replaces one of
    /// ours, checksums intact, so only the fingerprint gate stands between
    /// it and the memo. `None` if either framing is unwalkable.
    pub fn splice(&mut self, bytes: &[u8], donor: &[u8]) -> Option<Vec<u8>> {
        if self.rng.gen_bool(0.5) {
            let mut out = bytes.to_vec();
            if out.len() < 6 {
                return None;
            }
            out[4] = out[4].wrapping_add(1 + (self.rng.next_u64() & 0x7F) as u8);
            return Some(out);
        }
        let ours = snapshot_section_ranges(bytes).ok()?;
        let theirs: Vec<SectionRange> = snapshot_section_ranges(donor)
            .ok()?
            .into_iter()
            .filter(|s| !s.payload.is_empty())
            .collect();
        if ours.is_empty() || theirs.is_empty() {
            return None;
        }
        let dst = &ours[self.rng.gen_range(0, ours.len())];
        let src = &theirs[self.rng.gen_range(0, theirs.len())];
        let mut out = Vec::with_capacity(bytes.len());
        out.extend_from_slice(&bytes[..dst.frame.start]);
        out.extend_from_slice(&donor[src.frame.clone()]);
        out.extend_from_slice(&bytes[dst.frame.end..]);
        Some(out)
    }

    /// Stamps a boundary value over an aligned 4-byte window inside one
    /// section's payload and reseals the checksum. Counts and ids in the
    /// snapshot codec are 32-bit little-endian fields, so this reliably
    /// lands on one and forges `u32::MAX`-element graphs, sign-bit op ids,
    /// and megabyte string lengths that transport integrity will vouch
    /// for — the decoders' bounds checks are all that stands between the
    /// forged count and an unchecked allocation. `None` if the framing is
    /// unwalkable or no section has room for a 4-byte window.
    pub fn boundary_counts(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        const BOUNDARIES: [u32; 6] = [
            u32::MAX,
            u32::MAX - 1,
            0x8000_0000, // sign bit: `as usize`/`as i32` confusion probe
            0x0100_0000, // plausible-looking but unpayable allocation
            0x0001_0000,
            0,
        ];
        let sections: Vec<SectionRange> = snapshot_section_ranges(bytes)
            .ok()?
            .into_iter()
            .filter(|s| s.payload.len() >= 4)
            .collect();
        if sections.is_empty() {
            return None;
        }
        let target = sections[self.rng.gen_range(0, sections.len())].clone();
        let mut out = bytes.to_vec();
        let value = BOUNDARIES[self.rng.gen_range(0, BOUNDARIES.len())];
        // Word-align the window within the payload: the codec writes
        // whole little-endian words, so aligned stamps hit real fields.
        let words = target.payload.len() / 4;
        let at = target.payload.start + 4 * self.rng.gen_range(0, words);
        out[at..at + 4].copy_from_slice(&value.to_le_bytes());
        reseal_section(&mut out, &target);
        Some(out)
    }
}

/// Differential oracle for one corrupted-snapshot fuzz case: restores
/// `bytes` into fresh stores and audits **everything** that got through.
/// Every restored point/cache translation must re-pass [`verify_dfg`] and
/// [`verify_schedule`] with zero defects and carry accounting recomputed
/// from its own structure; every restored family body must re-pass
/// [`verify_dfg`] and [`verify_priority`]; every entry must sit behind the
/// right fingerprint gate. The restore path already enforces all of this —
/// the oracle re-derives it independently so a regression cannot hide.
///
/// # Errors
///
/// A human-readable description of the first accepted forgery — any `Err`
/// is a hole in the snapshot trust boundary, and fuzz harnesses treat it
/// as fatal.
pub fn check_restore(
    bytes: &[u8],
    t: &Translator,
    family_fp: Option<u64>,
) -> Result<RestoreReport, String> {
    let memo = TranslationMemo::new();
    let mut cache = CodeCache::with_byte_budget(16, 48 * 1024);
    let report = restore_warm_state(bytes, t, family_fp, Some(&memo), Some(&mut cache));

    let audit_translated = |tl: &crate::translator::TranslatedLoop| -> Result<(), String> {
        verify_dfg(&tl.dfg).map_err(|e| format!("restored graph fails verify_dfg: {e:?}"))?;
        let defects = verify_schedule(&tl.dfg, &tl.scheduled.schedule, t.config());
        if !defects.is_empty() {
            return Err(format!("restored schedule has defects: {defects:?}"));
        }
        if tl.control_words != tl.scheduled.schedule.control_words(t.config()) {
            return Err("restored control_words not recomputed from schedule".into());
        }
        if tl.accel_ops != tl.dfg.schedulable_ops().count() {
            return Err("restored accel_ops not recomputed from graph".into());
        }
        Ok(())
    };

    for (key, entry) in memo.export_entries() {
        match entry {
            MemoEntry::Point(m) => {
                if key.translator_fp != t.fingerprint() {
                    return Err("point entry breached the translator fingerprint gate".into());
                }
                if let Ok(tl) = &m.result {
                    audit_translated(tl)?;
                }
            }
            MemoEntry::Family(f) => {
                if key.translator_fp != family_fp.unwrap_or(0) {
                    return Err("family entry breached the family fingerprint gate".into());
                }
                if let Ok(b) = &f.body {
                    verify_dfg(&b.dfg)
                        .map_err(|e| format!("restored family graph fails verify_dfg: {e:?}"))?;
                    if let Some(order) = &b.static_order {
                        verify_priority(&b.dfg, order, &mut CostMeter::new())
                            .map_err(|e| format!("restored static order invalid: {e}"))?;
                    }
                }
            }
        }
    }
    let mut cached_bytes = 0;
    for (_, tl, charged) in cache.export_entries() {
        audit_translated(tl)?;
        if charged != tl.control_words * 4 {
            return Err("restored cache entry charged bytes it does not occupy".into());
        }
        cached_bytes += charged;
    }
    if cached_bytes > 48 * 1024 {
        return Err(format!("cache budget overcommitted: {cached_bytes} bytes"));
    }
    Ok(report)
}

/// The reference translation a degraded one must match: same translator,
/// with each *rejected* hint kind replaced by its dynamic fallback (CCA
/// re-identification, dynamic priority) and each accepted hint kept.
fn reference_translator(t: &Translator, verdict: &HintVerdict) -> Translator {
    let mut policy = t.policy();
    if matches!(verdict.cca, Some(Err(_))) {
        policy.static_cca = false;
    }
    if matches!(verdict.priority, Some(Err(_))) {
        policy.static_priority = false;
    }
    Translator::new(t.config().clone(), t.cca().cloned(), policy)
}

/// Differential oracle for one `(body, hints)` fuzz case.
///
/// Translates under the suspect hints, then re-translates with every
/// rejected hint step switched to its dynamic fallback, and demands the
/// two agree exactly: same abort, or same II / op times / unit
/// assignments / CCA group count. A surviving schedule must additionally
/// pass the independent constraint checker. When *both* hint kinds
/// degrade, the reference is precisely the fully-dynamic policy — the
/// paper's compatibility baseline.
///
/// # Errors
///
/// A human-readable description of the first divergence — any `Err` is a
/// bug in the trust boundary, and fuzz harnesses treat it as fatal.
pub fn check_degradation(
    t: &Translator,
    body: &LoopBody,
    hints: &StaticHints,
) -> Result<FaultVerdict, String> {
    let out = t.translate(body, hints);
    if !out.verdict.is_degraded() {
        // Nothing was rejected: either the hints validated (mutations like
        // a pure permutation are *supposed* to pass) or none were
        // consumed. The schedule check below still applies.
        return match out.result {
            Ok(tl) => {
                let defects = verify_schedule(&tl.dfg, &tl.scheduled.schedule, t.config());
                if defects.is_empty() {
                    Ok(FaultVerdict::Accelerated { degradations: 0 })
                } else {
                    Err(format!("accepted-hint schedule has defects: {defects:?}"))
                }
            }
            Err(e) => Ok(FaultVerdict::CpuFallback(e)),
        };
    }

    let degradations = out.verdict.degradations().len() as u64;
    let reference = reference_translator(t, &out.verdict);
    let ref_out = reference.translate(body, hints);
    match (out.result, ref_out.result) {
        (Err(a), Err(b)) => {
            if a == b {
                Ok(FaultVerdict::CpuFallback(a))
            } else {
                Err(format!("degraded abort {a:?} != dynamic abort {b:?}"))
            }
        }
        (Ok(a), Ok(b)) => {
            if a.scheduled.schedule.ii != b.scheduled.schedule.ii {
                return Err(format!(
                    "degraded II {} != dynamic II {}",
                    a.scheduled.schedule.ii, b.scheduled.schedule.ii
                ));
            }
            if a.scheduled.schedule.entries() != b.scheduled.schedule.entries() {
                return Err("degraded op times differ from dynamic fallback".into());
            }
            if a.cca_groups != b.cca_groups {
                return Err(format!(
                    "degraded CCA groups {} != dynamic {}",
                    a.cca_groups, b.cca_groups
                ));
            }
            let defects = verify_schedule(&a.dfg, &a.scheduled.schedule, t.config());
            if !defects.is_empty() {
                return Err(format!("degraded schedule has defects: {defects:?}"));
            }
            Ok(FaultVerdict::Accelerated { degradations })
        }
        (a, b) => Err(format!(
            "degraded result {:?} disagrees with dynamic fallback {:?}",
            a.map(|t| t.scheduled.schedule.ii),
            b.map(|t| t.scheduled.schedule.ii),
        )),
    }
}

/// Convenience: the translator most exposed to hints (static CCA and
/// priority, paper CCA) — what the fuzz harness drives by default.
#[must_use]
pub fn exposed_translator() -> Translator {
    Translator::new(
        veal_accel::AcceleratorConfig::paper_design(),
        Some(veal_cca::CcaSpec::paper()),
        TranslationPolicy::static_hints(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::{decode_module, encode_module, BinaryModule, EncodedLoop};
    use crate::hints::compute_hints;
    use veal_ir::{DfgBuilder, Opcode};

    fn media_loop(name: &str) -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.live_in();
        let m = b.op(Opcode::Mul, &[x, k]);
        let a = b.op(Opcode::And, &[m, k]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.store_stream(1, o);
        LoopBody::new(name, b.finish())
    }

    fn hinted_bytes() -> Vec<u8> {
        let body = media_loop("m");
        let hints = compute_hints(
            &body,
            &veal_accel::AcceleratorConfig::paper_design(),
            Some(&veal_cca::CcaSpec::paper()),
        );
        encode_module(&BinaryModule {
            loops: vec![EncodedLoop {
                priority_hint: hints.priority,
                cca_hint: hints.cca_groups,
                family_hint: None,
                body,
            }],
        })
    }

    #[test]
    fn fuzzer_is_deterministic() {
        let bytes = hinted_bytes();
        let a: Vec<Vec<u8>> = {
            let mut f = HintFuzzer::new(42);
            (0..16).map(|_| f.corrupt_bytes(&bytes)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut f = HintFuzzer::new(42);
            (0..16).map(|_| f.corrupt_bytes(&bytes)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|c| c != &bytes), "some corruption happened");
    }

    #[test]
    fn resealed_corruptions_decode() {
        let bytes = hinted_bytes();
        let mut f = HintFuzzer::new(7);
        let mut decoded = 0;
        for _ in 0..64 {
            if let Some(forged) = f.corrupt_hint_payload(&bytes) {
                // Transport accepts a resealed module unless the mutation
                // hit framing inside the payload (counts, lengths).
                if decode_module(&forged).is_ok() {
                    decoded += 1;
                }
            }
        }
        assert!(decoded > 0, "some forged modules must reach the validator");
    }

    #[test]
    fn oracle_accepts_valid_hints_and_rejects_nothing() {
        let body = media_loop("m");
        let t = exposed_translator();
        let hints = compute_hints(&body, t.config(), t.cca());
        let v = check_degradation(&t, &body, &hints).expect("oracle holds");
        assert_eq!(v, FaultVerdict::Accelerated { degradations: 0 });
    }

    #[test]
    fn oracle_matches_dynamic_fallback_for_mutated_hints() {
        let body = media_loop("m");
        let donor_body = media_loop("d");
        let t = exposed_translator();
        let hints = compute_hints(&body, t.config(), t.cca());
        let donor = compute_hints(&donor_body, t.config(), t.cca());
        let mut f = HintFuzzer::new(3);
        for i in 0..200 {
            let mutated = f.mutate_hints(&hints, Some(&donor));
            check_degradation(&t, &body, &mutated).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }

    fn warm_snapshot(t: &Translator) -> Vec<u8> {
        let memo = TranslationMemo::new();
        let mut cache = CodeCache::new(16);
        let body = media_loop("snap");
        let hints = StaticHints::none();
        let out = t.translate(&body, &hints);
        let key = crate::memo::MemoKey {
            loop_hash: body.dfg.content_hash(),
            translator_fp: t.fingerprint(),
            hints_fp: hints.fingerprint(),
        };
        if let Ok(tl) = &out.result {
            let arc = std::sync::Arc::new(tl.clone());
            let bytes = arc.control_words * 4;
            cache.insert_sized(key.loop_hash, arc, bytes);
        }
        memo.insert(
            key,
            MemoEntry::Point(crate::memo::MemoizedOutcome {
                result: out.result.map(std::sync::Arc::new),
                breakdown: out.breakdown,
                verdict: out.verdict,
            }),
        );
        crate::snapshot::encode_warm_state(
            t.fingerprint(),
            None,
            &memo.export_entries(),
            &cache.export_entries(),
        )
        .expect("warm state encodes")
    }

    #[test]
    fn snapshot_fuzzer_is_deterministic() {
        let t = exposed_translator();
        let bytes = warm_snapshot(&t);
        let run = |seed| -> Vec<Vec<u8>> {
            let mut f = SnapshotFuzzer::new(seed);
            (0..16)
                .flat_map(|_| {
                    [
                        f.corrupt_bytes(&bytes),
                        f.truncate(&bytes),
                        f.reseal_forgery(&bytes).unwrap_or_default(),
                        f.boundary_counts(&bytes).unwrap_or_default(),
                    ]
                })
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert!(run(11).iter().any(|c| c != &bytes));
    }

    #[test]
    fn restore_oracle_holds_under_every_prong() {
        let t = exposed_translator();
        let stale = Translator::new(
            t.config().clone(),
            t.cca().cloned(),
            TranslationPolicy::fully_dynamic(),
        );
        let bytes = warm_snapshot(&t);
        let donor = warm_snapshot(&stale);
        let mut f = SnapshotFuzzer::new(5);
        for i in 0..64 {
            for corrupted in [
                Some(f.corrupt_bytes(&bytes)),
                Some(f.truncate(&bytes)),
                f.reseal_forgery(&bytes),
                f.splice(&bytes, &donor),
                f.boundary_counts(&bytes),
            ]
            .into_iter()
            .flatten()
            {
                check_restore(&corrupted, &t, None).unwrap_or_else(|e| panic!("case {i}: {e}"));
            }
        }
    }

    #[test]
    fn spliced_stale_sections_are_rejected_by_the_fingerprint_gate() {
        let t = exposed_translator();
        let stale = Translator::new(
            t.config().clone(),
            t.cca().cloned(),
            TranslationPolicy::fully_dynamic(),
        );
        assert_ne!(t.fingerprint(), stale.fingerprint());
        // A donor snapshot restored wholesale under the wrong translator:
        // every entry is stale, none may land.
        let donor = warm_snapshot(&stale);
        let report = check_restore(&donor, &t, None).expect("oracle holds");
        assert!(report.is_cold());
        assert_eq!(report.rejected, 2, "point + cache entry, both stale");
    }
}
