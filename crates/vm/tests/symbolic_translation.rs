//! Differential gate for family-mode translation (ISSUE 7): over a seeded
//! corpus of ≥200 synthetic loops, `translate_symbolic` + `concretize`
//! must be **bit-identical** — result, per-phase charges, verdict, and the
//! VmStats a session accumulates — to direct point translation at every
//! configuration of the family and every trip count, and family-keyed memo
//! entries must never coalesce across distinct families or with point
//! entries.

use std::sync::Arc;
use veal_accel::{AcceleratorConfig, AcceleratorFamily};
use veal_cca::CcaSpec;
use veal_ir::rng::Rng64;
use veal_ir::{CostMeter, LoopBody, Phase};
use veal_vm::{
    compute_hints, MemoBackend, ShardedMemo, StaticHints, TranslationMemo, TranslationOutcome,
    TranslationPolicy, Translator, VmSession,
};
use veal_workloads::{synth_loop, SynthSpec};

const CASES: u64 = 200;

fn corpus_body(case: u64) -> LoopBody {
    let mut rng = Rng64::new(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA51);
    synth_loop(&SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(2, 28),
        fp_frac: if case.is_multiple_of(5) { 0.25 } else { 0.0 },
        loads: rng.gen_range(0, 4),
        stores: rng.gen_range(0, 2),
        recurrences: rng.gen_range(0, 3),
        rec_distance: 1 + (case as u32 % 3),
    })
}

/// The family grid: unit/register/II axes spanning the paper design —
/// includes tight-register and tiny-control-store corners so the corpus
/// exercises the register-pressure II-escalation loop and both error arms.
fn family_configs(case: u64) -> Vec<AcceleratorConfig> {
    let mut configs = vec![
        AcceleratorConfig::paper_design(),
        AcceleratorConfig::builder().int_units(1).build(),
        AcceleratorConfig::builder()
            .int_units(4)
            .fp_units(2)
            .build(),
        AcceleratorConfig::builder().int_regs(6).fp_regs(6).build(),
        AcceleratorConfig::builder().max_ii(4).build(),
    ];
    if case.is_multiple_of(3) {
        configs.push(AcceleratorConfig::builder().load_streams(2).build());
    }
    configs
}

fn assert_outcomes_identical(
    case: u64,
    config: &AcceleratorConfig,
    direct: &TranslationOutcome,
    symbolic: &TranslationOutcome,
) {
    assert_eq!(
        direct.breakdown, symbolic.breakdown,
        "case {case} at {config}: charges diverged"
    );
    assert_eq!(
        direct.verdict, symbolic.verdict,
        "case {case} at {config}: verdict diverged"
    );
    match (&direct.result, &symbolic.result) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.scheduled.schedule.ii, b.scheduled.schedule.ii);
            assert_eq!(
                a.scheduled.schedule.entries(),
                b.scheduled.schedule.entries()
            );
            assert_eq!(a.scheduled.mii, b.scheduled.mii);
            assert_eq!(
                a.scheduled.registers.pressure,
                b.scheduled.registers.pressure
            );
            assert_eq!(
                a.scheduled.registers.assignment,
                b.scheduled.registers.assignment
            );
            assert_eq!(a.control_words, b.control_words);
            assert_eq!(a.cca_groups, b.cca_groups);
            assert_eq!(a.accel_ops, b.accel_ops);
            assert_eq!(a.streams, b.streams);
            for trips in [1u64, 7, 100, 100_000] {
                assert_eq!(
                    a.kernel_cycles(trips),
                    b.kernel_cycles(trips),
                    "case {case} at {config}: cycles diverged at {trips} trips"
                );
            }
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "case {case} at {config}: error diverged"),
        (a, b) => panic!("case {case} at {config}: feasibility diverged: {a:?} vs {b:?}"),
    }
}

/// Property 1 (the tentpole gate): one symbolic translation per loop,
/// concretized at every family member, equals direct translation — across
/// hint regimes (none, computed, quarantine-style garbage).
#[test]
fn symbolic_concretize_equals_direct_translation_over_corpus() {
    let spec = CcaSpec::paper();
    let mut mapped = 0u64;
    let mut concretize_units = 0u64;
    for case in 0..CASES {
        let body = corpus_body(case);
        let configs = family_configs(case);
        let policy = match case % 3 {
            0 => TranslationPolicy::fully_dynamic(),
            1 => TranslationPolicy::fully_dynamic_height(),
            _ => TranslationPolicy::static_hints(),
        };
        let hints = match case % 3 {
            2 => compute_hints(&body, &configs[0], Some(&spec)),
            _ => StaticHints::none(),
        };
        // One symbolic translation for the whole family (the prefix is
        // config-independent; any member's translator can build it).
        let sym_builder = Translator::new(configs[0].clone(), Some(spec.clone()), policy);
        let sym = sym_builder.translate_symbolic(&body, &hints);
        for config in &configs {
            let t = Translator::new(config.clone(), Some(spec.clone()), policy);
            let direct = t.translate(&body, &hints);
            let mut cm = CostMeter::new();
            let concrete = t.concretize(&sym, &mut cm);
            assert_outcomes_identical(case, config, &direct, &concrete);
            assert!(
                cm.breakdown().get(Phase::Concretize) > 0,
                "concretization must charge the concretize meter"
            );
            assert_eq!(
                cm.breakdown().get(Phase::Concretize),
                cm.total(),
                "concretize work must land on the concretize phase only"
            );
            concretize_units += cm.total();
            mapped += u64::from(direct.result.is_ok());
        }
    }
    assert!(mapped > 300, "corpus degenerated: only {mapped} mapped");
    assert!(concretize_units > 0);
}

/// Property 2: a family-mode session sweep over N member configurations
/// accumulates bit-identical VmStats to N memo-less direct sessions, while
/// the shared memo holds ONE family entry (vs N point entries before).
#[test]
fn family_mode_vmstats_bit_identical_and_entries_collapse() {
    let spec = CcaSpec::paper();
    for case in 0..32 {
        let body = corpus_body(case);
        let configs = family_configs(case);
        let family = Arc::new(AcceleratorFamily::spanning(&configs).expect("same latencies"));
        let memo = Arc::new(TranslationMemo::new());
        for (i, config) in configs.iter().enumerate() {
            let t = || {
                Translator::new(
                    config.clone(),
                    Some(spec.clone()),
                    TranslationPolicy::fully_dynamic(),
                )
            };
            let mut direct = VmSession::new(t());
            direct.invoke(1, &body, &StaticHints::none());

            let mut fam = VmSession::new(t())
                .with_memo(Arc::clone(&memo))
                .with_family(Arc::clone(&family));
            fam.invoke(1, &body, &StaticHints::none());

            assert_eq!(
                direct.stats(),
                fam.stats(),
                "case {case} config {i}: family-mode stats diverged"
            );
            assert_eq!(fam.concretize_stats().concretizations, 1);
            assert!(fam.concretize_stats().units > 0);
            assert_eq!(direct.concretize_stats().concretizations, 0);
        }
        let stats = memo.stats();
        assert_eq!(stats.entries, 1, "case {case}: one family entry total");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, configs.len() - 1);
    }
}

/// Property 3 (satellite): distinct families never coalesce in a shared
/// [`ShardedMemo`], and family keys never collide with point keys — even
/// for a degenerate single-point family over the *same* configuration.
#[test]
fn family_fingerprints_are_disjoint_in_a_sharded_memo() {
    let body = corpus_body(7);
    let config = AcceleratorConfig::paper_design();
    let small = Arc::new(
        AcceleratorFamily::spanning(&[
            config.clone(),
            AcceleratorConfig::builder().int_units(1).build(),
        ])
        .unwrap(),
    );
    let wide = Arc::new(
        AcceleratorFamily::spanning(&[
            config.clone(),
            AcceleratorConfig::builder().int_units(8).build(),
        ])
        .unwrap(),
    );
    let degenerate = Arc::new(AcceleratorFamily::point(&config));

    let memo: Arc<ShardedMemo> = Arc::new(ShardedMemo::new(8));
    let session = |family: Option<Arc<AcceleratorFamily>>| {
        let t = Translator::new(config.clone(), None, TranslationPolicy::fully_dynamic());
        let s = VmSession::new(t).with_memo_backend(Arc::clone(&memo) as Arc<dyn MemoBackend>);
        match family {
            Some(f) => s.with_family(f),
            None => s,
        }
    };
    let mut outcomes = Vec::new();
    for family in [Some(small), Some(wide), Some(degenerate), None] {
        let mut s = session(family);
        let inv = s.invoke(1, &body, &StaticHints::none());
        outcomes.push(inv.translation_cycles);
    }
    // Four sessions, four *distinct* memo entries: two real families, the
    // degenerate family, and the point entry. Zero cross-family reuse.
    let stats = MemoBackend::stats(&*memo);
    assert_eq!(stats.entries, 4, "families must never coalesce");
    assert_eq!(stats.hits, 0);
    assert_eq!(memo.computes(), 4);
    assert_eq!(memo.duplicate_translations(), 0);
    // All four paths still agree on the simulated cost, of course.
    assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
}

/// Property 4: a session whose configuration lies outside the family keeps
/// the point-keyed path (a symbolic translation would not be valid there).
#[test]
fn out_of_family_config_falls_back_to_point_keys() {
    let body = corpus_body(3);
    let family = Arc::new(AcceleratorFamily::point(&AcceleratorConfig::paper_design()));
    let outside = AcceleratorConfig::builder().int_units(16).build();
    let memo = Arc::new(TranslationMemo::new());
    let mut s = VmSession::new(Translator::new(
        outside,
        None,
        TranslationPolicy::fully_dynamic(),
    ))
    .with_memo(Arc::clone(&memo))
    .with_family(family);
    s.invoke(1, &body, &StaticHints::none());
    assert_eq!(s.concretize_stats().concretizations, 0);
    assert_eq!(memo.stats().entries, 1);
}
