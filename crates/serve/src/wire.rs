//! The serving wire protocol (DESIGN.md §15).
//!
//! Frames reuse the binary-module framing dialect (`veal_vm::binfmt`): one
//! frame is `tag u8, len u32, checksum u64, payload`, little endian, with
//! the same FNV-1a payload checksum a module section carries — so a
//! network capture, a module file, and a snapshot all read with the same
//! tools. There is no stream-level handshake magic; the first frame on a
//! connection must be [`WireFrame::Hello`], which carries the protocol
//! version.
//!
//! # Trust model
//!
//! Everything that arrives on a socket is **untrusted**, exactly like a
//! module file or a snapshot (DESIGN.md §9): decoding never panics, never
//! allocates proportionally to a claimed length before bounds-checking it,
//! and classifies every defect as one of three severities:
//!
//! * [`FrameStatus::Incomplete`] — more bytes may still arrive; keep
//!   reading.
//! * [`FrameStatus::Reject`] — this frame is bad (checksum mismatch,
//!   unknown tag, malformed payload) but its length field framed it, so
//!   the stream resynchronizes at the next frame boundary. The connection
//!   survives; the reject is counted.
//! * [`FrameStatus::Fatal`] — the stream cannot be resynchronized (a
//!   length claim past the frame cap); the connection must close.
//!
//! A request's *module payload* is a further trust layer: the reactor
//! hands it to `veal_vm::decode_module`, which runs the full PR 3
//! verification gauntlet before any graph reaches a session. Response
//! payloads get the symmetric treatment client-side via
//! `veal_vm::decode_translated_loop`.

use veal_vm::section_checksum;
use veal_vm::{Reader, Writer};

/// Wire protocol version, carried in every [`WireFrame::Hello`].
pub const WIRE_VERSION: u16 = 1;

/// Default per-frame length cap. A length claim past the cap is
/// unresynchronizable ([`FrameStatus::Fatal`]): the claimed payload may
/// never arrive, and skipping it would desynchronize honest streams.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Frame header bytes: tag u8 + len u32 + checksum u64.
pub const FRAME_HEADER_LEN: usize = 13;

/// Connection handshake (client → server, first frame).
pub const FRAME_HELLO: u8 = 1;
/// Translation request carrying a packed single-loop module.
pub const FRAME_REQ_MODULE: u8 = 2;
/// Translation request carrying only a loop hash (memo-hit fast path).
pub const FRAME_REQ_HASH: u8 = 3;
/// Graceful-shutdown request (client → server).
pub const FRAME_SHUTDOWN: u8 = 4;
/// Completed translation (server → client).
pub const FRAME_OUTCOME: u8 = 5;
/// Typed per-request or per-connection error (server → client).
pub const FRAME_ERROR: u8 = 6;
/// Shutdown acknowledgment after the final checkpoint (server → client).
pub const FRAME_BYE: u8 = 7;

/// Typed error codes carried by [`WireFrame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame decoded but its module payload failed
    /// verification.
    Malformed,
    /// A [`WireFrame::ReqHash`] named a loop this server has no body for;
    /// the client must resend as [`WireFrame::ReqModule`].
    NeedBody,
    /// Admission control shed the request (queue over bound).
    Shed,
    /// The connection's hello was invalid (bad version, or not first).
    BadHello,
    /// The hello named a family fingerprint this server is not serving.
    FamilyMismatch,
    /// The server is at its connection cap.
    Overloaded,
}

impl ErrorCode {
    /// Wire byte of the code.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0,
            ErrorCode::NeedBody => 1,
            ErrorCode::Shed => 2,
            ErrorCode::BadHello => 3,
            ErrorCode::FamilyMismatch => 4,
            ErrorCode::Overloaded => 5,
        }
    }

    fn decode(b: u8) -> Option<Self> {
        Some(match b {
            0 => ErrorCode::Malformed,
            1 => ErrorCode::NeedBody,
            2 => ErrorCode::Shed,
            3 => ErrorCode::BadHello,
            4 => ErrorCode::FamilyMismatch,
            5 => ErrorCode::Overloaded,
            _ => return None,
        })
    }
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// First frame on a connection: protocol version, the client's tenant
    /// id, and the family fingerprint its hints were computed under
    /// (`None` for point-tuned clients).
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Dense tenant index the connection serves.
        tenant: u32,
        /// Family fingerprint of the client's hints, if any.
        family_fp: Option<u64>,
    },
    /// A translation request carrying the loop as a packed single-loop
    /// binary module (hints ride in the module's own hint sections). The
    /// module bytes are opaque at this layer — the consumer must pass them
    /// through `veal_vm::decode_module`, the untrusted-bytes gauntlet.
    ReqModule {
        /// Client-chosen sequence number, echoed in the response.
        seq: u32,
        /// The tenant's invocation key for the loop.
        key: u64,
        /// Packed module bytes (unverified).
        module: Vec<u8>,
    },
    /// A body-less request naming a loop by content hash: the memo-hit
    /// fast path. Only valid when this server has already decoded the same
    /// `(loop_hash, hints_fp)` body on some connection; otherwise it earns
    /// [`ErrorCode::NeedBody`] and the client falls back to
    /// [`WireFrame::ReqModule`].
    ReqHash {
        /// Client-chosen sequence number, echoed in the response.
        seq: u32,
        /// The tenant's invocation key for the loop.
        key: u64,
        /// `LoopBody::content_hash` of the loop.
        loop_hash: u64,
        /// `StaticHints::fingerprint` of the hints to apply.
        hints_fp: u64,
    },
    /// Ask the server to drain, checkpoint, and exit its accept loop.
    Shutdown,
    /// A completed request. `translated` holds the schedule in the
    /// snapshot's full-fidelity codec (`veal_vm::encode_translated_loop`)
    /// when the loop mapped; `None` means the loop runs on the CPU.
    Outcome {
        /// The request's sequence number.
        seq: u32,
        /// The request's invocation key.
        key: u64,
        /// Simulated translation cycles charged (0 on a cache hit).
        translation_cycles: u64,
        /// Encoded `TranslatedLoop`, when the loop mapped.
        translated: Option<Vec<u8>>,
    },
    /// A typed error. `seq` is the offending request's sequence number, or
    /// `u32::MAX` for connection-level errors (bad hello, overload).
    Error {
        /// Offending request, or `u32::MAX`.
        seq: u32,
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (validator verdicts, &c.).
        message: String,
    },
    /// Shutdown acknowledgment: the final checkpoint (if a policy is
    /// attached) has been written.
    Bye,
}

impl WireFrame {
    /// The frame's wire tag.
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            WireFrame::Hello { .. } => FRAME_HELLO,
            WireFrame::ReqModule { .. } => FRAME_REQ_MODULE,
            WireFrame::ReqHash { .. } => FRAME_REQ_HASH,
            WireFrame::Shutdown => FRAME_SHUTDOWN,
            WireFrame::Outcome { .. } => FRAME_OUTCOME,
            WireFrame::Error { .. } => FRAME_ERROR,
            WireFrame::Bye => FRAME_BYE,
        }
    }
}

/// Serializes one frame: `tag u8, len u32, checksum u64, payload`.
#[must_use]
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut p = Writer::new();
    match frame {
        WireFrame::Hello {
            version,
            tenant,
            family_fp,
        } => {
            p.u16(*version);
            p.u32(*tenant);
            match family_fp {
                None => p.u8(0),
                Some(fp) => {
                    p.u8(1);
                    p.u64(*fp);
                }
            }
        }
        WireFrame::ReqModule { seq, key, module } => {
            p.u32(*seq);
            p.u64(*key);
            p.bytes(module);
        }
        WireFrame::ReqHash {
            seq,
            key,
            loop_hash,
            hints_fp,
        } => {
            p.u32(*seq);
            p.u64(*key);
            p.u64(*loop_hash);
            p.u64(*hints_fp);
        }
        WireFrame::Shutdown | WireFrame::Bye => {}
        WireFrame::Outcome {
            seq,
            key,
            translation_cycles,
            translated,
        } => {
            p.u32(*seq);
            p.u64(*key);
            p.u64(*translation_cycles);
            match translated {
                None => p.u8(0),
                Some(bytes) => {
                    p.u8(1);
                    p.bytes(bytes);
                }
            }
        }
        WireFrame::Error { seq, code, message } => {
            p.u32(*seq);
            p.u8(code.encode());
            p.str(message);
        }
    }
    let mut w = Writer::new();
    w.section(frame.tag(), p.as_bytes());
    w.into_bytes()
}

/// What [`decode_frame`] found at the head of a connection's read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStatus {
    /// A complete, checksum-valid, well-formed frame; consume `consumed`
    /// bytes from the buffer.
    Frame {
        /// The decoded frame.
        frame: WireFrame,
        /// Bytes the frame occupied.
        consumed: usize,
    },
    /// The buffer holds only part of a frame; read more bytes.
    Incomplete,
    /// The frame is bad, but its length field framed it: skip `consumed`
    /// bytes, count the reject, keep the connection.
    Reject {
        /// Why the frame was rejected.
        reason: String,
        /// Bytes to skip to reach the next frame boundary.
        consumed: usize,
    },
    /// The stream cannot be resynchronized; close the connection.
    Fatal {
        /// Why the stream is unrecoverable.
        reason: String,
    },
}

/// Decodes the frame at the head of `buf`, if one is complete.
///
/// Never panics and never trusts a length: the payload length is checked
/// against `max_frame_len` *before* waiting for (or allocating) that many
/// bytes, the checksum is verified before the payload is parsed, and every
/// parse failure is a per-frame [`FrameStatus::Reject`] that leaves the
/// stream aligned on the next frame.
#[must_use]
pub fn decode_frame(buf: &[u8], max_frame_len: usize) -> FrameStatus {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameStatus::Incomplete;
    }
    let tag = buf[0];
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > max_frame_len {
        return FrameStatus::Fatal {
            reason: format!("frame length {len} exceeds cap {max_frame_len}"),
        };
    }
    let Some(total) = FRAME_HEADER_LEN.checked_add(len) else {
        return FrameStatus::Fatal {
            reason: "frame length overflows".into(),
        };
    };
    if buf.len() < total {
        return FrameStatus::Incomplete;
    }
    let stored = u64::from_le_bytes([
        buf[5], buf[6], buf[7], buf[8], buf[9], buf[10], buf[11], buf[12],
    ]);
    let payload = &buf[FRAME_HEADER_LEN..total];
    if section_checksum(payload) != stored {
        return FrameStatus::Reject {
            reason: format!("frame {tag:#x} payload fails its checksum"),
            consumed: total,
        };
    }
    match parse_payload(tag, payload) {
        Ok(frame) => FrameStatus::Frame {
            frame,
            consumed: total,
        },
        Err(reason) => FrameStatus::Reject {
            reason,
            consumed: total,
        },
    }
}

/// Parses one checksum-verified payload. Any error is a per-frame reject.
fn parse_payload(tag: u8, payload: &[u8]) -> Result<WireFrame, String> {
    let mut r = Reader::new(payload);
    let frame = match tag {
        FRAME_HELLO => {
            let version = r.u16().map_err(|e| e.to_string())?;
            let tenant = r.u32().map_err(|e| e.to_string())?;
            let family_fp = match r.u8().map_err(|e| e.to_string())? {
                0 => None,
                1 => Some(r.u64().map_err(|e| e.to_string())?),
                b => return Err(format!("bad family flag {b:#x}")),
            };
            WireFrame::Hello {
                version,
                tenant,
                family_fp,
            }
        }
        FRAME_REQ_MODULE => {
            let seq = r.u32().map_err(|e| e.to_string())?;
            let key = r.u64().map_err(|e| e.to_string())?;
            let module = r.take(r.remaining()).map_err(|e| e.to_string())?.to_vec();
            WireFrame::ReqModule { seq, key, module }
        }
        FRAME_REQ_HASH => WireFrame::ReqHash {
            seq: r.u32().map_err(|e| e.to_string())?,
            key: r.u64().map_err(|e| e.to_string())?,
            loop_hash: r.u64().map_err(|e| e.to_string())?,
            hints_fp: r.u64().map_err(|e| e.to_string())?,
        },
        FRAME_SHUTDOWN => WireFrame::Shutdown,
        FRAME_BYE => WireFrame::Bye,
        FRAME_OUTCOME => {
            let seq = r.u32().map_err(|e| e.to_string())?;
            let key = r.u64().map_err(|e| e.to_string())?;
            let translation_cycles = r.u64().map_err(|e| e.to_string())?;
            let translated = match r.u8().map_err(|e| e.to_string())? {
                0 => None,
                1 => Some(r.take(r.remaining()).map_err(|e| e.to_string())?.to_vec()),
                b => return Err(format!("bad outcome flag {b:#x}")),
            };
            WireFrame::Outcome {
                seq,
                key,
                translation_cycles,
                translated,
            }
        }
        FRAME_ERROR => {
            let seq = r.u32().map_err(|e| e.to_string())?;
            let code_byte = r.u8().map_err(|e| e.to_string())?;
            let code = ErrorCode::decode(code_byte)
                .ok_or_else(|| format!("bad error code {code_byte}"))?;
            let message = r.str().map_err(|e| e.to_string())?;
            WireFrame::Error { seq, code, message }
        }
        other => return Err(format!("unknown frame tag {other:#x}")),
    };
    if !r.is_done() {
        return Err(format!("frame {tag:#x} has trailing bytes"));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_frame() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                version: WIRE_VERSION,
                tenant: 3,
                family_fp: None,
            },
            WireFrame::Hello {
                version: WIRE_VERSION,
                tenant: 0,
                family_fp: Some(0xDEAD_BEEF),
            },
            WireFrame::ReqModule {
                seq: 7,
                key: 42,
                module: b"opaque module bytes".to_vec(),
            },
            WireFrame::ReqHash {
                seq: 8,
                key: 42,
                loop_hash: u64::MAX,
                hints_fp: 1,
            },
            WireFrame::Shutdown,
            WireFrame::Outcome {
                seq: 7,
                key: 42,
                translation_cycles: 157,
                translated: Some(vec![1, 2, 3]),
            },
            WireFrame::Outcome {
                seq: 9,
                key: 43,
                translation_cycles: 0,
                translated: None,
            },
            WireFrame::Error {
                seq: 7,
                code: ErrorCode::Malformed,
                message: "decoded graph is malformed: cycle".into(),
            },
            WireFrame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in every_frame() {
            let bytes = encode_frame(&f);
            match decode_frame(&bytes, MAX_FRAME_LEN) {
                FrameStatus::Frame { frame, consumed } => {
                    assert_eq!(frame, f);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{f:?} did not decode: {other:?}"),
            }
        }
    }

    #[test]
    fn a_stream_of_frames_decodes_in_order() {
        let frames = every_frame();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut at = 0;
        let mut got = Vec::new();
        while at < stream.len() {
            match decode_frame(&stream[at..], MAX_FRAME_LEN) {
                FrameStatus::Frame { frame, consumed } => {
                    got.push(frame);
                    at += consumed;
                }
                other => panic!("stream broke at {at}: {other:?}"),
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn every_prefix_is_incomplete_never_a_panic() {
        let bytes = encode_frame(&every_frame()[2]);
        for len in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..len], MAX_FRAME_LEN),
                FrameStatus::Incomplete,
                "prefix {len}"
            );
        }
    }

    #[test]
    fn a_flipped_payload_byte_rejects_the_frame_and_resynchronizes() {
        let good = encode_frame(&WireFrame::ReqHash {
            seq: 1,
            key: 2,
            loop_hash: 3,
            hints_fp: 4,
        });
        for i in FRAME_HEADER_LEN..good.len() {
            let mut dirty = good.clone();
            dirty[i] ^= 0x10;
            // A second, intact frame follows the damaged one.
            dirty.extend_from_slice(&good);
            match decode_frame(&dirty, MAX_FRAME_LEN) {
                FrameStatus::Reject { consumed, .. } => {
                    assert_eq!(consumed, good.len(), "resync lands on the next frame");
                    match decode_frame(&dirty[consumed..], MAX_FRAME_LEN) {
                        FrameStatus::Frame { frame, .. } => {
                            assert_eq!(frame.tag(), FRAME_REQ_HASH);
                        }
                        other => panic!("next frame unreadable: {other:?}"),
                    }
                }
                other => panic!("byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_tags_and_bad_codes_are_per_frame_rejects() {
        let mut w = Writer::new();
        w.section(0x7F, b"from the future");
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME_LEN),
            FrameStatus::Reject { .. }
        ));

        // A structurally valid error frame with an unknown code byte.
        let mut p = Writer::new();
        p.u32(1);
        p.u8(200);
        p.str("?");
        let mut w = Writer::new();
        w.section(FRAME_ERROR, p.as_bytes());
        assert!(matches!(
            decode_frame(&w.into_bytes(), MAX_FRAME_LEN),
            FrameStatus::Reject { .. }
        ));

        // Trailing bytes past a fixed-size payload.
        let mut p = Writer::new();
        p.u32(1);
        p.u64(2);
        p.u64(3);
        p.u64(4);
        p.u8(0xEE);
        let mut w = Writer::new();
        w.section(FRAME_REQ_HASH, p.as_bytes());
        assert!(matches!(
            decode_frame(&w.into_bytes(), MAX_FRAME_LEN),
            FrameStatus::Reject { .. }
        ));
    }

    #[test]
    fn oversized_length_claims_are_fatal_before_any_allocation() {
        // A 13-byte header claiming a 4 GiB payload: the stream is
        // unrecoverable (the bytes will never come), and the decoder must
        // say so from the header alone.
        let mut header = vec![FRAME_REQ_MODULE];
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_frame(&header, MAX_FRAME_LEN),
            FrameStatus::Fatal { .. }
        ));
        // At exactly the cap the decoder just waits for bytes.
        let mut header = vec![FRAME_REQ_MODULE];
        header.extend_from_slice(&u32::try_from(MAX_FRAME_LEN).unwrap().to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_frame(&header, MAX_FRAME_LEN),
            FrameStatus::Incomplete
        );
    }
}
