//! A hand-rolled non-blocking TCP reactor over the wire protocol
//! (DESIGN.md §15) — zero external deps, `std::net` only.
//!
//! One [`NetServer`] owns a [`TranslationService`] and a listener. The
//! reactor thread accepts connections (bounded by
//! [`NetConfig::max_connections`]), reads frames into per-connection
//! buffers, and feeds verified requests into a
//! [`crate::service::SessionPool`] — so admission control, shed-oldest
//! backpressure, single-flight memoization, and the per-tenant
//! bit-identity invariant are exactly the in-process service's, with the
//! socket layer purely a transport in front of them.
//!
//! Degradation story, per the trust model in [`crate::wire`]:
//!
//! * a malformed or checksum-damaged frame costs *that frame* — the
//!   reject is counted ([`veal_obs::Event::FrameReject`]) and the
//!   connection keeps its place in the stream;
//! * an unresynchronizable stream (oversized length claim) or a broken
//!   hello costs *that connection* — never the server;
//! * a module payload is untrusted until `veal_vm::decode_module` re-runs
//!   the full verification gauntlet; a graph that fails it earns a typed
//!   [`ErrorCode::Malformed`] response instead of a session invocation.
//!
//! Graceful shutdown ([`WireFrame::Shutdown`]) drains every admitted
//! request, flushes every response, writes the final snapshot through the
//! service's [`crate::CheckpointPolicy`] (when attached), and acknowledges
//! with [`WireFrame::Bye`] before the accept loop exits.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use veal_ir::LoopBody;
use veal_obs::{metrics, Counter, Event};
use veal_vm::{
    decode_module, decode_translated_loop, encode_module, encode_translated_loop, BinaryModule,
    EncodedLoop, StaticHints, TranslatedLoop,
};

use crate::service::{ServeStats, TenantReport, TranslationService};
use crate::wire::{
    decode_frame, encode_frame, ErrorCode, FrameStatus, WireFrame, MAX_FRAME_LEN, WIRE_VERSION,
};
use std::sync::Arc;

/// Process-global network meters.
struct NetMeters {
    accepted: &'static Counter,
    frames: &'static Counter,
    decode_rejects: &'static Counter,
    responses: &'static Counter,
    idle_evicted: &'static Counter,
}

fn meters() -> &'static NetMeters {
    static M: OnceLock<NetMeters> = OnceLock::new();
    M.get_or_init(|| NetMeters {
        accepted: metrics::counter("serve.net.accepted"),
        frames: metrics::counter("serve.net.frames"),
        decode_rejects: metrics::counter("serve.net.decode_rejects"),
        responses: metrics::counter("serve.net.responses"),
        idle_evicted: metrics::counter("serve.net.idle_evicted"),
    })
}

/// Reactor configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address (`"127.0.0.1:0"` binds an ephemeral port).
    pub addr: String,
    /// Idle deadline: a connection with no inbound bytes and no pending
    /// work for this long is evicted.
    pub idle_timeout: Duration,
    /// Accept cap; connections beyond it get [`ErrorCode::Overloaded`]
    /// and an immediate close.
    pub max_connections: usize,
    /// Per-connection cap on admitted-but-unanswered requests; requests
    /// beyond it get [`ErrorCode::Overloaded`] without touching a session.
    pub max_inflight: usize,
    /// Per-frame length cap (see [`crate::wire::MAX_FRAME_LEN`]).
    pub max_frame_len: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Duration::from_secs(30),
            max_connections: 64,
            max_inflight: 64,
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// Counters of one [`NetServer::run`].
#[derive(Debug, Default)]
pub struct NetReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Well-formed frames processed (any tag).
    pub frames: u64,
    /// Frames rejected at decode (checksum, tag, payload, module
    /// verification) without killing their connection.
    pub decode_rejects: u64,
    /// Response frames written (outcomes and typed errors).
    pub responses: u64,
    /// Connections evicted at the idle deadline.
    pub idle_evicted: u64,
    /// Connections closed for unresynchronizable streams or broken hellos.
    pub fatal_closes: u64,
    /// Pool-level serving counters (offered / shed / batches / checkpoint
    /// counters from the shutdown snapshot).
    pub stats: ServeStats,
    /// Per-tenant session reports (the bit-identity surface).
    pub tenants: Vec<TenantReport>,
}

/// One client connection's reactor state.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Dense tenant index, set by a valid hello.
    tenant: Option<usize>,
    /// Well-formed frames received over the connection's lifetime.
    frames: u64,
    /// Tokens admitted and not yet answered.
    inflight: usize,
    last_activity: Instant,
    /// Close once `wbuf` flushes.
    closing: bool,
}

impl Conn {
    fn push_frame(&mut self, frame: &WireFrame) {
        self.wbuf.extend_from_slice(&encode_frame(frame));
    }
}

/// Loops the server has already verified, keyed by
/// `(loop content hash, hints fingerprint)` — the lookup table behind the
/// body-less [`WireFrame::ReqHash`] fast path.
type BodyRegistry = HashMap<(u64, u64), (Arc<LoopBody>, Arc<StaticHints>)>;

/// Packs a connection slot and a client sequence number into the pool
/// token ([`crate::service::RequestOutcome::seq`]) for response routing.
///
/// Packed through `u64` so the shift is well-defined regardless of the
/// platform's `usize` width; on a 32-bit target a token that cannot be
/// represented fails loudly instead of silently routing the response to
/// connection slot 0.
fn pack_token(slot: usize, seq: u32) -> usize {
    let packed = ((slot as u64) << 32) | u64::from(seq);
    debug_assert_eq!(packed >> 32, slot as u64, "connection slot fits the token");
    usize::try_from(packed).expect("pool token fits usize")
}

fn unpack_token(token: usize) -> (usize, u32) {
    let token = token as u64;
    ((token >> 32) as usize, (token & 0xFFFF_FFFF) as u32)
}

/// The TCP server: a [`TranslationService`] behind the wire protocol.
pub struct NetServer {
    service: TranslationService,
    listener: TcpListener,
    config: NetConfig,
}

impl NetServer {
    /// Binds the listener (non-blocking) and wraps the service.
    ///
    /// # Errors
    ///
    /// Any socket error from bind or the non-blocking switch.
    pub fn bind(service: TranslationService, config: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            service,
            listener,
            config,
        })
    }

    /// The bound address (the ephemeral port, when `addr` asked for `:0`).
    ///
    /// # Errors
    ///
    /// Any socket error from `local_addr`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the reactor until a client sends [`WireFrame::Shutdown`]:
    /// accept, read, decode, admit, drain, respond, flush, evict — one
    /// thread, non-blocking sockets, a short sleep when nothing moves.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(self) -> NetReport {
        let NetServer {
            service,
            listener,
            config,
        } = self;
        let translator_family_fp = service.config().family.as_ref().map(|f| f.fingerprint());
        let mut pool = service.session_pool(0);
        let mut report = NetReport::default();
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut bodies = BodyRegistry::new();
        let mut shutdown_conn: Option<usize> = None;

        loop {
            let mut progressed = false;

            // Accept, unless shutting down.
            if shutdown_conn.is_none() {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            progressed = true;
                            let open = conns.iter().filter(|c| c.is_some()).count();
                            if open >= config.max_connections.max(1) {
                                // Over the cap: a best-effort typed error,
                                // then the connection is gone.
                                let mut stream = stream;
                                let _ = stream.write_all(&encode_frame(&WireFrame::Error {
                                    seq: u32::MAX,
                                    code: ErrorCode::Overloaded,
                                    message: "connection cap reached".into(),
                                }));
                                report.fatal_closes += 1;
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                report.fatal_closes += 1;
                                continue;
                            }
                            let conn = Conn {
                                stream,
                                rbuf: Vec::new(),
                                wbuf: Vec::new(),
                                tenant: None,
                                frames: 0,
                                inflight: 0,
                                last_activity: Instant::now(),
                                closing: false,
                            };
                            let slot =
                                conns.iter().position(Option::is_none).unwrap_or_else(|| {
                                    conns.push(None);
                                    conns.len() - 1
                                });
                            conns[slot] = Some(conn);
                            report.accepted += 1;
                            meters().accepted.inc();
                            service
                                .trace()
                                .emit(|| Event::ConnOpen { conn: slot as u64 });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // Read and decode every connection's inbound bytes.
            let mut admitted_any = false;
            for (slot, entry) in conns.iter_mut().enumerate() {
                let Some(conn) = entry.as_mut() else {
                    continue;
                };
                if conn.closing {
                    continue;
                }
                let mut closed_by_peer = false;
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            closed_by_peer = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                            progressed = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            closed_by_peer = true;
                            break;
                        }
                    }
                }

                // Decode every complete frame in the buffer.
                let mut fatal = false;
                let mut at = 0usize;
                loop {
                    match decode_frame(&conn.rbuf[at..], config.max_frame_len) {
                        FrameStatus::Incomplete => break,
                        FrameStatus::Fatal { reason } => {
                            service.trace().emit(|| Event::FrameReject {
                                conn: slot as u64,
                                reason: reason.clone(),
                            });
                            report.decode_rejects += 1;
                            meters().decode_rejects.inc();
                            fatal = true;
                            break;
                        }
                        FrameStatus::Reject { reason, consumed } => {
                            at += consumed;
                            report.decode_rejects += 1;
                            meters().decode_rejects.inc();
                            service.trace().emit(|| Event::FrameReject {
                                conn: slot as u64,
                                reason: reason.clone(),
                            });
                        }
                        FrameStatus::Frame { frame, consumed } => {
                            at += consumed;
                            conn.frames += 1;
                            report.frames += 1;
                            meters().frames.inc();
                            match Self::handle_frame(
                                frame,
                                slot,
                                conn,
                                &mut pool,
                                &mut bodies,
                                &mut report,
                                &config,
                                translator_family_fp,
                            ) {
                                Handled::Ok => admitted_any = true,
                                Handled::Quiet => {}
                                Handled::CloseConn => {
                                    conn.closing = true;
                                }
                                Handled::Shutdown => {
                                    shutdown_conn = Some(slot);
                                }
                            }
                        }
                    }
                }
                conn.rbuf.drain(..at);

                if fatal || closed_by_peer {
                    let frames = conn.frames;
                    if fatal {
                        report.fatal_closes += 1;
                    }
                    service.trace().emit(|| Event::ConnClose {
                        conn: slot as u64,
                        frames,
                    });
                    *entry = None;
                }
            }

            // Drain the pool and route outcomes back to their sockets.
            if admitted_any || shutdown_conn.is_some() {
                pool.drain();
                let tenant_count = conns
                    .iter()
                    .flatten()
                    .filter_map(|c| c.tenant)
                    .max()
                    .map_or(0, |t| t + 1);
                for tenant in 0..tenant_count {
                    for outcome in pool.take_outcomes(tenant) {
                        let (slot, seq) = unpack_token(outcome.seq);
                        let translated = outcome
                            .translated
                            .as_deref()
                            .map(encode_translated_loop)
                            .transpose();
                        let frame = match translated {
                            Ok(bytes) => WireFrame::Outcome {
                                seq,
                                key: outcome.key,
                                translation_cycles: outcome.translation_cycles,
                                translated: bytes,
                            },
                            Err(e) => WireFrame::Error {
                                seq,
                                code: ErrorCode::Malformed,
                                message: format!("response encode failed: {e}"),
                            },
                        };
                        if let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) {
                            conn.inflight = conn.inflight.saturating_sub(1);
                            conn.push_frame(&frame);
                            report.responses += 1;
                            meters().responses.inc();
                        }
                        progressed = true;
                    }
                }
            }

            // Flush write buffers (non-blocking, partial writes kept).
            for (slot, entry) in conns.iter_mut().enumerate() {
                let Some(conn) = entry.as_mut() else {
                    continue;
                };
                while !conn.wbuf.is_empty() {
                    match conn.stream.write(&conn.wbuf) {
                        Ok(0) => break,
                        Ok(n) => {
                            conn.wbuf.drain(..n);
                            progressed = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.closing = true;
                            conn.wbuf.clear();
                            break;
                        }
                    }
                }
                if conn.closing && conn.wbuf.is_empty() {
                    let frames = conn.frames;
                    service.trace().emit(|| Event::ConnClose {
                        conn: slot as u64,
                        frames,
                    });
                    *entry = None;
                }
            }

            // Idle eviction: no bytes and no pending work past the deadline.
            for (slot, entry) in conns.iter_mut().enumerate() {
                let evict = entry.as_ref().is_some_and(|c| {
                    c.inflight == 0
                        && c.wbuf.is_empty()
                        && c.last_activity.elapsed() >= config.idle_timeout
                });
                if evict {
                    let frames = entry.as_ref().map_or(0, |c| c.frames);
                    report.idle_evicted += 1;
                    meters().idle_evicted.inc();
                    service.trace().emit(|| Event::ConnClose {
                        conn: slot as u64,
                        frames,
                    });
                    *entry = None;
                }
            }

            // Graceful shutdown: everything drained and flushed — final
            // checkpoint, acknowledge, exit.
            if let Some(ack_slot) = shutdown_conn {
                let quiescent = conns
                    .iter()
                    .flatten()
                    .all(|c| c.inflight == 0 && c.wbuf.is_empty());
                if quiescent {
                    let mut stats = *pool.stats();
                    if let Some(policy) = service.checkpoint_policy() {
                        service.write_checkpoint(policy, &mut stats);
                    }
                    if let Some(conn) = conns.get_mut(ack_slot).and_then(Option::as_mut) {
                        let bye = encode_frame(&WireFrame::Bye);
                        conn.wbuf.extend_from_slice(&bye);
                        // Blocking flush of the farewell; the socket is
                        // about to close either way.
                        let _ = conn.stream.set_nonblocking(false);
                        let _ = conn.stream.write_all(&conn.wbuf);
                    }
                    for (slot, entry) in conns.iter_mut().enumerate() {
                        if let Some(c) = entry.take() {
                            service.trace().emit(|| Event::ConnClose {
                                conn: slot as u64,
                                frames: c.frames,
                            });
                        }
                    }
                    report.stats = stats;
                    report.tenants = pool.into_reports();
                    return report;
                }
            }

            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Handles one well-formed frame. Module payloads pass through the
    /// full untrusted-bytes gauntlet here before any session sees them.
    #[allow(clippy::too_many_arguments)]
    fn handle_frame(
        frame: WireFrame,
        slot: usize,
        conn: &mut Conn,
        pool: &mut crate::service::SessionPool<'_>,
        bodies: &mut BodyRegistry,
        report: &mut NetReport,
        config: &NetConfig,
        server_family_fp: Option<u64>,
    ) -> Handled {
        match frame {
            WireFrame::Hello {
                version,
                tenant,
                family_fp,
            } => {
                if version != WIRE_VERSION {
                    conn.push_frame(&WireFrame::Error {
                        seq: u32::MAX,
                        code: ErrorCode::BadHello,
                        message: format!("unsupported wire version {version}"),
                    });
                    report.responses += 1;
                    return Handled::CloseConn;
                }
                if let Some(fp) = family_fp {
                    if server_family_fp != Some(fp) {
                        conn.push_frame(&WireFrame::Error {
                            seq: u32::MAX,
                            code: ErrorCode::FamilyMismatch,
                            message: format!("server does not serve family {fp:#018x}"),
                        });
                        report.responses += 1;
                        return Handled::CloseConn;
                    }
                }
                conn.tenant = Some(tenant as usize);
                Handled::Quiet
            }
            WireFrame::ReqModule { seq, key, module } => {
                let Some(tenant) = conn.tenant else {
                    return Self::refuse(conn, report, seq, ErrorCode::BadHello, "hello first");
                };
                if conn.inflight >= config.max_inflight.max(1) {
                    return Self::refuse(
                        conn,
                        report,
                        seq,
                        ErrorCode::Overloaded,
                        "in-flight cap reached",
                    );
                }
                // The untrusted-bytes gauntlet: framing, checksums, graph
                // verification. A failure is a typed error, not a crash.
                let decoded = match decode_module(&module) {
                    Ok(m) => m,
                    Err(e) => {
                        report.decode_rejects += 1;
                        meters().decode_rejects.inc();
                        return Self::refuse(
                            conn,
                            report,
                            seq,
                            ErrorCode::Malformed,
                            &e.to_string(),
                        );
                    }
                };
                let [one] = decoded.loops.as_slice() else {
                    return Self::refuse(
                        conn,
                        report,
                        seq,
                        ErrorCode::Malformed,
                        "request module must pack exactly one loop",
                    );
                };
                let hints = Arc::new(one.hints());
                let body = Arc::new(one.body.clone());
                bodies.insert(
                    (body.dfg.content_hash(), hints.fingerprint()),
                    (Arc::clone(&body), Arc::clone(&hints)),
                );
                Self::admit(conn, pool, report, slot, tenant, seq, key, body, hints);
                Handled::Ok
            }
            WireFrame::ReqHash {
                seq,
                key,
                loop_hash,
                hints_fp,
            } => {
                let Some(tenant) = conn.tenant else {
                    return Self::refuse(conn, report, seq, ErrorCode::BadHello, "hello first");
                };
                if conn.inflight >= config.max_inflight.max(1) {
                    return Self::refuse(
                        conn,
                        report,
                        seq,
                        ErrorCode::Overloaded,
                        "in-flight cap reached",
                    );
                }
                let Some((body, hints)) = bodies.get(&(loop_hash, hints_fp)) else {
                    return Self::refuse(
                        conn,
                        report,
                        seq,
                        ErrorCode::NeedBody,
                        "unknown loop hash; resend with the module body",
                    );
                };
                let (body, hints) = (Arc::clone(body), Arc::clone(hints));
                Self::admit(conn, pool, report, slot, tenant, seq, key, body, hints);
                Handled::Ok
            }
            WireFrame::Shutdown => Handled::Shutdown,
            // Server-to-client frames arriving at the server are protocol
            // misuse; answer with a typed error and keep the connection.
            WireFrame::Outcome { seq, .. } => {
                Self::refuse(conn, report, seq, ErrorCode::Malformed, "unexpected frame")
            }
            WireFrame::Error { .. } | WireFrame::Bye => Self::refuse(
                conn,
                report,
                u32::MAX,
                ErrorCode::Malformed,
                "unexpected frame",
            ),
        }
    }

    /// Admits one request and queues shed errors for any evictions.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        conn: &mut Conn,
        pool: &mut crate::service::SessionPool<'_>,
        report: &mut NetReport,
        slot: usize,
        tenant: usize,
        seq: u32,
        key: u64,
        body: Arc<LoopBody>,
        hints: Arc<StaticHints>,
    ) {
        let shed = pool.admit(tenant, pack_token(slot, seq), key, body, hints);
        conn.inflight += 1;
        for token in shed {
            let (shed_slot, shed_seq) = unpack_token(token);
            // The shed request's own connection gets the error; with one
            // connection per tenant that is this connection.
            if shed_slot == slot {
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.push_frame(&WireFrame::Error {
                    seq: shed_seq,
                    code: ErrorCode::Shed,
                    message: "admission queue over bound; oldest shed".into(),
                });
                report.responses += 1;
                meters().responses.inc();
            }
        }
    }

    /// Queues a typed refusal on the connection; the connection survives.
    fn refuse(
        conn: &mut Conn,
        report: &mut NetReport,
        seq: u32,
        code: ErrorCode,
        message: &str,
    ) -> Handled {
        conn.push_frame(&WireFrame::Error {
            seq,
            code,
            message: message.into(),
        });
        report.responses += 1;
        meters().responses.inc();
        Handled::Quiet
    }
}

/// What handling one inbound frame did to the connection.
enum Handled {
    /// A request was admitted; a drain is due.
    Ok,
    /// Handled without admitting (hello, refusal).
    Quiet,
    /// The connection must close once its responses flush.
    CloseConn,
    /// Graceful shutdown was requested.
    Shutdown,
}

/// One completed request as the client observes it.
#[derive(Debug)]
pub struct ClientOutcome {
    /// Echoed sequence number.
    pub seq: u32,
    /// Echoed invocation key.
    pub key: u64,
    /// Simulated translation cycles charged (0 on a cache hit).
    pub translation_cycles: u64,
    /// The schedule, decoded and **re-verified client-side** through
    /// [`veal_vm::decode_translated_loop`] — a corrupt or hostile server
    /// cannot hand the client an invalid schedule.
    pub translated: Option<TranslatedLoop>,
    /// The raw response payload (for bit-identity comparisons).
    pub translated_bytes: Option<Vec<u8>>,
    /// The typed error, when the server refused the request.
    pub error: Option<(ErrorCode, String)>,
}

/// A blocking lock-step client: send one request, wait for its response.
/// Driving each tenant's stream in order over one connection reproduces
/// the per-tenant sequential invocation order the bit-identity invariant
/// requires.
pub struct WireClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_seq: u32,
    /// Bodies the server has verified from us: the ReqHash fast path.
    sent: std::collections::HashSet<(u64, u64)>,
    config: veal_accel::AcceleratorConfig,
    family_fp: Option<u64>,
}

impl WireClient {
    /// Connects and sends the hello.
    ///
    /// # Errors
    ///
    /// Any socket error from connect or the handshake write.
    pub fn connect(
        addr: &str,
        tenant: u32,
        family_fp: Option<u64>,
        config: veal_accel::AcceleratorConfig,
    ) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(&encode_frame(&WireFrame::Hello {
            version: WIRE_VERSION,
            tenant,
            family_fp,
        }))?;
        Ok(WireClient {
            stream,
            rbuf: Vec::new(),
            next_seq: 0,
            sent: std::collections::HashSet::new(),
            config,
            family_fp,
        })
    }

    /// Connects *without* sending a hello — for driving the server's
    /// request-before-hello refusal path in tests.
    ///
    /// # Errors
    ///
    /// Any socket error from connect.
    pub fn connect_raw(addr: &str, config: veal_accel::AcceleratorConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(WireClient {
            stream,
            rbuf: Vec::new(),
            next_seq: 0,
            sent: std::collections::HashSet::new(),
            config,
            family_fp: None,
        })
    }

    /// The underlying socket, for tests that inject hand-crafted or
    /// damaged bytes into the stream.
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Sends one translation request and blocks for its response. Tries
    /// the body-less [`WireFrame::ReqHash`] fast path for loops the server
    /// has already seen from this client, falling back to the full module
    /// on [`ErrorCode::NeedBody`].
    ///
    /// # Errors
    ///
    /// Socket errors, a closed stream, or an unrecoverable protocol
    /// violation by the server (typed refusals are `Ok` with
    /// [`ClientOutcome::error`] set).
    pub fn request(
        &mut self,
        key: u64,
        body: &LoopBody,
        hints: &StaticHints,
    ) -> io::Result<ClientOutcome> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let id = (body.dfg.content_hash(), hints.fingerprint());
        if self.sent.contains(&id) {
            self.stream.write_all(&encode_frame(&WireFrame::ReqHash {
                seq,
                key,
                loop_hash: id.0,
                hints_fp: id.1,
            }))?;
            let outcome = self.wait_for(seq)?;
            if !matches!(outcome.error, Some((ErrorCode::NeedBody, _))) {
                return Ok(outcome);
            }
            // The server forgot the body (restart, eviction): fall through
            // and resend it in full under a fresh sequence number.
            self.sent.remove(&id);
            return self.request(key, body, hints);
        }
        let module = encode_module(&BinaryModule {
            loops: vec![EncodedLoop {
                body: body.clone(),
                priority_hint: hints.priority.clone(),
                cca_hint: hints.cca_groups.clone(),
                family_hint: self.family_fp,
            }],
        });
        self.stream
            .write_all(&encode_frame(&WireFrame::ReqModule { seq, key, module }))?;
        let outcome = self.wait_for(seq)?;
        if outcome.error.is_none() {
            self.sent.insert(id);
        }
        Ok(outcome)
    }

    /// Requests graceful shutdown and blocks for the [`WireFrame::Bye`]
    /// acknowledgment (the final checkpoint is on disk once it arrives).
    ///
    /// # Errors
    ///
    /// Socket errors, or a stream closed before the acknowledgment.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stream.write_all(&encode_frame(&WireFrame::Shutdown))?;
        loop {
            match self.read_frame()? {
                WireFrame::Bye => return Ok(()),
                _ => continue,
            }
        }
    }

    /// Blocks until the response for `seq` arrives.
    fn wait_for(&mut self, seq: u32) -> io::Result<ClientOutcome> {
        loop {
            match self.read_frame()? {
                WireFrame::Outcome {
                    seq: got,
                    key,
                    translation_cycles,
                    translated,
                } if got == seq => {
                    let decoded = match &translated {
                        None => None,
                        Some(bytes) => {
                            Some(decode_translated_loop(bytes, &self.config).map_err(|e| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("response failed client-side verification: {e}"),
                                )
                            })?)
                        }
                    };
                    return Ok(ClientOutcome {
                        seq,
                        key,
                        translation_cycles,
                        translated: decoded,
                        translated_bytes: translated,
                        error: None,
                    });
                }
                WireFrame::Error {
                    seq: got,
                    code,
                    message,
                } if got == seq || got == u32::MAX => {
                    return Ok(ClientOutcome {
                        seq,
                        key: 0,
                        translation_cycles: 0,
                        translated: None,
                        translated_bytes: None,
                        error: Some((code, message)),
                    });
                }
                // Responses for other sequence numbers (shed notices for
                // older requests) or stray frames: skip.
                _ => continue,
            }
        }
    }

    /// Reads one complete frame off the blocking stream.
    fn read_frame(&mut self) -> io::Result<WireFrame> {
        loop {
            match decode_frame(&self.rbuf, MAX_FRAME_LEN) {
                FrameStatus::Frame { frame, consumed } => {
                    self.rbuf.drain(..consumed);
                    return Ok(frame);
                }
                FrameStatus::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                FrameStatus::Reject { reason, .. } | FrameStatus::Fatal { reason } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server sent a malformed frame: {reason}"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{pack_token, unpack_token};

    #[test]
    fn token_round_trips_at_boundary_values() {
        // The old packing shifted a `usize` by 32, which overflows on a
        // 32-bit target; the u64 path must round-trip every boundary.
        let max_slot = (1usize << 32) - 1;
        for &slot in &[0usize, 1, 0x7FFF_FFFF, 0x8000_0000, max_slot] {
            for &seq in &[0u32, 1, 0x7FFF_FFFF, u32::MAX] {
                let token = pack_token(slot, seq);
                assert_eq!(unpack_token(token), (slot, seq), "slot={slot} seq={seq}");
            }
        }
    }
}
