//! Seeded deterministic load generation.
//!
//! A [`LoadSpec`] fully determines a request stream: same seed, same
//! stream, byte for byte. Tenants draw from two pools — a **shared** pool
//! of loops every tenant embeds (the same library kernel linked into many
//! binaries, which is what the cross-tenant memo exists to absorb) and a
//! **private** per-tenant pool nobody else requests. `shared_permille`
//! sets the mix.

use crate::service::Request;
use std::sync::Arc;
use veal_accel::AcceleratorConfig;
use veal_cca::CcaSpec;
use veal_ir::rng::Rng64;
use veal_ir::LoopBody;
use veal_vm::{compute_hints, StaticHints};
use veal_workloads::{synth_loop, SynthSpec};

/// A deterministic description of an offered load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Seed for the whole stream (pools, mix, ordering).
    pub seed: u64,
    /// Number of tenants; requests round-robin across them.
    pub tenants: usize,
    /// Total requests in the stream.
    pub requests: usize,
    /// Size of the shared loop pool.
    pub shared_loops: usize,
    /// Size of each tenant's private loop pool.
    pub private_loops: usize,
    /// Probability (in permille) that a request draws from the shared pool.
    pub shared_permille: u32,
    /// Whether requests ship statically computed hints.
    pub hinted: bool,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            seed: 0x5EED_5E12,
            tenants: 4,
            requests: 256,
            shared_loops: 6,
            private_loops: 3,
            shared_permille: 700,
            hinted: true,
        }
    }
}

/// One pool entry: the body, its hints, and the invocation key tenants
/// use for it.
struct PoolLoop {
    key: u64,
    body: Arc<LoopBody>,
    hints: Arc<StaticHints>,
}

fn pool_loop(
    rng: &mut Rng64,
    key: u64,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
    hinted: bool,
) -> PoolLoop {
    let spec = SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(4, 24),
        fp_frac: [0.0, 0.4, 0.8][rng.gen_range(0, 3)],
        loads: rng.gen_range(1, 5),
        stores: rng.gen_range(1, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: rng.gen_range(1, 4) as u32,
    };
    let body = synth_loop(&spec);
    let hints = if hinted {
        compute_hints(&body, config, cca)
    } else {
        StaticHints::none()
    };
    PoolLoop {
        key,
        body: Arc::new(body),
        hints: Arc::new(hints),
    }
}

/// Generates the request stream described by `spec`, translating for
/// `config` (and `cca`, when the design has one).
///
/// Shared-pool loops carry the same `Arc<LoopBody>` across tenants (keys
/// `0..shared_loops`); private loops get per-tenant bodies keyed from
/// `shared_loops` upward. Tenancy is round-robin, so every tenant sees a
/// deterministic FIFO slice of the stream.
#[must_use]
pub fn generate(
    spec: &LoadSpec,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> Vec<Request> {
    let tenants = spec.tenants.max(1);
    let mut rng = Rng64::new(spec.seed);
    let shared: Vec<PoolLoop> = (0..spec.shared_loops.max(1))
        .map(|k| pool_loop(&mut rng, k as u64, config, cca, spec.hinted))
        .collect();
    let private: Vec<Vec<PoolLoop>> = (0..tenants)
        .map(|_| {
            (0..spec.private_loops.max(1))
                .map(|j| {
                    let key = (spec.shared_loops.max(1) + j) as u64;
                    pool_loop(&mut rng, key, config, cca, spec.hinted)
                })
                .collect()
        })
        .collect();

    (0..spec.requests)
        .map(|i| {
            let tenant = i % tenants;
            let pool = if rng.gen_range(0, 1000) < spec.shared_permille as usize {
                &shared
            } else {
                &private[tenant]
            };
            let l = &pool[rng.gen_range(0, pool.len())];
            Request {
                tenant,
                key: l.key,
                body: Arc::clone(&l.body),
                hints: Arc::clone(&l.hints),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arms() -> (AcceleratorConfig, CcaSpec) {
        (AcceleratorConfig::paper_design(), CcaSpec::paper())
    }

    #[test]
    fn same_seed_same_stream() {
        let (config, cca) = arms();
        let spec = LoadSpec::default();
        let a = generate(&spec, &config, Some(&cca));
        let b = generate(&spec, &config, Some(&cca));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.key, y.key);
            assert_eq!(x.body.content_hash(), y.body.content_hash());
            assert_eq!(x.hints.fingerprint(), y.hints.fingerprint());
        }
    }

    #[test]
    fn shared_loops_are_the_same_body_across_tenants() {
        let (config, cca) = arms();
        let spec = LoadSpec {
            shared_permille: 1000,
            ..LoadSpec::default()
        };
        let stream = generate(&spec, &config, Some(&cca));
        for r in &stream {
            assert!((r.key as usize) < spec.shared_loops);
        }
        // The same key always maps to the same allocation, whatever the
        // tenant — that sharing is what drives cross-tenant memo hits.
        for r in &stream {
            let twin = stream
                .iter()
                .find(|o| o.key == r.key && o.tenant != r.tenant);
            if let Some(twin) = twin {
                assert!(Arc::ptr_eq(&r.body, &twin.body));
            }
        }
    }

    #[test]
    fn tenancy_is_round_robin_and_mix_respects_the_knob() {
        let (config, cca) = arms();
        let spec = LoadSpec {
            requests: 1000,
            shared_permille: 0,
            ..LoadSpec::default()
        };
        let stream = generate(&spec, &config, Some(&cca));
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.tenant, i % spec.tenants);
            assert!((r.key as usize) >= spec.shared_loops, "private-only mix");
        }
    }

    #[test]
    fn unhinted_streams_ship_empty_hints() {
        let (config, _) = arms();
        let spec = LoadSpec {
            hinted: false,
            requests: 16,
            ..LoadSpec::default()
        };
        for r in generate(&spec, &config, None) {
            assert_eq!(r.hints.fingerprint(), StaticHints::none().fingerprint());
        }
    }
}
