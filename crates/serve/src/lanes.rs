//! A deterministic abstract-cycle model of the service's dispatch policy.
//!
//! Wall-clock scaling measured inside a container is a property of the
//! host (this repo's CI runs on one core), so — exactly like the rest of
//! the repo's paper figures — the serving numbers that matter are
//! *simulated*: list scheduling of the same batched, per-tenant-FIFO
//! dispatch onto `lanes` abstract workers, costed in translation cycles.
//! Same inputs, same schedule, on any machine.
//!
//! The model mirrors [`crate::service`]'s policy one-to-one: a tenant is
//! processed by at most one lane at a time, its requests complete in FIFO
//! order, and a lane drains up to `batch_size` requests per turn before
//! the tenant re-enters the ready pool. Each request additionally pays
//! [`DISPATCH_OVERHEAD_CYCLES`], so batching shows up in the numbers the
//! way it does in the real service.

/// Fixed per-request dispatch cost (queue pop, session lock, bookkeeping)
/// in abstract cycles.
pub const DISPATCH_OVERHEAD_CYCLES: u64 = 64;

/// What the lane model produced for one `(lanes, batch_size)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneReport {
    /// Lanes simulated.
    pub lanes: usize,
    /// Batch size simulated.
    pub batch_size: usize,
    /// Requests scheduled.
    pub requests: u64,
    /// Cycle at which the last request completed.
    pub makespan_cycles: u64,
    /// Requests per million cycles (`requests / makespan × 1e6`).
    pub throughput_rpmc: f64,
    /// Median completion latency in cycles (burst arrival at cycle 0).
    pub p50_cycles: u64,
    /// 99th-percentile completion latency in cycles.
    pub p99_cycles: u64,
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `q` in
/// `[0, 1]`. Returns 0 for an empty slice.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Schedules `costs` (per-tenant request costs in FIFO order, translation
/// cycles each) onto `lanes` workers with the service's dispatch policy.
///
/// Arrival is a burst at cycle 0, so a request's completion cycle is its
/// latency. Ties (several idle lanes, several ready tenants) break toward
/// the lowest index — the whole schedule is a pure function of its inputs.
#[must_use]
pub fn simulate_lanes(costs: &[Vec<u64>], lanes: usize, batch_size: usize) -> LaneReport {
    let lanes = lanes.max(1);
    let batch_size = batch_size.max(1);
    let mut lane_clock = vec![0u64; lanes];
    let mut tenant_clock = vec![0u64; costs.len()];
    let mut next = vec![0usize; costs.len()];
    let mut completions: Vec<u64> = Vec::with_capacity(costs.iter().map(Vec::len).sum());

    // The service's ready queue: a drained tenant with remaining work goes
    // to the *back*, so tenants interleave round-robin rather than one
    // tenant monopolizing the lanes.
    let mut ready: std::collections::VecDeque<usize> =
        (0..costs.len()).filter(|&t| !costs[t].is_empty()).collect();
    while let Some(tenant) = ready.pop_front() {
        // The earliest-free lane takes the turn (lowest index on ties).
        let lane = (0..lanes).min_by_key(|&l| lane_clock[l]).unwrap_or(0);
        let mut clock = lane_clock[lane].max(tenant_clock[tenant]);
        for _ in 0..batch_size.min(costs[tenant].len() - next[tenant]) {
            clock += costs[tenant][next[tenant]] + DISPATCH_OVERHEAD_CYCLES;
            completions.push(clock);
            next[tenant] += 1;
        }
        lane_clock[lane] = clock;
        tenant_clock[tenant] = clock;
        if next[tenant] < costs[tenant].len() {
            ready.push_back(tenant);
        }
    }

    completions.sort_unstable();
    let makespan = completions.last().copied().unwrap_or(0);
    LaneReport {
        lanes,
        batch_size,
        requests: completions.len() as u64,
        makespan_cycles: makespan,
        throughput_rpmc: if makespan == 0 {
            0.0
        } else {
            completions.len() as f64 / makespan as f64 * 1e6
        },
        p50_cycles: percentile(&completions, 0.50),
        p99_cycles: percentile(&completions, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(tenants: usize, per_tenant: usize, cost: u64) -> Vec<Vec<u64>> {
        vec![vec![cost; per_tenant]; tenants]
    }

    #[test]
    fn one_lane_serializes_everything() {
        let costs = balanced(3, 4, 1000);
        let r = simulate_lanes(&costs, 1, 8);
        assert_eq!(r.requests, 12);
        assert_eq!(r.makespan_cycles, 12 * (1000 + DISPATCH_OVERHEAD_CYCLES));
        assert_eq!(r.p99_cycles, r.makespan_cycles);
    }

    #[test]
    fn independent_tenants_scale_with_lanes() {
        let costs = balanced(4, 16, 2000);
        let solo = simulate_lanes(&costs, 1, 8);
        let quad = simulate_lanes(&costs, 4, 8);
        assert_eq!(solo.requests, quad.requests);
        // Four equal tenants on four lanes run fully in parallel.
        assert_eq!(quad.makespan_cycles * 4, solo.makespan_cycles);
        assert!(quad.throughput_rpmc > solo.throughput_rpmc * 3.9);
    }

    #[test]
    fn a_single_tenant_cannot_use_more_than_one_lane() {
        let costs = balanced(1, 10, 500);
        let solo = simulate_lanes(&costs, 1, 4);
        let many = simulate_lanes(&costs, 8, 4);
        // Per-tenant FIFO means extra lanes buy nothing for one tenant —
        // the invariant that guarantees solo-replay bit-identity.
        assert_eq!(solo.makespan_cycles, many.makespan_cycles);
    }

    #[test]
    fn smaller_batches_cut_tail_latency_on_skewed_tenants() {
        // Tenant 0 has a long queue; tenant 1 one short request. With a
        // huge batch on one lane, tenant 1 waits behind the whole drain of
        // tenant 0; batch 1 lets it slip in after one request.
        let costs = vec![vec![1000; 16], vec![100]];
        let coarse = simulate_lanes(&costs, 1, 16);
        let fine = simulate_lanes(&costs, 1, 1);
        assert!(fine.p50_cycles < coarse.p50_cycles);
        assert_eq!(coarse.requests, fine.requests);
    }

    #[test]
    fn the_model_is_a_pure_function() {
        let costs = vec![vec![10, 2000, 5], vec![7], vec![300, 300]];
        assert_eq!(simulate_lanes(&costs, 3, 2), simulate_lanes(&costs, 3, 2));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.50), 5);
        assert_eq!(percentile(&v, 0.99), 10);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
