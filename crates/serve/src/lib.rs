//! A concurrent multi-tenant translation service over the co-designed VM.
//!
//! The ROADMAP's north star is translation served at scale: many tenants
//! (processes, binaries) stream loop-translation requests at a shared
//! backend, which must amortize duplicate work across tenants without ever
//! changing what any single tenant observes. This crate is that backend,
//! behind two front doors: in-process (a seeded load generator
//! ([`LoadSpec`]) produces a deterministic request stream, and a
//! [`TranslationService`] batches it across tenants onto a worker pool),
//! and over TCP ([`net`]) — a zero-dependency loopback server speaking the
//! length-prefixed, checksummed wire protocol of [`wire`] (DESIGN.md §15),
//! with every inbound module re-verified through the untrusted-bytes
//! gauntlet before any session sees it.
//!
//! The architecture (DESIGN.md §11):
//!
//! * **Per-tenant sessions** — each tenant owns a [`veal_vm::VmSession`]
//!   (code cache, quarantine state, statistics). Workers drain one tenant
//!   at a time, in FIFO order, so a tenant's invocation sequence is exactly
//!   what a solo session would see.
//! * **Sharded memo + single-flight** — sessions share one
//!   [`veal_vm::ShardedMemo`]: lock-striped lookups, and at most one
//!   in-flight translation per key ([`veal_vm::MemoBackend`]).
//! * **Admission control** — bounded per-tenant queues shed the *oldest*
//!   queued request under overload ([`ServeStats::shed`]); the service
//!   degrades by dropping stale work, never by blocking the stream.
//!
//! The invariant that makes the concurrency safe to trust: per-tenant
//! [`veal_vm::VmStats`] and every translated schedule are **bit-identical**
//! to replaying that tenant's admitted requests on a solo session.
//! Concurrency may reorder work across tenants, never results within one.
//! `tests/serve.rs` asserts this differentially over seeded corpora.
//!
//! Wall-clock throughput depends on host cores; the paper-style numbers
//! come from [`lanes`], a deterministic abstract-cycle simulation of the
//! same dispatch policy (see `bench_serve`).

pub mod lanes;
pub mod loadgen;
pub mod net;
pub mod service;
pub mod wire;

pub use lanes::{percentile, simulate_lanes, LaneReport, DISPATCH_OVERHEAD_CYCLES};
pub use loadgen::{generate, LoadSpec};
pub use net::{ClientOutcome, NetConfig, NetReport, NetServer, WireClient};
pub use service::{
    CheckpointPolicy, Request, RequestOutcome, ServeConfig, ServeReport, ServeStats, SessionPool,
    TenantReport, TranslationService,
};
pub use wire::{decode_frame, encode_frame, ErrorCode, FrameStatus, WireFrame, WIRE_VERSION};
