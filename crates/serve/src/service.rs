//! The multi-tenant translation service.
//!
//! One [`TranslationService`] owns the shared [`ShardedMemo`] and a
//! configuration; each [`TranslationService::run`] call serves one request
//! stream on fresh per-tenant sessions (the memo persists across runs, so
//! a second run over the same corpus is the warm-memo arm).
//!
//! Dispatch: a tenant index sits in the ready queue exactly when it has
//! admitted work and no worker is currently draining it. Workers pop a
//! tenant, drain up to `batch_size` requests in FIFO order under the
//! tenant's lock, then requeue it if work remains. One worker per tenant
//! at a time ⇒ every tenant observes a strictly sequential invocation
//! order ⇒ the solo-replay bit-identity invariant holds by construction.

use crate::lanes::{simulate_lanes, LaneReport};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use veal_accel::{AcceleratorConfig, AcceleratorFamily};
use veal_cca::CcaSpec;
use veal_ir::LoopBody;
use veal_obs::{metrics, Counter, Event, Histogram, Trace};
use veal_vm::{
    encode_warm_state, restore_warm_state, save_atomic, CacheStats, CodeCache, ConcretizeStats,
    EncodeError, MemoBackend, MemoStats, RestoreReport, ShardedMemo, StaticHints, TranslatedLoop,
    TranslationPolicy, Translator, VmSession, VmStats,
};

/// Process-global serve-path meters (PR 4 rule: the service increments,
/// reporting reads; local counters stay the source of truth for reports).
struct ServeMeters {
    offered: &'static Counter,
    shed: &'static Counter,
    completed: &'static Counter,
    batches: &'static Counter,
    latency_ns: &'static Histogram,
    checkpoints: &'static Counter,
    checkpoint_retries: &'static Counter,
    checkpoint_failures: &'static Counter,
}

fn meters() -> &'static ServeMeters {
    static M: OnceLock<ServeMeters> = OnceLock::new();
    M.get_or_init(|| ServeMeters {
        offered: metrics::counter("serve.requests.offered"),
        shed: metrics::counter("serve.requests.shed"),
        completed: metrics::counter("serve.requests.completed"),
        batches: metrics::counter("serve.batches"),
        latency_ns: metrics::histogram("serve.request.wall_ns"),
        checkpoints: metrics::counter("serve.checkpoints"),
        checkpoint_retries: metrics::counter("serve.checkpoint.retries"),
        checkpoint_failures: metrics::counter("serve.checkpoint.failures"),
    })
}

/// One translation request in the stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Which tenant issued it (dense indices from 0).
    pub tenant: usize,
    /// The tenant's invocation key for the loop.
    pub key: u64,
    /// The loop to translate. Shared bodies (`Arc`) model binaries that
    /// embed the same kernel — the cross-tenant duplication the memo and
    /// single-flight exist to absorb.
    pub body: Arc<LoopBody>,
    /// Static hints shipped with the binary.
    pub hints: Arc<StaticHints>,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the ready queue.
    pub threads: usize,
    /// Max requests drained per tenant per dispatch turn. Larger batches
    /// amortize dispatch overhead; smaller ones interleave tenants more
    /// fairly.
    pub batch_size: usize,
    /// Per-tenant admission-queue bound; the oldest queued request is shed
    /// when a tenant's queue is full.
    pub queue_capacity: usize,
    /// Shards of the shared memo (rounded up to a power of two).
    pub shards: usize,
    /// Whether concurrent misses on one key coalesce onto one translation.
    pub single_flight: bool,
    /// Per-tenant code-cache entries.
    pub cache_entries: usize,
    /// Optional per-tenant code-cache byte budget (oversized translations
    /// are rejected, never overcommitted).
    pub cache_byte_budget: Option<usize>,
    /// Optional per-translation watchdog budget, in abstract units.
    pub translation_budget: Option<u64>,
    /// Accelerator design point every tenant translates for.
    pub config: AcceleratorConfig,
    /// CCA specification, when the design has a CCA.
    pub cca: Option<CcaSpec>,
    /// Translation policy (hint consumption vs. fully dynamic).
    pub policy: TranslationPolicy,
    /// Optional accelerator family for symbolic serving: when present and
    /// it contains [`ServeConfig::config`], tenant sessions memoize one
    /// [`veal_vm::SymbolicTranslation`] per loop under the family
    /// fingerprint and concretize per request (see
    /// [`veal_vm::VmSession::with_family`]). Tenant-visible statistics are
    /// bit-identical to point-keyed serving.
    pub family: Option<Arc<AcceleratorFamily>>,
}

impl ServeConfig {
    /// The paper design point with serving defaults: 8 memo shards,
    /// single-flight on, 16-entry caches, batch of 8, 64-deep queues.
    #[must_use]
    pub fn paper() -> Self {
        ServeConfig {
            threads: veal_par::thread_count(),
            batch_size: 8,
            queue_capacity: 64,
            shards: 8,
            single_flight: true,
            cache_entries: 16,
            cache_byte_budget: None,
            translation_budget: None,
            config: AcceleratorConfig::paper_design(),
            cca: Some(CcaSpec::paper()),
            policy: TranslationPolicy::static_hints(),
            family: None,
        }
    }

    /// A solo session configured exactly like the service's per-tenant
    /// sessions, minus the shared memo: the reference for the differential
    /// determinism tests.
    #[must_use]
    pub fn solo_session(&self) -> VmSession {
        let mut session = VmSession::with_cache(self.translator(), self.cache());
        if let Some(units) = self.translation_budget {
            session = session.with_translation_budget(units);
        }
        session
    }

    fn translator(&self) -> Translator {
        Translator::new(self.config.clone(), self.cca.clone(), self.policy)
    }

    fn cache(&self) -> CodeCache<Arc<TranslatedLoop>> {
        match self.cache_byte_budget {
            Some(bytes) => CodeCache::with_byte_budget(self.cache_entries, bytes),
            None => CodeCache::new(self.cache_entries),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Periodic warm-state checkpointing for crash recovery.
///
/// When attached ([`TranslationService::with_checkpoints`]), the service
/// writes the shared memo to `path` with [`veal_vm::save_atomic`] after
/// every `every_windows` windows of a [`TranslationService::run_windowed`]
/// call, plus once at the end of every run (the shutdown snapshot). Writes
/// never block correctness: a failing write is retried with doubling
/// backoff up to `max_retries` times, then abandoned — the previous
/// on-disk checkpoint survives intact either way, because the write is
/// temp-file-plus-rename.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Snapshot destination; the parent directory must exist.
    pub path: PathBuf,
    /// Checkpoint cadence in windows (0 = shutdown snapshot only).
    pub every_windows: usize,
    /// Write attempts beyond the first before a checkpoint is abandoned.
    pub max_retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
}

impl CheckpointPolicy {
    /// A policy with serving defaults: checkpoint every 4 windows, 3
    /// retries, 10 ms initial backoff.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_windows: 4,
            max_retries: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// Counters of one [`TranslationService::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests in the stream.
    pub offered: u64,
    /// Requests dropped by shed-oldest backpressure.
    pub shed: u64,
    /// Requests processed to completion (`offered - shed`).
    pub completed: u64,
    /// Dispatch turns taken (tenant drains of up to `batch_size`).
    pub batches: u64,
    /// Translations actually computed through the memo this run.
    pub computes: u64,
    /// Lookups coalesced onto another thread's in-flight translation.
    pub coalesced: u64,
    /// Redundant translations this run (`computes` minus new memo
    /// entries); 0 under single-flight.
    pub duplicate_translations: u64,
    /// Family-mode concretizations across all tenants this run (0 when
    /// [`ServeConfig::family`] is unset).
    pub concretizations: u64,
    /// Host work charged to those concretizations, in abstract units.
    pub concretize_units: u64,
    /// Shared-memo counters at the end of the run (cumulative across runs
    /// on the same service).
    pub memo: MemoStats,
    /// Checkpoints written to disk this run (periodic + shutdown).
    pub checkpoints: u64,
    /// Checkpoint write attempts beyond the first, summed over the run
    /// (nonzero means the filesystem pushed back).
    pub checkpoint_retries: u64,
    /// Host wall time of the run.
    pub wall_ns: u64,
}

/// One completed request, in the tenant's processing (= admission) order.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Index of the request in the offered stream.
    pub seq: usize,
    /// The tenant's invocation key.
    pub key: u64,
    /// The resident translation, when the loop mapped.
    pub translated: Option<Arc<TranslatedLoop>>,
    /// Simulated cycles this invocation charged (0 on a code-cache hit).
    pub translation_cycles: u64,
    /// Host wall time from admission to completion.
    pub latency_ns: u64,
}

/// Everything one tenant's session produced.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant index.
    pub tenant: usize,
    /// The session's statistics — bit-identical to a solo replay.
    pub stats: VmStats,
    /// The session's code-cache statistics.
    pub cache: CacheStats,
    /// Family-mode concretization counters (zeroes outside family mode).
    pub concretize: ConcretizeStats,
    /// Completed requests in processing order.
    pub outcomes: Vec<RequestOutcome>,
}

/// The result of serving one request stream.
#[derive(Debug)]
pub struct ServeReport {
    /// Run-level counters.
    pub stats: ServeStats,
    /// Per-tenant sessions, indexed by tenant.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// All completion latencies, ascending.
    #[must_use]
    pub fn sorted_latencies_ns(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .tenants
            .iter()
            .flat_map(|t| t.outcomes.iter().map(|o| o.latency_ns))
            .collect();
        all.sort_unstable();
        all
    }

    /// Replays this run's per-request simulated costs through the
    /// deterministic lane model (same dispatch policy, abstract cycles) —
    /// the host-independent throughput/latency figures.
    #[must_use]
    pub fn lane_model(&self, lanes: usize, batch_size: usize) -> LaneReport {
        let costs: Vec<Vec<u64>> = self
            .tenants
            .iter()
            .map(|t| t.outcomes.iter().map(|o| o.translation_cycles).collect())
            .collect();
        simulate_lanes(&costs, lanes, batch_size)
    }
}

/// A queued request awaiting dispatch.
struct Admitted {
    seq: usize,
    key: u64,
    body: Arc<LoopBody>,
    hints: Arc<StaticHints>,
    admitted_at: Instant,
}

/// One tenant's serving state; locked as a unit, so exactly one worker
/// drains a tenant at any moment.
struct TenantState {
    session: VmSession,
    queue: VecDeque<Admitted>,
    outcomes: Vec<RequestOutcome>,
}

impl TenantState {
    fn process(&mut self, req: Admitted) {
        let inv = self.session.invoke(req.key, &req.body, &req.hints);
        let latency_ns = u64::try_from(req.admitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        meters().latency_ns.record(latency_ns);
        meters().completed.inc();
        self.outcomes.push(RequestOutcome {
            seq: req.seq,
            key: req.key,
            translated: inv.translated,
            translation_cycles: inv.translation_cycles,
            latency_ns,
        });
    }
}

/// Doubling backoff for the `retry`-th (0-based) checkpoint retry. The
/// exponent is clamped before the shift: `1u32 << retry` overflows (debug
/// panic, release wrap-to-tiny) once a generous retry budget pushes
/// `retry ≥ 32`, and past 2^20 doublings the multiply saturates anyway.
fn retry_backoff(base: Duration, retry: u64) -> Duration {
    let exp = u32::try_from(retry).unwrap_or(u32::MAX).min(20);
    base.saturating_mul(1u32 << exp)
}

/// Worker coordination for one drain phase.
struct Dispatch {
    /// Tenant indices with queued work and no worker attached.
    ready: Mutex<VecDeque<usize>>,
    wake: Condvar,
    /// Admitted requests not yet completed this phase.
    remaining: AtomicUsize,
    done: AtomicBool,
}

/// The multi-tenant translation service. See the crate docs for the
/// architecture and the determinism invariant.
#[derive(Debug)]
pub struct TranslationService {
    config: ServeConfig,
    memo: Arc<ShardedMemo>,
    trace: Trace,
    checkpoint: Option<CheckpointPolicy>,
}

impl TranslationService {
    /// Creates a service; the shared memo lives as long as the service, so
    /// successive runs reuse translations (warm arms).
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let memo =
            Arc::new(ShardedMemo::new(config.shards).with_single_flight(config.single_flight));
        TranslationService {
            config,
            memo,
            trace: Trace::null(),
            checkpoint: None,
        }
    }

    /// Attaches a trace handle cloned into every tenant session. Sinks are
    /// line-atomic ([`veal_obs::JsonlSink`]), so concurrent tenants produce
    /// a valid (interleaved) JSONL stream.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a checkpoint policy: [`TranslationService::run_windowed`]
    /// persists the shared memo periodically and at the end of each run.
    #[must_use]
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared memo (for duplicate-translation accounting in tests and
    /// benchmarks).
    #[must_use]
    pub fn memo(&self) -> &Arc<ShardedMemo> {
        &self.memo
    }

    /// Serializes the service's warm state — the shared memo — into the
    /// [`veal_vm::snapshot`] wire format. Tenant code caches are per-run
    /// state and are not captured; a restored service rebuilds them from
    /// the memo at full fidelity (cached cycles replay from the entries).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when a count or id overflows the format's
    /// fixed-width fields (implausibly oversized state; never silently
    /// truncated).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, EncodeError> {
        let translator = self.config.translator();
        let family_fp = self
            .config
            .family
            .as_ref()
            .map(|f| translator.family_fingerprint(f));
        encode_warm_state(
            translator.fingerprint(),
            family_fp,
            &self.memo.export_entries(),
            &[],
        )
    }

    /// Restores warm state from untrusted snapshot bytes into the shared
    /// memo. Every entry is re-validated against this service's translator
    /// and family fingerprints; damaged or stale entries are skipped and
    /// counted, and arbitrary bytes at worst leave the service cold — this
    /// never fails and never panics.
    pub fn restore_snapshot(&self, bytes: &[u8]) -> RestoreReport {
        let translator = self.config.translator();
        let family_fp = self
            .config
            .family
            .as_ref()
            .map(|f| translator.family_fingerprint(f));
        let report = restore_warm_state(bytes, &translator, family_fp, Some(&*self.memo), None);
        self.trace.emit(|| Event::SnapshotRestore {
            restored: report.restored(),
            salvaged: report.salvaged,
            rejected: report.rejected,
        });
        report
    }

    /// Writes one checkpoint under the policy's retry budget. Failure —
    /// including un-encodable warm state — is absorbed (counted, never
    /// propagated); the previous on-disk checkpoint survives intact.
    pub(crate) fn write_checkpoint(&self, policy: &CheckpointPolicy, stats: &mut ServeStats) {
        let Ok(bytes) = self.save_snapshot() else {
            meters().checkpoint_failures.inc();
            return;
        };
        let mut retries = 0u64;
        loop {
            match save_atomic(&policy.path, &bytes) {
                Ok(()) => {
                    stats.checkpoints += 1;
                    meters().checkpoints.inc();
                    self.trace.emit(|| Event::CheckpointWrite {
                        bytes: bytes.len() as u64,
                        retries,
                    });
                    return;
                }
                Err(_) if retries < u64::from(policy.max_retries) => {
                    stats.checkpoint_retries += 1;
                    meters().checkpoint_retries.inc();
                    std::thread::sleep(retry_backoff(policy.backoff, retries));
                    retries += 1;
                }
                Err(_) => {
                    meters().checkpoint_failures.inc();
                    return;
                }
            }
        }
    }

    /// The attached checkpoint policy, if any (graceful-shutdown paths
    /// outside this module write the final snapshot through it).
    pub(crate) fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// The attached trace handle (the network reactor emits its
    /// connection-lifecycle events into the same stream the sessions use).
    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    /// One tenant's serving state, configured exactly like
    /// [`ServeConfig::solo_session`] plus the shared memo and trace — the
    /// construction both [`TranslationService::run_windowed`] and
    /// [`TranslationService::session_pool`] use, so the bit-identity
    /// invariant holds for either entry point.
    fn tenant_state(&self) -> TenantState {
        let mut session = self
            .config
            .solo_session()
            .with_memo_backend(Arc::clone(&self.memo) as Arc<dyn MemoBackend>)
            .with_trace(self.trace.clone());
        if let Some(family) = &self.config.family {
            session = session.with_family(Arc::clone(family));
        }
        TenantState {
            session,
            queue: VecDeque::new(),
            outcomes: Vec::new(),
        }
    }

    /// Creates a [`SessionPool`]: persistent per-tenant sessions for
    /// callers that feed requests incrementally (the network reactor in
    /// [`crate::net`]) instead of as one pre-materialized stream. The pool
    /// borrows the service, so it shares the memo, trace, and config.
    #[must_use]
    pub fn session_pool(&self, tenant_count: usize) -> SessionPool<'_> {
        SessionPool {
            service: self,
            tenants: (0..tenant_count)
                .map(|_| Mutex::new(self.tenant_state()))
                .collect(),
            queue_capacity: self.config.queue_capacity,
            stats: ServeStats::default(),
        }
    }

    /// Serves the whole stream open-loop: every request is admitted up
    /// front (shedding under the queue bound), then drained to completion.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> ServeReport {
        self.run_windowed(requests, usize::MAX)
    }

    /// Closed-loop serving: admit `window` requests, drain them, repeat.
    /// Shedding only occurs when a single window overruns a tenant's queue
    /// bound, so the window size is the offered-load knob.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    #[must_use]
    pub fn run_windowed(&self, requests: &[Request], window: usize) -> ServeReport {
        assert!(window > 0, "window must be positive");
        let t0 = Instant::now();
        let computes_before = self.memo.computes();
        let coalesced_before = self.memo.coalesced();
        let entries_before = MemoBackend::stats(&*self.memo).entries as u64;

        let tenant_count = requests.iter().map(|r| r.tenant + 1).max().unwrap_or(0);
        let tenants: Vec<Mutex<TenantState>> = (0..tenant_count)
            .map(|_| Mutex::new(self.tenant_state()))
            .collect();

        let mut stats = ServeStats {
            offered: requests.len() as u64,
            ..ServeStats::default()
        };
        let mut base = 0usize;
        let mut windows = 0usize;
        for chunk in requests.chunks(window.min(requests.len().max(1))) {
            // Admission is single-threaded and precedes the drain, so which
            // requests survive the queue bound is a pure function of the
            // stream — shedding is deterministic regardless of threads.
            for (offset, r) in chunk.iter().enumerate() {
                meters().offered.inc();
                let seq = base + offset;
                let mut tenant = tenants[r.tenant]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // `>=`, not `==`: if the queue is ever *over* the bound
                // (e.g. the capacity shrank between windows), every excess
                // request is shed, not just one — an equality check would
                // leave the queue permanently over bound.
                while tenant.queue.len() >= self.config.queue_capacity.max(1) {
                    tenant.queue.pop_front();
                    stats.shed += 1;
                    meters().shed.inc();
                }
                tenant.queue.push_back(Admitted {
                    seq,
                    key: r.key,
                    body: Arc::clone(&r.body),
                    hints: Arc::clone(&r.hints),
                    admitted_at: Instant::now(),
                });
            }
            base += chunk.len();
            stats.batches += self.drain(&tenants);
            windows += 1;
            if let Some(policy) = &self.checkpoint {
                if policy.every_windows > 0 && windows.is_multiple_of(policy.every_windows) {
                    self.write_checkpoint(policy, &mut stats);
                }
            }
        }
        // The shutdown snapshot: every run ends with the warm state on
        // disk, so a crash between runs costs nothing.
        if let Some(policy) = &self.checkpoint {
            self.write_checkpoint(policy, &mut stats);
        }

        stats.completed = stats.offered - stats.shed;
        stats.computes = self.memo.computes() - computes_before;
        stats.coalesced = self.memo.coalesced() - coalesced_before;
        let new_entries = MemoBackend::stats(&*self.memo).entries as u64 - entries_before;
        stats.duplicate_translations = stats.computes.saturating_sub(new_entries);
        stats.memo = MemoBackend::stats(&*self.memo);
        stats.wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let tenants: Vec<TenantReport> = tenants
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let t = t.into_inner().unwrap_or_else(PoisonError::into_inner);
                debug_assert!(t.queue.is_empty(), "drain left queued work");
                TenantReport {
                    tenant: i,
                    stats: t.session.stats().clone(),
                    cache: t.session.cache_stats(),
                    concretize: t.session.concretize_stats(),
                    outcomes: t.outcomes,
                }
            })
            .collect();
        // Concretize counters are session-lifetime; windowed runs reuse the
        // sessions across windows, so per-run totals are exact here.
        stats.concretizations = tenants.iter().map(|t| t.concretize.concretizations).sum();
        stats.concretize_units = tenants.iter().map(|t| t.concretize.units).sum();
        ServeReport { stats, tenants }
    }

    /// Drains every queued request; returns the number of dispatch turns.
    fn drain(&self, tenants: &[Mutex<TenantState>]) -> u64 {
        let mut ready = VecDeque::new();
        let mut total = 0usize;
        for (i, t) in tenants.iter().enumerate() {
            let n = t.lock().unwrap_or_else(PoisonError::into_inner).queue.len();
            if n > 0 {
                ready.push_back(i);
                total += n;
            }
        }
        if total == 0 {
            return 0;
        }
        let dispatch = Dispatch {
            ready: Mutex::new(ready),
            wake: Condvar::new(),
            remaining: AtomicUsize::new(total),
            done: AtomicBool::new(false),
        };
        let batches = AtomicU64::new(0);
        let batch_size = self.config.batch_size.max(1);
        let workers = self.config.threads.max(1).min(tenants.len());
        if workers == 1 {
            Self::worker(&dispatch, tenants, batch_size, &batches);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| Self::worker(&dispatch, tenants, batch_size, &batches));
                }
            });
        }
        batches.load(Ordering::Relaxed)
    }

    fn worker(
        dispatch: &Dispatch,
        tenants: &[Mutex<TenantState>],
        batch_size: usize,
        batches: &AtomicU64,
    ) {
        loop {
            let idx = {
                let mut ready = dispatch
                    .ready
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(i) = ready.pop_front() {
                        break i;
                    }
                    if dispatch.done.load(Ordering::Acquire) {
                        return;
                    }
                    ready = dispatch
                        .wake
                        .wait(ready)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let mut tenant = tenants[idx].lock().unwrap_or_else(PoisonError::into_inner);
            let drained = batch_size.min(tenant.queue.len());
            for _ in 0..drained {
                let req = tenant.queue.pop_front().expect("counted above");
                tenant.process(req);
            }
            let more = !tenant.queue.is_empty();
            drop(tenant);
            batches.fetch_add(1, Ordering::Relaxed);
            meters().batches.inc();
            if more {
                let mut ready = dispatch
                    .ready
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                ready.push_back(idx);
                dispatch.wake.notify_one();
            }
            if dispatch.remaining.fetch_sub(drained, Ordering::AcqRel) == drained {
                // Publish `done` under the ready mutex: idle workers check
                // the flag between locking and wait(), so an unlocked
                // store+notify could land inside that window, the wakeup
                // would be lost, and the waiter would park forever.
                let _ready = dispatch
                    .ready
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                dispatch.done.store(true, Ordering::Release);
                dispatch.wake.notify_all();
            }
        }
    }
}

/// Persistent per-tenant sessions behind the same admission, shedding, and
/// dispatch machinery as [`TranslationService::run_windowed`], for callers
/// that feed requests incrementally — the network reactor in [`crate::net`]
/// — rather than as one pre-materialized stream.
///
/// The serving invariant carries over unchanged: admission happens on the
/// caller's single thread (deterministic shed-oldest under the queue
/// bound), at most one worker drains a tenant at a time, and a tenant's
/// outcomes land in admission order — so per-tenant statistics and
/// schedules are bit-identical to a solo replay of that tenant's request
/// order.
///
/// Each admitted request carries a caller-chosen `token` (surfaced as
/// [`RequestOutcome::seq`]); the reactor packs a connection slot and a
/// client sequence number into it to route completed work back to the
/// right socket.
pub struct SessionPool<'a> {
    service: &'a TranslationService,
    tenants: Vec<Mutex<TenantState>>,
    queue_capacity: usize,
    stats: ServeStats,
}

impl SessionPool<'_> {
    /// Queues one request for `tenant`, growing the pool if the tenant is
    /// new, and returns the tokens of any requests shed to keep the queue
    /// within the current capacity (oldest first). Admission is
    /// caller-threaded, so shedding stays a pure function of the admission
    /// order.
    pub fn admit(
        &mut self,
        tenant: usize,
        token: usize,
        key: u64,
        body: Arc<LoopBody>,
        hints: Arc<StaticHints>,
    ) -> Vec<usize> {
        while self.tenants.len() <= tenant {
            self.tenants.push(Mutex::new(self.service.tenant_state()));
        }
        self.stats.offered += 1;
        meters().offered.inc();
        let mut state = self.tenants[tenant]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut shed = Vec::new();
        // `>=` sheds *all* overflow: after a capacity shrink the queue may
        // sit above the new bound, and every excess entry must go.
        while state.queue.len() >= self.queue_capacity.max(1) {
            let old = state.queue.pop_front().expect("len checked above");
            shed.push(old.seq);
            self.stats.shed += 1;
            meters().shed.inc();
        }
        state.queue.push_back(Admitted {
            seq: token,
            key,
            body,
            hints,
            admitted_at: Instant::now(),
        });
        shed
    }

    /// Rebounds the per-tenant admission queues from the next `admit` on.
    /// Queues already over the new bound shed down to it at that point.
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        self.queue_capacity = capacity;
    }

    /// Drains every queued request through the worker pool; returns the
    /// dispatch turns taken.
    pub fn drain(&mut self) -> u64 {
        let batches = self.service.drain(&self.tenants);
        self.stats.batches += batches;
        batches
    }

    /// Removes and returns `tenant`'s completed outcomes, in processing
    /// (= admission) order. Empty for an unknown tenant or between drains.
    pub fn take_outcomes(&mut self, tenant: usize) -> Vec<RequestOutcome> {
        let outcomes = self.tenants.get(tenant).map_or_else(Vec::new, |t| {
            std::mem::take(&mut t.lock().unwrap_or_else(PoisonError::into_inner).outcomes)
        });
        // Local completion accounting: the process-global meter already
        // ticks inside `TenantState::process`.
        self.stats.completed += outcomes.len() as u64;
        outcomes
    }

    /// Pool-level counters (offered / shed / completed / batches)
    /// accumulated so far; `completed` counts outcomes already handed back
    /// through [`SessionPool::take_outcomes`].
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Tears the pool down into per-tenant reports. Outcomes already
    /// removed by [`SessionPool::take_outcomes`] are not replayed here —
    /// only the sessions' cumulative statistics and anything not yet taken.
    #[must_use]
    pub fn into_reports(self) -> Vec<TenantReport> {
        self.tenants
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let t = t.into_inner().unwrap_or_else(PoisonError::into_inner);
                TenantReport {
                    tenant: i,
                    stats: t.session.stats().clone(),
                    cache: t.session.cache_stats(),
                    concretize: t.session.concretize_stats(),
                    outcomes: t.outcomes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadSpec};

    fn small_stream(requests: usize) -> (ServeConfig, Vec<Request>) {
        let cfg = ServeConfig::paper();
        let spec = LoadSpec {
            requests,
            tenants: 3,
            ..LoadSpec::default()
        };
        let stream = generate(&spec, &cfg.config, cfg.cca.as_ref());
        (cfg, stream)
    }

    #[test]
    fn a_run_completes_every_admitted_request() {
        let (cfg, stream) = small_stream(60);
        let service = TranslationService::new(cfg);
        let report = service.run(&stream);
        assert_eq!(report.stats.offered, 60);
        assert_eq!(report.stats.shed, 0, "default queues are deep enough");
        assert_eq!(report.stats.completed, 60);
        let outcomes: usize = report.tenants.iter().map(|t| t.outcomes.len()).sum();
        assert_eq!(outcomes, 60);
        assert!(report.stats.computes > 0, "a cold memo must compute");
        assert_eq!(report.stats.duplicate_translations, 0);
        // Each tenant saw its slice of the stream, in stream order.
        for t in &report.tenants {
            for (a, b) in t.outcomes.iter().zip(t.outcomes.iter().skip(1)) {
                assert!(a.seq < b.seq, "tenant {} processed out of order", t.tenant);
            }
        }
    }

    #[test]
    fn overload_sheds_the_oldest_requests() {
        let (mut cfg, stream) = small_stream(90);
        cfg.queue_capacity = 4;
        let service = TranslationService::new(cfg);
        let report = service.run(&stream);
        assert_eq!(report.stats.offered, 90);
        assert_eq!(report.stats.shed, 90 - 3 * 4);
        assert_eq!(report.stats.completed, 12);
        // Shed-oldest: the survivors are each tenant's *newest* requests.
        for t in &report.tenants {
            assert_eq!(t.outcomes.len(), 4);
            let mut newest: Vec<usize> = stream
                .iter()
                .enumerate()
                .filter(|(_, r)| r.tenant == t.tenant)
                .map(|(i, _)| i)
                .collect();
            newest.drain(..newest.len() - 4);
            let got: Vec<usize> = t.outcomes.iter().map(|o| o.seq).collect();
            assert_eq!(got, newest, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn many_workers_with_scarce_work_always_terminate() {
        // Regression: `done` was published without holding the ready
        // mutex, so the final notify_all could land between an idle
        // worker's done-check and its wait(), get lost, and park that
        // worker forever. Many workers racing over little work maximizes
        // the window; repeated drains make a reintroduced lost wakeup
        // hang here rather than nondeterministically in CI at large.
        let mut cfg = ServeConfig::paper();
        cfg.threads = 8;
        cfg.batch_size = 1;
        let spec = LoadSpec {
            requests: 16,
            tenants: 8,
            ..LoadSpec::default()
        };
        let stream = generate(&spec, &cfg.config, cfg.cca.as_ref());
        let service = TranslationService::new(cfg);
        for _ in 0..200 {
            let report = service.run(&stream);
            assert_eq!(report.stats.completed, 16);
        }
    }

    #[test]
    fn windowed_runs_shed_nothing_the_open_loop_run_would_keep() {
        let (mut cfg, stream) = small_stream(90);
        cfg.queue_capacity = 4;
        let service = TranslationService::new(cfg);
        // Windows no larger than tenants × capacity never overrun a queue.
        let report = service.run_windowed(&stream, 12);
        assert_eq!(report.stats.shed, 0);
        assert_eq!(report.stats.completed, 90);
    }

    #[test]
    fn family_mode_serving_is_bit_identical_under_contention() {
        // 8 workers hammering a shared symbolic memo: tenant stats must
        // equal point-keyed serving's exactly, single-flight must still
        // dedupe leaders, and every request pays a local concretization.
        let (mut cfg, stream) = small_stream(96);
        cfg.threads = 8;
        let point = TranslationService::new(cfg.clone()).run(&stream);
        cfg.family = Some(Arc::new(AcceleratorFamily::point(&cfg.config)));
        let service = TranslationService::new(cfg);
        let family = service.run(&stream);

        assert_eq!(family.stats.completed, point.stats.completed);
        assert_eq!(family.stats.duplicate_translations, 0);
        let translate_attempts: u64 = family.tenants.iter().map(|t| t.stats.translations).sum();
        assert_eq!(
            family.stats.concretizations, translate_attempts,
            "every code-cache-missing invocation concretizes its family entry"
        );
        assert!(family.stats.concretize_units > 0);
        assert_eq!(point.stats.concretizations, 0);
        for (p, f) in point.tenants.iter().zip(&family.tenants) {
            assert_eq!(p.stats, f.stats, "tenant {}", p.tenant);
            for (a, b) in p.outcomes.iter().zip(&f.outcomes) {
                assert_eq!(a.seq, b.seq);
                assert_eq!(a.translation_cycles, b.translation_cycles);
            }
        }
        // Warm family run: zero computes, same stats again.
        let warm = service.run(&stream);
        assert_eq!(warm.stats.computes, 0);
        for (p, w) in point.tenants.iter().zip(&warm.tenants) {
            assert_eq!(p.stats, w.stats);
        }
    }

    #[test]
    fn a_restored_service_serves_warm_and_bit_identical() {
        let (cfg, stream) = small_stream(60);
        let origin = TranslationService::new(cfg.clone());
        let cold = origin.run(&stream);
        let snapshot = origin.save_snapshot().expect("snapshot encodes");
        drop(origin); // the "crash"

        let revived = TranslationService::new(cfg);
        let report = revived.restore_snapshot(&snapshot);
        assert!(report.restored() > 0);
        assert_eq!(report.salvaged, 0);
        assert_eq!(report.rejected, 0);
        let warm = revived.run(&stream);
        assert_eq!(warm.stats.computes, 0, "restored memo must absorb all work");
        assert_eq!(warm.stats.duplicate_translations, 0);
        for (c, w) in cold.tenants.iter().zip(&warm.tenants) {
            assert_eq!(c.stats, w.stats, "tenant {}", c.tenant);
            for (a, b) in c.outcomes.iter().zip(&w.outcomes) {
                assert_eq!(a.seq, b.seq);
                assert_eq!(a.translation_cycles, b.translation_cycles);
            }
        }
        // The restored memo re-encodes to the very bytes it came from.
        assert_eq!(revived.save_snapshot().expect("snapshot encodes"), snapshot);
    }

    #[test]
    fn family_mode_snapshots_restore_the_symbolic_entries() {
        // Regression: family entries are memo-keyed under the translator's
        // *family fingerprint* (config axes folded in), not the family's
        // own fingerprint — a snapshot keyed on the wrong one restores
        // nothing.
        let (mut cfg, stream) = small_stream(48);
        cfg.family = Some(Arc::new(AcceleratorFamily::point(&cfg.config)));
        let origin = TranslationService::new(cfg.clone());
        let cold = origin.run(&stream);
        let snapshot = origin.save_snapshot().expect("snapshot encodes");
        let revived = TranslationService::new(cfg);
        let report = revived.restore_snapshot(&snapshot);
        assert!(report.families > 0, "symbolic entries must land");
        assert_eq!(report.salvaged + report.rejected, 0);
        let warm = revived.run(&stream);
        assert_eq!(warm.stats.computes, 0);
        assert!(warm.stats.concretizations > 0, "family mode still serves");
        for (c, w) in cold.tenants.iter().zip(&warm.tenants) {
            assert_eq!(c.stats, w.stats, "tenant {}", c.tenant);
        }
    }

    #[test]
    fn garbage_snapshots_leave_a_service_cold_but_working() {
        let (cfg, stream) = small_stream(30);
        let service = TranslationService::new(cfg);
        let report = service.restore_snapshot(b"not a snapshot at all");
        assert!(report.is_cold());
        let run = service.run(&stream);
        assert_eq!(run.stats.completed, 30);
        assert!(run.stats.computes > 0);
    }

    #[test]
    fn windowed_runs_checkpoint_on_cadence_plus_shutdown() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("veal-serve-ckpt-{}.vsnp", std::process::id()));
        let (cfg, stream) = small_stream(60);
        let policy = CheckpointPolicy {
            path: path.clone(),
            every_windows: 2,
            max_retries: 0,
            backoff: Duration::ZERO,
        };
        let service = TranslationService::new(cfg.clone()).with_checkpoints(policy);
        // 60 requests in windows of 10 = 6 windows: periodic checkpoints
        // after windows 2, 4, 6, plus the shutdown snapshot.
        let report = service.run_windowed(&stream, 10);
        assert_eq!(report.stats.checkpoints, 4);
        assert_eq!(report.stats.checkpoint_retries, 0);

        // The shutdown snapshot on disk revives a fresh service warm.
        let bytes = std::fs::read(&path).expect("shutdown checkpoint exists");
        std::fs::remove_file(&path).ok();
        let revived = TranslationService::new(cfg);
        assert!(revived.restore_snapshot(&bytes).restored() > 0);
        assert_eq!(revived.run(&stream).stats.computes, 0);
    }

    #[test]
    fn checkpoint_write_failure_is_bounded_and_absorbed() {
        let (cfg, stream) = small_stream(20);
        let policy = CheckpointPolicy {
            path: PathBuf::from("/nonexistent-veal-dir/ckpt.vsnp"),
            every_windows: 0, // shutdown snapshot only
            max_retries: 2,
            backoff: Duration::ZERO,
        };
        let service = TranslationService::new(cfg).with_checkpoints(policy);
        let report = service.run_windowed(&stream, 10);
        assert_eq!(report.stats.completed, 20, "serving must not be harmed");
        assert_eq!(report.stats.checkpoints, 0);
        assert_eq!(report.stats.checkpoint_retries, 2);
    }

    #[test]
    fn retry_backoff_clamps_the_exponent_for_any_retry_budget() {
        let base = Duration::from_millis(10);
        assert_eq!(retry_backoff(base, 0), base);
        assert_eq!(retry_backoff(base, 1), base * 2);
        assert_eq!(retry_backoff(base, 3), base * 8);
        // Past the clamp the backoff plateaus instead of overflowing the
        // shift (`1u32 << 32` was a debug panic / release wrap-to-tiny).
        let plateau = retry_backoff(base, 20);
        assert_eq!(plateau, base * (1 << 20));
        for retry in [21, 31, 32, 33, 63, 64, 1_000, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(retry_backoff(base, retry), plateau, "retry {retry}");
        }
        // Saturation, not overflow, when base × 2^20 exceeds Duration.
        assert_eq!(
            retry_backoff(Duration::from_secs(u64::MAX / 2), u64::MAX),
            Duration::MAX
        );
    }

    #[test]
    fn a_large_retry_budget_survives_past_the_shift_width() {
        // Regression for the unclamped `1 << exp` shift: a retry budget
        // past 32 walks the real retry loop through exponents that used to
        // overflow. Zero base backoff keeps the walk instant.
        let (cfg, stream) = small_stream(10);
        let policy = CheckpointPolicy {
            path: PathBuf::from("/nonexistent-veal-dir/ckpt.vsnp"),
            every_windows: 0, // shutdown snapshot only
            max_retries: 40,
            backoff: Duration::ZERO,
        };
        let service = TranslationService::new(cfg).with_checkpoints(policy);
        let report = service.run_windowed(&stream, 10);
        assert_eq!(report.stats.completed, 10, "serving must not be harmed");
        assert_eq!(report.stats.checkpoints, 0);
        assert_eq!(report.stats.checkpoint_retries, 40);
    }

    #[test]
    fn a_shrunk_queue_capacity_sheds_the_backlog_down_to_bound() {
        // Regression for the `==` admission check: with the queue already
        // over a *shrunk* bound, equality never fires and the queue stays
        // over capacity forever. `>=` sheds every excess entry.
        let (cfg, stream) = small_stream(30);
        let service = TranslationService::new(cfg);
        let mut pool = service.session_pool(1);
        pool.set_queue_capacity(8);
        let mut shed = Vec::new();
        for (i, r) in stream.iter().take(6).enumerate() {
            shed.extend(pool.admit(0, i, r.key, Arc::clone(&r.body), Arc::clone(&r.hints)));
        }
        assert!(shed.is_empty(), "six queued under a bound of eight");
        // Capacity shrinks mid-run; the next admission must shed the
        // entire overflow (tokens 0..=4), keep the newest survivor, and
        // leave the queue exactly at the new bound.
        pool.set_queue_capacity(2);
        let r = &stream[6];
        let shed_now = pool.admit(0, 6, r.key, Arc::clone(&r.body), Arc::clone(&r.hints));
        assert_eq!(shed_now, vec![0, 1, 2, 3, 4], "oldest first, all overflow");
        pool.drain();
        let outcomes = pool.take_outcomes(0);
        assert_eq!(
            outcomes.iter().map(|o| o.seq).collect::<Vec<_>>(),
            vec![5, 6],
            "exactly the bounded queue survived, in admission order"
        );
        assert_eq!(pool.stats().offered, 7);
        assert_eq!(pool.stats().shed, 5);
    }

    #[test]
    fn a_warm_memo_computes_nothing_new() {
        let (cfg, stream) = small_stream(60);
        let service = TranslationService::new(cfg);
        let cold = service.run(&stream);
        let warm = service.run(&stream);
        assert!(cold.stats.computes > 0);
        assert_eq!(warm.stats.computes, 0, "second run must be all memo hits");
        assert_eq!(warm.stats.duplicate_translations, 0);
        // The memo cannot change what a tenant observes: the warm run's
        // per-tenant stats are bit-identical to the cold run's.
        for (c, w) in cold.tenants.iter().zip(&warm.tenants) {
            assert_eq!(c.stats, w.stats);
            assert_eq!(c.outcomes.len(), w.outcomes.len());
        }
    }
}
