//! Die-area estimation, calibrated to the paper's §3.2 numbers.
//!
//! The paper reports (90 nm standard cells): the full design point consumes
//! ~3.8 mm², of which the two double-precision FP units take 2.38 mm²; an
//! ARM 11 is 4.34 mm²; a Cortex A8 is ~10.2 mm²; a hypothetical 4-issue A8
//! with larger L2 is ~14.0 mm². Only relative areas matter for the paper's
//! argument, so the per-component constants below are calibrated to land on
//! those published sums.

use crate::config::AcceleratorConfig;
use std::fmt;

/// Die area of the ARM 11-class single-issue baseline CPU (mm², 90 nm).
pub const ARM11_AREA_MM2: f64 = 4.34;
/// Die area of the Cortex A8-class dual-issue CPU (mm², 90 nm).
pub const CORTEX_A8_AREA_MM2: f64 = 10.2;
/// Die area of the hypothetical quad-issue CPU with larger L2 (mm², 90 nm).
pub const QUAD_ISSUE_AREA_MM2: f64 = 14.0;

/// Per-component area constants (mm² in a 90 nm process).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// One double-precision FP unit (2 × 1.19 = the paper's 2.38 mm²).
    pub fp_unit: f64,
    /// One integer unit (ALU + shifter + multiplier).
    pub int_unit: f64,
    /// One CCA (4-row, 4-in/2-out combinational fabric).
    pub cca: f64,
    /// One register (either file).
    pub register: f64,
    /// One address generator.
    pub addr_gen: f64,
    /// Per-stream state (base, stride, FIFO slice).
    pub stream: f64,
    /// Control store, per (II slot × function unit) entry.
    pub control_entry: f64,
    /// Fixed bus-interface / glue overhead.
    pub glue: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            fp_unit: 1.19,
            int_unit: 0.14,
            cca: 0.30,
            register: 0.004,
            addr_gen: 0.045,
            stream: 0.012,
            control_entry: 0.002,
            glue: 0.10,
        }
    }
}

impl AreaModel {
    /// Estimates the area of `config`.
    #[must_use]
    pub fn estimate(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        let fus = config.int_units + config.fp_units + config.cca_units;
        AreaBreakdown {
            fp_units: self.fp_unit * config.fp_units as f64,
            int_units: self.int_unit * config.int_units as f64,
            ccas: self.cca * config.cca_units as f64,
            registers: self.register * (config.int_regs + config.fp_regs) as f64,
            addr_gens: self.addr_gen * (config.load_addr_gens + config.store_addr_gens) as f64,
            streams: self.stream * (config.load_streams + config.store_streams) as f64,
            control: self.control_entry * config.max_ii as f64 * fus as f64,
            glue: self.glue,
        }
    }
}

/// Component-level area estimate for one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// FP units (mm²).
    pub fp_units: f64,
    /// Integer units (mm²).
    pub int_units: f64,
    /// CCAs (mm²).
    pub ccas: f64,
    /// Register files (mm²).
    pub registers: f64,
    /// Address generators (mm²).
    pub addr_gens: f64,
    /// Stream state and FIFOs (mm²).
    pub streams: f64,
    /// Control store (mm²).
    pub control: f64,
    /// Fixed glue (mm²).
    pub glue: f64,
}

impl AreaBreakdown {
    /// Total area (mm²).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fp_units
            + self.int_units
            + self.ccas
            + self.registers
            + self.addr_gens
            + self.streams
            + self.control
            + self.glue
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  FP units        {:6.2} mm2", self.fp_units)?;
        writeln!(f, "  integer units   {:6.2} mm2", self.int_units)?;
        writeln!(f, "  CCA             {:6.2} mm2", self.ccas)?;
        writeln!(f, "  register files  {:6.2} mm2", self.registers)?;
        writeln!(f, "  address gens    {:6.2} mm2", self.addr_gens)?;
        writeln!(f, "  stream state    {:6.2} mm2", self.streams)?;
        writeln!(f, "  control store   {:6.2} mm2", self.control)?;
        writeln!(f, "  glue            {:6.2} mm2", self.glue)?;
        write!(f, "  total           {:6.2} mm2", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;

    #[test]
    fn paper_design_lands_near_published_total() {
        let area = AcceleratorConfig::paper_design().area();
        // Paper: ~3.8 mm² total, 2.38 mm² of it in the two FPUs.
        assert!((area.total() - 3.8).abs() < 0.25, "total {}", area.total());
        assert!((area.fp_units - 2.38).abs() < 1e-9);
    }

    #[test]
    fn fp_units_dominate_design_point() {
        let area = AcceleratorConfig::paper_design().area();
        assert!(area.fp_units > area.total() / 2.0);
    }

    #[test]
    fn la_plus_arm11_cheaper_than_a8() {
        let la = AcceleratorConfig::paper_design().area().total();
        assert!(ARM11_AREA_MM2 + la < CORTEX_A8_AREA_MM2);
    }

    #[test]
    fn area_monotone_in_fp_units() {
        let small = AcceleratorConfig::builder().fp_units(1).build().area();
        let big = AcceleratorConfig::builder().fp_units(4).build().area();
        assert!(big.total() > small.total());
    }

    #[test]
    fn display_has_total_line() {
        let s = AcceleratorConfig::paper_design().area().to_string();
        assert!(s.contains("total"));
        assert!(s.contains("FP units"));
    }
}
