//! Accelerator configurations and capability checks.

use crate::area::{AreaBreakdown, AreaModel};
use crate::latency::LatencyModel;
use crate::resources::ResourceKind;
use std::fmt;
use veal_ir::streams::StreamSummary;

/// A concrete loop-accelerator configuration (paper Figure 1 template).
///
/// The paper's proposed design (§3.2) is 1 CCA, 2 integer units, 2
/// double-precision FP units, 16 integer and 16 FP registers, 16 load
/// streams time-multiplexed over 4 address generators, 8 store streams over
/// 2 address generators, and a maximum II of 16.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of integer units (also execute shifts and multiplies).
    pub int_units: usize,
    /// Number of double-precision floating-point units.
    pub fp_units: usize,
    /// Number of CCAs.
    pub cca_units: usize,
    /// Integer registers for live-ins/live-outs/constants/temporaries.
    pub int_regs: usize,
    /// Floating-point registers.
    pub fp_regs: usize,
    /// Maximum number of load streams.
    pub load_streams: usize,
    /// Maximum number of store streams.
    pub store_streams: usize,
    /// Address generators servicing load streams (time-multiplexed).
    pub load_addr_gens: usize,
    /// Address generators servicing store streams (time-multiplexed).
    pub store_addr_gens: usize,
    /// Maximum supported initiation interval (control-store depth).
    pub max_ii: u32,
    /// Operation latencies inside the accelerator.
    pub latencies: LatencyModel,
}

impl AcceleratorConfig {
    /// The paper's §3.2 design point.
    ///
    /// # Example
    ///
    /// ```
    /// use veal_accel::AcceleratorConfig;
    /// let la = AcceleratorConfig::paper_design();
    /// assert_eq!((la.load_streams, la.store_streams), (16, 8));
    /// ```
    #[must_use]
    pub fn paper_design() -> Self {
        AcceleratorConfig {
            int_units: 2,
            fp_units: 2,
            cca_units: 1,
            int_regs: 16,
            fp_regs: 16,
            load_streams: 16,
            store_streams: 8,
            load_addr_gens: 4,
            store_addr_gens: 2,
            max_ii: 16,
            latencies: LatencyModel::default(),
        }
    }

    /// The hypothetical infinite-resource accelerator used as the
    /// design-space-exploration baseline (paper §3.1): "loops are modulo
    /// scheduled onto a machine with unlimited registers, FUs, memory
    /// ports, etc."
    #[must_use]
    pub fn infinite() -> Self {
        const MANY: usize = 1 << 16;
        AcceleratorConfig {
            int_units: MANY,
            fp_units: MANY,
            cca_units: MANY,
            int_regs: MANY,
            fp_regs: MANY,
            load_streams: MANY,
            store_streams: MANY,
            load_addr_gens: MANY,
            store_addr_gens: MANY,
            max_ii: 4096,
            latencies: LatencyModel::default(),
        }
    }

    /// Starts building a configuration from the paper design point.
    #[must_use]
    pub fn builder() -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder {
            config: Self::paper_design(),
        }
    }

    /// Number of units backing a scheduling resource.
    #[must_use]
    pub fn units(&self, kind: ResourceKind) -> usize {
        match kind {
            ResourceKind::Int => self.int_units,
            ResourceKind::Fp => self.fp_units,
            ResourceKind::Cca => self.cca_units,
            ResourceKind::LoadPort => self.load_addr_gens,
            ResourceKind::StorePort => self.store_addr_gens,
        }
    }

    /// Whether the accelerator has a CCA (enables CCA subgraph mapping).
    #[must_use]
    pub fn has_cca(&self) -> bool {
        self.cca_units > 0
    }

    /// Checks whether a loop's stream requirements fit this accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`CapabilityError::TooManyLoadStreams`] /
    /// [`CapabilityError::TooManyStoreStreams`] when the loop needs more
    /// streams than the hardware stores patterns for.
    pub fn check_streams(&self, summary: StreamSummary) -> Result<(), CapabilityError> {
        if summary.loads > self.load_streams {
            return Err(CapabilityError::TooManyLoadStreams {
                needed: summary.loads,
                available: self.load_streams,
            });
        }
        if summary.stores > self.store_streams {
            return Err(CapabilityError::TooManyStoreStreams {
                needed: summary.stores,
                available: self.store_streams,
            });
        }
        Ok(())
    }

    /// The smallest II at which the time-multiplexed address generators can
    /// service the given stream counts (each generator produces one address
    /// per cycle, so a generator can serve at most II streams per kernel
    /// iteration — paper §3.1).
    #[must_use]
    pub fn min_ii_for_streams(&self, summary: StreamSummary) -> u32 {
        let load_ii = div_ceil(summary.loads, self.load_addr_gens.max(1));
        let store_ii = div_ceil(summary.stores, self.store_addr_gens.max(1));
        load_ii.max(store_ii).max(1) as u32
    }

    /// Estimated die area of this configuration.
    #[must_use]
    pub fn area(&self) -> AreaBreakdown {
        AreaModel::default().estimate(self)
    }

    /// Stable fingerprint over every field that affects translation and
    /// scheduling. Two configurations with equal fingerprints schedule any
    /// loop identically, so the fingerprint (together with the loop's
    /// content hash and the CCA/policy fingerprints) keys memoized
    /// translation results in the design-space-exploration sweep engine.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        for n in [
            self.int_units,
            self.fp_units,
            self.cca_units,
            self.int_regs,
            self.fp_regs,
            self.load_streams,
            self.store_streams,
            self.load_addr_gens,
            self.store_addr_gens,
        ] {
            h.write_u64(n as u64);
        }
        h.write_u64(u64::from(self.max_ii));
        h.write_u64(self.latencies.fingerprint());
        h.finish()
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper_design()
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LA[{} CCA, {} int, {} fp, {}i/{}f regs, {} ld / {} st streams ({}+{} agens), max II {}]",
            self.cca_units,
            self.int_units,
            self.fp_units,
            self.int_regs,
            self.fp_regs,
            self.load_streams,
            self.store_streams,
            self.load_addr_gens,
            self.store_addr_gens,
            self.max_ii
        )
    }
}

/// Builder for [`AcceleratorConfig`], starting from the paper design point.
///
/// # Example
///
/// ```
/// use veal_accel::AcceleratorConfig;
/// let la = AcceleratorConfig::builder().int_units(4).max_ii(32).build();
/// assert_eq!(la.int_units, 4);
/// assert_eq!(la.fp_units, 2); // unchanged from the design point
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorConfigBuilder {
    config: AcceleratorConfig,
}

impl AcceleratorConfigBuilder {
    /// Sets the number of integer units.
    #[must_use]
    pub fn int_units(mut self, n: usize) -> Self {
        self.config.int_units = n;
        self
    }

    /// Sets the number of FP units.
    #[must_use]
    pub fn fp_units(mut self, n: usize) -> Self {
        self.config.fp_units = n;
        self
    }

    /// Sets the number of CCAs.
    #[must_use]
    pub fn cca_units(mut self, n: usize) -> Self {
        self.config.cca_units = n;
        self
    }

    /// Sets the integer register count.
    #[must_use]
    pub fn int_regs(mut self, n: usize) -> Self {
        self.config.int_regs = n;
        self
    }

    /// Sets the FP register count.
    #[must_use]
    pub fn fp_regs(mut self, n: usize) -> Self {
        self.config.fp_regs = n;
        self
    }

    /// Sets the load-stream budget.
    #[must_use]
    pub fn load_streams(mut self, n: usize) -> Self {
        self.config.load_streams = n;
        self
    }

    /// Sets the store-stream budget.
    #[must_use]
    pub fn store_streams(mut self, n: usize) -> Self {
        self.config.store_streams = n;
        self
    }

    /// Sets the load address-generator count.
    #[must_use]
    pub fn load_addr_gens(mut self, n: usize) -> Self {
        self.config.load_addr_gens = n;
        self
    }

    /// Sets the store address-generator count.
    #[must_use]
    pub fn store_addr_gens(mut self, n: usize) -> Self {
        self.config.store_addr_gens = n;
        self
    }

    /// Sets the maximum II.
    #[must_use]
    pub fn max_ii(mut self, ii: u32) -> Self {
        self.config.max_ii = ii;
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn latencies(mut self, model: LatencyModel) -> Self {
        self.config.latencies = model;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero max II or zero
    /// total function units).
    #[must_use]
    pub fn build(self) -> AcceleratorConfig {
        let c = self.config;
        assert!(c.max_ii > 0, "max II must be positive");
        assert!(
            c.int_units + c.fp_units + c.cca_units > 0,
            "accelerator needs at least one function unit"
        );
        c
    }
}

/// Why a loop cannot use a particular accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapabilityError {
    /// The loop references more load streams than the hardware supports.
    TooManyLoadStreams {
        /// Streams the loop needs.
        needed: usize,
        /// Streams the hardware provides.
        available: usize,
    },
    /// The loop references more store streams than the hardware supports.
    TooManyStoreStreams {
        /// Streams the loop needs.
        needed: usize,
        /// Streams the hardware provides.
        available: usize,
    },
}

impl fmt::Display for CapabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapabilityError::TooManyLoadStreams { needed, available } => {
                write!(f, "loop needs {needed} load streams, LA has {available}")
            }
            CapabilityError::TooManyStoreStreams { needed, available } => {
                write!(f, "loop needs {needed} store streams, LA has {available}")
            }
        }
    }
}

impl std::error::Error for CapabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_matches_section_3_2() {
        let la = AcceleratorConfig::paper_design();
        assert_eq!(la.cca_units, 1);
        assert_eq!(la.int_units, 2);
        assert_eq!(la.fp_units, 2);
        assert_eq!(la.load_streams, 16);
        assert_eq!(la.load_addr_gens, 4);
        assert_eq!(la.store_streams, 8);
        assert_eq!(la.store_addr_gens, 2);
        assert_eq!(la.max_ii, 16);
    }

    #[test]
    fn infinite_is_effectively_unbounded() {
        let inf = AcceleratorConfig::infinite();
        assert!(inf.int_units >= 1 << 16);
        assert!(inf.max_ii >= 1024);
    }

    #[test]
    fn builder_overrides_single_field() {
        let la = AcceleratorConfig::builder().fp_units(0).build();
        assert_eq!(la.fp_units, 0);
        assert_eq!(la.int_units, 2);
    }

    #[test]
    #[should_panic(expected = "at least one function unit")]
    fn builder_rejects_no_fus() {
        let _ = AcceleratorConfig::builder()
            .int_units(0)
            .fp_units(0)
            .cca_units(0)
            .build();
    }

    #[test]
    fn stream_check_rejects_overflow() {
        let la = AcceleratorConfig::paper_design();
        let ok = StreamSummary {
            loads: 16,
            stores: 8,
        };
        assert!(la.check_streams(ok).is_ok());
        let too_many = StreamSummary {
            loads: 17,
            stores: 0,
        };
        assert!(matches!(
            la.check_streams(too_many),
            Err(CapabilityError::TooManyLoadStreams { .. })
        ));
    }

    #[test]
    fn min_ii_for_streams_time_multiplexing() {
        let la = AcceleratorConfig::paper_design();
        // 16 load streams over 4 generators: each serves 4 streams, so the
        // kernel must be at least 4 cycles long.
        assert_eq!(
            la.min_ii_for_streams(StreamSummary {
                loads: 16,
                stores: 0
            }),
            4
        );
        assert_eq!(
            la.min_ii_for_streams(StreamSummary {
                loads: 1,
                stores: 1
            }),
            1
        );
        assert_eq!(
            la.min_ii_for_streams(StreamSummary {
                loads: 0,
                stores: 5
            }),
            3
        );
    }

    #[test]
    fn units_mapping() {
        let la = AcceleratorConfig::paper_design();
        assert_eq!(la.units(ResourceKind::Int), 2);
        assert_eq!(la.units(ResourceKind::Cca), 1);
        assert_eq!(la.units(ResourceKind::LoadPort), 4);
        assert_eq!(la.units(ResourceKind::StorePort), 2);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = AcceleratorConfig::paper_design();
        let b = AcceleratorConfig::paper_design();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            AcceleratorConfig::builder()
                .int_units(4)
                .build()
                .fingerprint()
        );
        assert_ne!(a.fingerprint(), AcceleratorConfig::infinite().fingerprint());
        let mut lat = LatencyModel::new();
        lat.set(veal_ir::Opcode::Mul, 9);
        assert_ne!(
            a.fingerprint(),
            AcceleratorConfig::builder()
                .latencies(lat)
                .build()
                .fingerprint()
        );
    }

    #[test]
    fn display_mentions_key_resources() {
        let s = AcceleratorConfig::paper_design().to_string();
        assert!(s.contains("max II 16"));
        assert!(s.contains("16 ld"));
    }
}
