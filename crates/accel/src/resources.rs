//! Scheduling resource classes.

use std::fmt;
use veal_ir::{FuClass, Opcode};

/// The resource classes a modulo scheduler allocates slots on.
///
/// Memory accesses split into load and store ports because the paper's
/// design time-multiplexes *separate* address-generator pools for loads and
/// stores (16 load streams over 4 generators, 8 store streams over 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// Integer units.
    Int,
    /// Floating-point units.
    Fp,
    /// CCAs.
    Cca,
    /// Load address generators / FIFO fill ports.
    LoadPort,
    /// Store address generators / FIFO drain ports.
    StorePort,
}

/// All resource kinds, in display order.
pub const ALL_RESOURCES: &[ResourceKind] = &[
    ResourceKind::Int,
    ResourceKind::Fp,
    ResourceKind::Cca,
    ResourceKind::LoadPort,
    ResourceKind::StorePort,
];

impl ResourceKind {
    /// The resource an opcode occupies in the accelerator, or `None` for
    /// ops handled by dedicated control hardware (branches) and pseudo
    /// nodes.
    #[must_use]
    pub fn for_opcode(op: Opcode) -> Option<ResourceKind> {
        match op.fu_class() {
            FuClass::Int => Some(ResourceKind::Int),
            FuClass::Fp => Some(ResourceKind::Fp),
            FuClass::Cca => Some(ResourceKind::Cca),
            FuClass::Mem => Some(if op == Opcode::Load {
                ResourceKind::LoadPort
            } else {
                ResourceKind::StorePort
            }),
            FuClass::Control => None,
        }
    }

    /// Dense index for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        ALL_RESOURCES
            .iter()
            .position(|&k| k == self)
            .expect("resource in ALL_RESOURCES")
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Int => "Int",
            ResourceKind::Fp => "Fp",
            ResourceKind::Cca => "CCA",
            ResourceKind::LoadPort => "LdPort",
            ResourceKind::StorePort => "StPort",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_resource_mapping() {
        assert_eq!(
            ResourceKind::for_opcode(Opcode::Add),
            Some(ResourceKind::Int)
        );
        assert_eq!(
            ResourceKind::for_opcode(Opcode::FMul),
            Some(ResourceKind::Fp)
        );
        assert_eq!(
            ResourceKind::for_opcode(Opcode::Cca),
            Some(ResourceKind::Cca)
        );
        assert_eq!(
            ResourceKind::for_opcode(Opcode::Load),
            Some(ResourceKind::LoadPort)
        );
        assert_eq!(
            ResourceKind::for_opcode(Opcode::Store),
            Some(ResourceKind::StorePort)
        );
        assert_eq!(ResourceKind::for_opcode(Opcode::BrCond), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &k in ALL_RESOURCES {
            assert!(k.index() < ALL_RESOURCES.len());
            assert!(seen.insert(k.index()));
        }
    }
}
