//! Loop-accelerator machine descriptions for VEAL.
//!
//! This crate models the architecture template of paper Figure 1: function
//! units (integer, double-precision floating point, and the CCA), a
//! register file for live-ins/live-outs/constants/temporaries, load and
//! store memory streams time-multiplexed over address generators, and a
//! control store whose depth bounds the maximum initiation interval.
//!
//! The paper's §3.2 design point is available as
//! [`AcceleratorConfig::paper_design`], and the hypothetical
//! infinite-resource machine used as the design-space-exploration baseline
//! as [`AcceleratorConfig::infinite`]. The [`area`] module reproduces the
//! die-area budget of §3.2.
//!
//! # Example
//!
//! ```
//! use veal_accel::AcceleratorConfig;
//!
//! let la = AcceleratorConfig::paper_design();
//! assert_eq!(la.int_units, 2);
//! assert_eq!(la.max_ii, 16);
//! assert!(la.area().total() < 4.0); // ~3.8 mm² in 90 nm
//! ```

pub mod area;
pub mod config;
pub mod family;
pub mod latency;
pub mod presets;
pub mod resources;

pub use area::{AreaBreakdown, AreaModel, ARM11_AREA_MM2, CORTEX_A8_AREA_MM2, QUAD_ISSUE_AREA_MM2};
pub use config::{AcceleratorConfig, AcceleratorConfigBuilder, CapabilityError};
pub use family::{AcceleratorFamily, AxisRange};
pub use latency::LatencyModel;
pub use presets::{mathew_davis_like, rsvp_like, scaled_design};
pub use resources::ResourceKind;
