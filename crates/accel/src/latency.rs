//! Operation latencies inside the accelerator.

use veal_ir::Opcode;

/// A latency model: per-opcode overrides on top of the IR defaults
/// ([`Opcode::default_latency`], which already match the paper's Figure 5
/// assumptions).
///
/// # Example
///
/// ```
/// use veal_accel::LatencyModel;
/// use veal_ir::Opcode;
///
/// let mut m = LatencyModel::default();
/// assert_eq!(m.latency(Opcode::Mul), 3);
/// m.set(Opcode::Mul, 2); // a faster multiplier in a future LA
/// assert_eq!(m.latency(Opcode::Mul), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyModel {
    overrides: Vec<(Opcode, u32)>,
}

impl LatencyModel {
    /// Creates a model with no overrides (paper defaults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Latency of `op` in cycles.
    #[must_use]
    pub fn latency(&self, op: Opcode) -> u32 {
        self.overrides
            .iter()
            .rev()
            .find(|(o, _)| *o == op)
            .map_or_else(|| op.default_latency(), |&(_, l)| l)
    }

    /// Overrides the latency of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set(&mut self, op: Opcode, cycles: u32) {
        assert!(cycles > 0, "latency must be at least one cycle");
        self.overrides.push((op, cycles));
    }

    /// Whether any latency differs from the defaults — statically computed
    /// recurrence criticalities are only architecture-independent while
    /// latencies stay consistent (paper footnote 3).
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.overrides
            .iter()
            .all(|&(op, l)| l == op.default_latency())
    }

    /// Stable fingerprint of the *effective* latency table.
    ///
    /// Hashes `latency(op)` over every opcode, so two models that resolve
    /// to the same cycle counts fingerprint identically regardless of how
    /// their override lists were built (redundant or shadowed `set` calls
    /// don't perturb it). Used to key memoized translation results.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Memoized fast path for the (overwhelmingly common) default model:
        // the fingerprint keys the translation caches, so it runs on every
        // scheduler invocation.
        if self.overrides.is_empty() {
            static DEFAULT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
            return *DEFAULT.get_or_init(|| LatencyModel::new().fingerprint_uncached());
        }
        self.fingerprint_uncached()
    }

    fn fingerprint_uncached(&self) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        for &op in veal_ir::opcode::ALL_OPCODES {
            h.write_u64(u64::from(self.latency(op)));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pass_through() {
        let m = LatencyModel::new();
        assert_eq!(m.latency(Opcode::Add), 1);
        assert_eq!(m.latency(Opcode::FDiv), Opcode::FDiv.default_latency());
        assert!(m.is_default());
    }

    #[test]
    fn later_overrides_win() {
        let mut m = LatencyModel::new();
        m.set(Opcode::FAdd, 5);
        m.set(Opcode::FAdd, 6);
        assert_eq!(m.latency(Opcode::FAdd), 6);
        assert!(!m.is_default());
    }

    #[test]
    fn redundant_override_still_default() {
        let mut m = LatencyModel::new();
        m.set(Opcode::Add, 1);
        assert!(m.is_default());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let mut m = LatencyModel::new();
        m.set(Opcode::Add, 0);
    }

    #[test]
    fn fingerprint_tracks_effective_latencies() {
        let base = LatencyModel::new();
        let mut redundant = LatencyModel::new();
        redundant.set(Opcode::Add, Opcode::Add.default_latency());
        // Same effective table → same fingerprint, however it was built.
        assert_eq!(base.fingerprint(), redundant.fingerprint());

        let mut changed = LatencyModel::new();
        changed.set(Opcode::Mul, 7);
        assert_ne!(base.fingerprint(), changed.fingerprint());

        // Shadowed overrides resolve before hashing.
        let mut shadowed = LatencyModel::new();
        shadowed.set(Opcode::Mul, 2);
        shadowed.set(Opcode::Mul, 7);
        assert_eq!(changed.fingerprint(), shadowed.fingerprint());
    }
}
