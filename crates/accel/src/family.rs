//! Accelerator *families*: axis-aligned boxes of configurations sharing
//! one latency model, over which a symbolic translation is valid.
//!
//! A symbolic translation (see `veal-sched`'s `symbolic` module and the
//! VM's family-keyed memo) hoists every configuration-independent phase of
//! the pipeline — loop identification, stream separation, CCA mapping,
//! hint verification, RecMII, priority — out of the per-configuration
//! path. The prefix is valid for any configuration that (a) uses the same
//! [`LatencyModel`] (latencies feed RecMII, priority, and scheduling
//! windows) and (b) agrees on whether a CCA exists at all (`cca_units > 0`
//! decides whether CCA subgraphs collapse, which changes the scheduled
//! graph itself). A family captures exactly that validity domain: per-axis
//! inclusive ranges over the unit/register/stream/II counts, a fixed
//! latency model, and a CCA-presence bit implied by the `cca_units` range
//! never straddling zero.

use crate::config::AcceleratorConfig;
use crate::latency::LatencyModel;
use std::fmt;
use veal_ir::rng::Fnv64;

/// An inclusive `[lo, hi]` range over one configuration axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxisRange {
    /// Smallest admitted value.
    pub lo: usize,
    /// Largest admitted value.
    pub hi: usize,
}

impl AxisRange {
    /// The degenerate range holding exactly `v`.
    #[must_use]
    pub fn point(v: usize) -> Self {
        AxisRange { lo: v, hi: v }
    }

    /// Whether `v` falls inside the range.
    #[must_use]
    pub fn contains(&self, v: usize) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn widen(&mut self, v: usize) {
        self.lo = self.lo.min(v);
        self.hi = self.hi.max(v);
    }
}

impl fmt::Display for AxisRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}..={}", self.lo, self.hi)
        }
    }
}

/// A family of [`AcceleratorConfig`]s: per-axis ranges plus one fixed
/// [`LatencyModel`].
///
/// Families key the VM's symbolic-translation memo: one symbolic schedule
/// is stored per `(loop, translator-family, hints)` and concretized per
/// member configuration, so a 10-point DSE sweep or a fleet of LA SKUs
/// shares one entry where the point-keyed memo stored ten.
///
/// # Example
///
/// ```
/// use veal_accel::{AcceleratorConfig, AcceleratorFamily};
///
/// let points: Vec<_> = (1..=4)
///     .map(|n| AcceleratorConfig::builder().int_units(n).build())
///     .collect();
/// let fam = AcceleratorFamily::spanning(&points).expect("same latencies");
/// assert!(fam.contains(&points[0]));
/// assert!(fam.contains(&points[3]));
/// assert!(!fam.contains(&AcceleratorConfig::builder().int_units(8).build()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceleratorFamily {
    /// Integer-unit range.
    pub int_units: AxisRange,
    /// FP-unit range.
    pub fp_units: AxisRange,
    /// CCA-unit range; never straddles zero (CCA presence changes the
    /// translated graph, so it must be uniform across the family).
    pub cca_units: AxisRange,
    /// Integer-register range.
    pub int_regs: AxisRange,
    /// FP-register range.
    pub fp_regs: AxisRange,
    /// Load-stream range.
    pub load_streams: AxisRange,
    /// Store-stream range.
    pub store_streams: AxisRange,
    /// Load address-generator range.
    pub load_addr_gens: AxisRange,
    /// Store address-generator range.
    pub store_addr_gens: AxisRange,
    /// Maximum-II range.
    pub max_ii: AxisRange,
    /// The latency model every member shares.
    pub latencies: LatencyModel,
}

impl AcceleratorFamily {
    /// The degenerate family containing exactly `config`.
    #[must_use]
    pub fn point(config: &AcceleratorConfig) -> Self {
        AcceleratorFamily {
            int_units: AxisRange::point(config.int_units),
            fp_units: AxisRange::point(config.fp_units),
            cca_units: AxisRange::point(config.cca_units),
            int_regs: AxisRange::point(config.int_regs),
            fp_regs: AxisRange::point(config.fp_regs),
            load_streams: AxisRange::point(config.load_streams),
            store_streams: AxisRange::point(config.store_streams),
            load_addr_gens: AxisRange::point(config.load_addr_gens),
            store_addr_gens: AxisRange::point(config.store_addr_gens),
            max_ii: AxisRange::point(config.max_ii as usize),
            latencies: config.latencies.clone(),
        }
    }

    /// The smallest family containing every configuration in `configs`
    /// (their axis-aligned bounding box).
    ///
    /// Returns `None` when the set is empty, when the configurations
    /// disagree on the latency model, or when they disagree on CCA
    /// *presence* (`cca_units == 0` vs `> 0`) — those differences change
    /// the configuration-independent prefix, so no single symbolic
    /// translation can cover them.
    #[must_use]
    pub fn spanning(configs: &[AcceleratorConfig]) -> Option<Self> {
        let (first, rest) = configs.split_first()?;
        let mut fam = Self::point(first);
        for c in rest {
            if c.latencies != fam.latencies {
                return None;
            }
            if (c.cca_units == 0) != (fam.cca_units.hi == 0) {
                return None;
            }
            fam.int_units.widen(c.int_units);
            fam.fp_units.widen(c.fp_units);
            fam.cca_units.widen(c.cca_units);
            fam.int_regs.widen(c.int_regs);
            fam.fp_regs.widen(c.fp_regs);
            fam.load_streams.widen(c.load_streams);
            fam.store_streams.widen(c.store_streams);
            fam.load_addr_gens.widen(c.load_addr_gens);
            fam.store_addr_gens.widen(c.store_addr_gens);
            fam.max_ii.widen(c.max_ii as usize);
        }
        Some(fam)
    }

    /// Whether `config` is a member: every axis in range and the same
    /// latency model.
    #[must_use]
    pub fn contains(&self, config: &AcceleratorConfig) -> bool {
        self.int_units.contains(config.int_units)
            && self.fp_units.contains(config.fp_units)
            && self.cca_units.contains(config.cca_units)
            && self.int_regs.contains(config.int_regs)
            && self.fp_regs.contains(config.fp_regs)
            && self.load_streams.contains(config.load_streams)
            && self.store_streams.contains(config.store_streams)
            && self.load_addr_gens.contains(config.load_addr_gens)
            && self.store_addr_gens.contains(config.store_addr_gens)
            && self.max_ii.contains(config.max_ii as usize)
            && self.latencies == config.latencies
    }

    /// Whether every member has a CCA (the ranges guarantee this is
    /// uniform across the family).
    #[must_use]
    pub fn has_cca(&self) -> bool {
        self.cca_units.lo > 0
    }

    /// Stable fingerprint over every range and the latency model. Two
    /// families with equal fingerprints admit the same members and share
    /// every configuration-independent translation decision, so the
    /// fingerprint keys family-memoized symbolic translations (in place of
    /// [`AcceleratorConfig::fingerprint`] in the translator fingerprint).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        for r in [
            self.int_units,
            self.fp_units,
            self.cca_units,
            self.int_regs,
            self.fp_regs,
            self.load_streams,
            self.store_streams,
            self.load_addr_gens,
            self.store_addr_gens,
            self.max_ii,
        ] {
            h.write_u64(r.lo as u64);
            h.write_u64(r.hi as u64);
        }
        h.write_u64(self.latencies.fingerprint());
        h.finish()
    }
}

impl fmt::Display for AcceleratorFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LA-family[{} CCA, {} int, {} fp, {}i/{}f regs, {} ld / {} st streams ({}+{} agens), max II {}]",
            self.cca_units,
            self.int_units,
            self.fp_units,
            self.int_regs,
            self.fp_regs,
            self.load_streams,
            self.store_streams,
            self.load_addr_gens,
            self.store_addr_gens,
            self.max_ii
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_sweep() -> Vec<AcceleratorConfig> {
        (1..=4)
            .map(|n| AcceleratorConfig::builder().int_units(n).build())
            .collect()
    }

    #[test]
    fn point_family_contains_exactly_its_point() {
        let la = AcceleratorConfig::paper_design();
        let fam = AcceleratorFamily::point(&la);
        assert!(fam.contains(&la));
        assert!(!fam.contains(&AcceleratorConfig::builder().int_units(3).build()));
    }

    #[test]
    fn spanning_is_the_bounding_box() {
        let fam = AcceleratorFamily::spanning(&int_sweep()).unwrap();
        assert_eq!(fam.int_units, AxisRange { lo: 1, hi: 4 });
        for c in int_sweep() {
            assert!(fam.contains(&c));
        }
        // Interior points are members too (the box, not the point set).
        assert!(fam.contains(&AcceleratorConfig::builder().int_units(3).build()));
        assert!(!fam.contains(&AcceleratorConfig::builder().int_units(5).build()));
    }

    #[test]
    fn spanning_rejects_mixed_cca_presence() {
        let with = AcceleratorConfig::paper_design();
        let without = AcceleratorConfig::builder().cca_units(0).build();
        assert!(AcceleratorFamily::spanning(&[with.clone(), without]).is_none());
        assert!(AcceleratorFamily::spanning(&[with]).is_some());
        assert!(AcceleratorFamily::spanning(&[]).is_none());
    }

    #[test]
    fn spanning_rejects_mixed_latencies() {
        let a = AcceleratorConfig::paper_design();
        let mut lat = LatencyModel::new();
        lat.set(veal_ir::Opcode::Mul, 9);
        let b = AcceleratorConfig::builder().latencies(lat).build();
        assert!(AcceleratorFamily::spanning(&[a, b]).is_none());
    }

    #[test]
    fn contains_requires_matching_latencies() {
        let fam = AcceleratorFamily::spanning(&int_sweep()).unwrap();
        let mut lat = LatencyModel::new();
        lat.set(veal_ir::Opcode::Mul, 9);
        let odd = AcceleratorConfig::builder()
            .int_units(2)
            .latencies(lat)
            .build();
        assert!(!fam.contains(&odd));
    }

    #[test]
    fn fingerprint_distinguishes_families() {
        let a = AcceleratorFamily::spanning(&int_sweep()).unwrap();
        let b = AcceleratorFamily::spanning(&int_sweep()[..2]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let again = AcceleratorFamily::spanning(&int_sweep()).unwrap();
        assert_eq!(a.fingerprint(), again.fingerprint());
        // A family is never confused with its corner point's config.
        let point = AcceleratorFamily::point(&AcceleratorConfig::paper_design());
        assert_ne!(a.fingerprint(), point.fingerprint());
    }

    #[test]
    fn display_mentions_ranges() {
        let fam = AcceleratorFamily::spanning(&int_sweep()).unwrap();
        let s = fam.to_string();
        assert!(s.contains("1..=4 int"), "{s}");
    }
}
