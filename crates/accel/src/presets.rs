//! Named accelerator configurations beyond the paper's design point.
//!
//! §5 of the paper compares against two previously proposed generalized
//! loop accelerators; these presets model their headline resource budgets
//! on our template so the ablation bench can place the paper's design
//! point against them, plus a few scaled variants used by tests and the
//! design-explorer example.

use crate::config::AcceleratorConfig;

/// An RSVP-like configuration (Ciricescu et al. \[3\]): vector-style
/// datapath with few scalar units and a small stream budget — the paper
/// cites it as supporting 3 load / 1 store streams.
#[must_use]
pub fn rsvp_like() -> AcceleratorConfig {
    AcceleratorConfig::builder()
        .int_units(4)
        .fp_units(0)
        .cca_units(0)
        .int_regs(16)
        .fp_regs(0)
        .load_streams(3)
        .store_streams(1)
        .load_addr_gens(3)
        .store_addr_gens(1)
        .max_ii(16)
        .build()
}

/// A Mathew–Davis-like configuration \[20\]: similar template, 6 total
/// load/store streams, modest scalar resources, no CCA.
#[must_use]
pub fn mathew_davis_like() -> AcceleratorConfig {
    AcceleratorConfig::builder()
        .int_units(3)
        .fp_units(1)
        .cca_units(0)
        .int_regs(16)
        .fp_regs(8)
        .load_streams(4)
        .store_streams(2)
        .load_addr_gens(2)
        .store_addr_gens(1)
        .max_ii(16)
        .build()
}

/// The paper design point with every per-class resource multiplied by
/// `factor` (streams, generators, units, registers; max II unchanged).
/// Useful for over-provisioning studies.
///
/// # Panics
///
/// Panics if `factor` is zero.
#[must_use]
pub fn scaled_design(factor: usize) -> AcceleratorConfig {
    assert!(factor > 0, "scale factor must be positive");
    let base = AcceleratorConfig::paper_design();
    AcceleratorConfig::builder()
        .int_units(base.int_units * factor)
        .fp_units(base.fp_units * factor)
        .cca_units(base.cca_units * factor)
        .int_regs(base.int_regs * factor)
        .fp_regs(base.fp_regs * factor)
        .load_streams(base.load_streams * factor)
        .store_streams(base.store_streams * factor)
        .load_addr_gens(base.load_addr_gens * factor)
        .store_addr_gens(base.store_addr_gens * factor)
        .max_ii(base.max_ii)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_have_sensible_areas() {
        let rsvp = rsvp_like();
        let md = mathew_davis_like();
        let paper = AcceleratorConfig::paper_design();
        // Both related-work presets are cheaper than the paper design (no
        // dual FPUs / fewer streams).
        assert!(rsvp.area().total() < paper.area().total());
        assert!(md.area().total() < paper.area().total());
    }

    #[test]
    fn rsvp_stream_budget_matches_citation() {
        let rsvp = rsvp_like();
        assert_eq!((rsvp.load_streams, rsvp.store_streams), (3, 1));
    }

    #[test]
    fn scaled_design_scales_everything_but_ii() {
        let x2 = scaled_design(2);
        let base = AcceleratorConfig::paper_design();
        assert_eq!(x2.int_units, 2 * base.int_units);
        assert_eq!(x2.load_streams, 2 * base.load_streams);
        assert_eq!(x2.max_ii, base.max_ii);
        assert!(x2.area().total() > base.area().total());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = scaled_design(0);
    }
}
