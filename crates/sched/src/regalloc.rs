//! Register assignment (paper §4.1, "Register Assignment").
//!
//! "A postpass maps operands from the loop representation in baseline
//! assembly code to the register files/memory buffers in the LA. If there
//! are not enough registers to support the translated loop, translation
//! aborts, and the loop is executed on the baseline processor."
//!
//! Register need is the schedule's **MaxLive**: for every value the
//! lifetime runs from its definition (time + latency) to its last use
//! (consumer time, plus II per iteration of loop-carried distance); a
//! lifetime longer than II overlaps itself across concurrent iterations and
//! occupies multiple registers (modulo variable expansion). Values consumed
//! the cycle they appear come straight off the interconnect and need no
//! register, and stream data lives in FIFOs — both per paper §3.1.

use crate::scheduler::ModuloSchedule;
use std::collections::HashMap;
use std::fmt;
use veal_accel::AcceleratorConfig;
use veal_ir::dfg::NodeKind;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// Register pressure that exceeded the accelerator's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterPressure {
    /// Peak simultaneous integer values.
    pub int_live: usize,
    /// Peak simultaneous floating-point values.
    pub fp_live: usize,
    /// Integer registers available.
    pub int_regs: usize,
    /// FP registers available.
    pub fp_regs: usize,
}

impl RegisterPressure {
    /// Whether the pressure fits the file.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.int_live <= self.int_regs && self.fp_live <= self.fp_regs
    }
}

impl fmt::Display for RegisterPressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int {}/{} fp {}/{}",
            self.int_live, self.int_regs, self.fp_live, self.fp_regs
        )
    }
}

/// The result of register assignment.
#[derive(Debug, Clone)]
pub struct RegisterAssignment {
    /// Peak pressure (also the number of registers used per class).
    pub pressure: RegisterPressure,
    /// Registers holding live-in and constant values (count per class).
    pub pinned_int: usize,
    /// FP live-ins/constants.
    pub pinned_fp: usize,
    /// Per-value register indices (class-local).
    pub assignment: HashMap<OpId, u16>,
}

/// Whether the value produced by a node is floating point. Loads and
/// pseudo-nodes are typed by their consumers.
fn value_is_fp(dfg: &Dfg, v: OpId) -> bool {
    match &dfg.node(v).kind {
        NodeKind::Op(op) if op.is_fp() => true,
        NodeKind::Op(op) if op.fu_class() == veal_ir::FuClass::Fp => true,
        _ => dfg
            .succ_edges(v)
            .any(|e| dfg.node(e.dst).opcode().is_some_and(|o| o.is_fp())),
    }
}

/// Computes MaxLive and assigns class-local register indices.
///
/// # Errors
///
/// Returns the offending [`RegisterPressure`] when the loop needs more
/// registers than `config` provides.
pub fn assign_registers(
    dfg: &Dfg,
    schedule: &ModuloSchedule,
    config: &AcceleratorConfig,
    meter: &mut CostMeter,
) -> Result<RegisterAssignment, RegisterPressure> {
    let ii = i64::from(schedule.ii);
    let lat = &config.latencies;

    // Live-ins and constants are pinned in registers for the whole loop.
    // Constants with equal values share one register (the memory-mapped
    // file is initialized once per distinct value).
    let mut pinned_int = 0usize;
    let mut pinned_fp = 0usize;
    let mut seen_consts: std::collections::HashSet<(i64, bool)> = std::collections::HashSet::new();
    for v in dfg.live_in_ids().chain(dfg.const_ids()) {
        meter.charge(Phase::RegAssign, 1);
        // Only values actually consumed occupy a register.
        if dfg.succ_edges(v).next().is_none() {
            continue;
        }
        let fp = value_is_fp(dfg, v);
        if let veal_ir::dfg::NodeKind::Const(c) = dfg.node(v).kind {
            if !seen_consts.insert((c, fp)) {
                continue;
            }
        }
        if fp {
            pinned_fp += 1;
        } else {
            pinned_int += 1;
        }
    }

    // Per-cycle pressure from scheduled value lifetimes.
    let mut int_rows = vec![0usize; schedule.ii as usize];
    let mut fp_rows = vec![0usize; schedule.ii as usize];
    let mut intervals: Vec<(OpId, i64, i64, bool)> = Vec::new();

    for v in dfg.schedulable_ops() {
        meter.charge(Phase::RegAssign, 2);
        let Some(t) = schedule.time(v) else { continue };
        let op = dfg.node(v).opcode().expect("schedulable op");
        if !op.has_dest() {
            continue;
        }
        let def = t + i64::from(lat.latency(op));
        let mut end = def;
        for e in dfg.succ_edges(v) {
            meter.charge(Phase::RegAssign, 1);
            if let Some(tc) = schedule.time(e.dst) {
                end = end.max(tc + ii * i64::from(e.distance));
            }
        }
        if dfg.node(v).live_out {
            // Live-outs persist until the iteration drains: one extra kernel
            // round guarantees the memory-mapped file holds the final value.
            end = end.max(def + ii);
        }
        if end <= def {
            continue; // bypassed on the interconnect, no register needed
        }
        let fp = value_is_fp(dfg, v);
        intervals.push((v, def, end, fp));
        let rows = if fp { &mut fp_rows } else { &mut int_rows };
        let span = end - def;
        let full_laps = (span / ii) as usize;
        if full_laps > 0 {
            for r in rows.iter_mut() {
                *r += full_laps;
            }
        }
        let rem = span % ii;
        for k in 0..rem {
            let r = (def + k).rem_euclid(ii) as usize;
            rows[r] += 1;
        }
    }

    let int_live = int_rows.iter().copied().max().unwrap_or(0) + pinned_int;
    let fp_live = fp_rows.iter().copied().max().unwrap_or(0) + pinned_fp;
    let pressure = RegisterPressure {
        int_live,
        fp_live,
        int_regs: config.int_regs,
        fp_regs: config.fp_regs,
    };
    if !pressure.fits() {
        return Err(pressure);
    }

    // Greedy class-local index assignment: each value takes
    // ceil(lifetime / II) register "lanes" starting from the lowest free
    // index at its definition row. Pinned values take the lowest indices.
    let mut assignment: HashMap<OpId, u16> = HashMap::new();
    let mut next_int = pinned_int as u16;
    let mut next_fp = pinned_fp as u16;
    let mut idx_int = 0u16;
    let mut idx_fp = 0u16;
    let mut const_idx: HashMap<(i64, bool), u16> = HashMap::new();
    for v in dfg.live_in_ids().chain(dfg.const_ids()) {
        if dfg.succ_edges(v).next().is_none() {
            continue;
        }
        let fp = value_is_fp(dfg, v);
        if let veal_ir::dfg::NodeKind::Const(c) = dfg.node(v).kind {
            if let Some(&idx) = const_idx.get(&(c, fp)) {
                assignment.insert(v, idx);
                continue;
            }
        }
        let idx = if fp {
            let i = idx_fp;
            idx_fp += 1;
            i
        } else {
            let i = idx_int;
            idx_int += 1;
            i
        };
        if let veal_ir::dfg::NodeKind::Const(c) = dfg.node(v).kind {
            const_idx.insert((c, fp), idx);
        }
        assignment.insert(v, idx);
    }
    intervals.sort_by_key(|&(v, def, _, _)| (def, v));
    // Free lists per class: (available_from, index).
    let mut free_int: Vec<(i64, u16)> = Vec::new();
    let mut free_fp: Vec<(i64, u16)> = Vec::new();
    for (v, def, end, fp) in intervals {
        meter.charge(Phase::RegAssign, 2);
        let (free, next) = if fp {
            (&mut free_fp, &mut next_fp)
        } else {
            (&mut free_int, &mut next_int)
        };
        let reuse = free
            .iter()
            .position(|&(avail, _)| avail <= def)
            .map(|i| free.remove(i).1);
        let idx = reuse.unwrap_or_else(|| {
            let i = *next;
            *next += 1;
            i
        });
        assignment.insert(v, idx);
        free.push((end, idx));
    }

    Ok(RegisterAssignment {
        pressure,
        pinned_int,
        pinned_fp,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::swing_order;
    use crate::scheduler::list_schedule;
    use veal_accel::LatencyModel;
    use veal_ir::streams::StreamSummary;
    use veal_ir::{DfgBuilder, Opcode};

    fn schedule_of(dfg: &Dfg, config: &AcceleratorConfig) -> ModuloSchedule {
        let mut m = CostMeter::new();
        let order = swing_order(dfg, &LatencyModel::default(), 1, &mut m);
        list_schedule(dfg, config, &order, 1, StreamSummary::default(), &mut m).expect("schedules")
    }

    #[test]
    fn pinned_live_ins_counted() {
        let mut b = DfgBuilder::new();
        let k = b.live_in();
        let c = b.constant(3);
        let x = b.op(Opcode::Add, &[k, c]);
        b.mark_live_out(x);
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        assert_eq!(r.pinned_int, 2);
        assert_eq!(r.pinned_fp, 0);
        assert!(r.pressure.int_live >= 2);
    }

    #[test]
    fn unused_constant_needs_no_register() {
        let mut b = DfgBuilder::new();
        let _unused = b.constant(9);
        let x = b.op(Opcode::Add, &[]);
        b.mark_live_out(x);
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        assert_eq!(r.pinned_int, 0);
    }

    #[test]
    fn bypassed_value_needs_no_register() {
        // y consumes x exactly when it appears: interconnect bypass.
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        let _ = y;
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        if s.time(y).unwrap() == s.time(x).unwrap() + 1 {
            assert!(!r.assignment.contains_key(&x));
        }
    }

    #[test]
    fn fp_values_use_fp_file() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::FMul, &[]);
        let y = b.op(Opcode::FAdd, &[x]);
        b.mark_live_out(y);
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        assert!(r.pressure.fp_live >= 1);
    }

    #[test]
    fn too_few_registers_aborts() {
        let la = AcceleratorConfig::builder().int_regs(1).build();
        let mut b = DfgBuilder::new();
        // Several long-lived int values alive across a mul's latency.
        let mut vals = Vec::new();
        for _ in 0..4 {
            vals.push(b.op(Opcode::Add, &[]));
        }
        let m1 = b.op(Opcode::Mul, &[vals[0], vals[1]]);
        let m2 = b.op(Opcode::Mul, &[vals[2], vals[3]]);
        let s1 = b.op(Opcode::Add, &[m1, m2]);
        let s2 = b.op(Opcode::Add, &[s1, vals[0]]);
        b.mark_live_out(s2);
        let dfg = b.finish();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new());
        assert!(r.is_err());
        let p = r.unwrap_err();
        assert!(!p.fits());
        assert_eq!(p.int_regs, 1);
    }

    #[test]
    fn long_lifetime_occupies_multiple_lanes() {
        // A value alive for several IIs overlaps itself across iterations.
        let la = AcceleratorConfig::paper_design();
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let m1 = b.op(Opcode::Mul, &[x]);
        let m2 = b.op(Opcode::Mul, &[m1]);
        let y = b.op(Opcode::Add, &[m2, x]); // x live across ~6 cycles
        b.mark_live_out(y);
        let dfg = b.finish();
        let s = schedule_of(&dfg, &la);
        // 4 int ops on 2 units: II = 2; x stays live across both muls
        // (6+ cycles), overlapping itself in 3+ concurrent iterations.
        assert_eq!(s.ii, 2);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        assert!(r.pressure.int_live >= 3, "live {}", r.pressure.int_live);
    }

    #[test]
    fn assignment_indices_within_pressure() {
        let la = AcceleratorConfig::paper_design();
        let mut b = DfgBuilder::new();
        let k = b.live_in();
        let x = b.op(Opcode::Mul, &[k, k]);
        let y = b.op(Opcode::Add, &[x, k]);
        b.mark_live_out(y);
        let dfg = b.finish();
        let s = schedule_of(&dfg, &la);
        let r = assign_registers(&dfg, &s, &la, &mut CostMeter::new()).unwrap();
        for (&v, &idx) in &r.assignment {
            let fp = value_is_fp(&dfg, v);
            let cap = if fp {
                r.pressure.fp_live
            } else {
                r.pressure.int_live
            };
            assert!(
                (idx as usize) < cap.max(1),
                "{v} got index {idx} beyond pressure {cap}"
            );
        }
    }
}
