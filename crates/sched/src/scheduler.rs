//! The single-pass modulo list scheduler (paper §4.1, "Scheduling").

use crate::mrt::ModuloReservationTable;
use crate::priority::depths;
use std::collections::VecDeque;
use std::fmt;
use veal_accel::{AcceleratorConfig, CapabilityError, ResourceKind};
use veal_ir::streams::StreamSummary;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// Sentinel in the dense time table for ops without a scheduled time
/// (non-schedulable nodes, or slots of another attempt).
pub(crate) const UNSCHEDULED: i64 = i64::MIN;

/// A completed modulo schedule.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// The achieved initiation interval.
    pub ii: u32,
    /// Absolute schedule time per node slot (indexed by `OpId::index()`,
    /// normalized so the earliest is 0); `UNSCHEDULED` where no op was
    /// placed.
    times: Vec<i64>,
    /// Unit assignment per node slot; meaningful only where `times` is set.
    units: Vec<(ResourceKind, usize)>,
}

impl ModuloSchedule {
    /// Assembles a schedule from dense parts. Used by the retained
    /// reference scheduler (`crate::reference`) to emit its hash-map state
    /// in the common representation.
    pub(crate) fn from_parts(ii: u32, times: Vec<i64>, units: Vec<(ResourceKind, usize)>) -> Self {
        ModuloSchedule { ii, times, units }
    }

    /// Schedule time of `op`, if it was scheduled.
    #[must_use]
    pub fn time(&self, op: OpId) -> Option<i64> {
        self.times
            .get(op.index())
            .copied()
            .filter(|&t| t != UNSCHEDULED)
    }

    /// Kernel row (`time mod II`) of `op`.
    #[must_use]
    pub fn cycle(&self, op: OpId) -> Option<u32> {
        self.time(op)
            .map(|t| t.rem_euclid(i64::from(self.ii)) as u32)
    }

    /// Pipeline stage (`time / II`) of `op`.
    #[must_use]
    pub fn stage(&self, op: OpId) -> Option<u32> {
        self.time(op).map(|t| (t / i64::from(self.ii)) as u32)
    }

    /// The unit `op` executes on.
    #[must_use]
    pub fn unit(&self, op: OpId) -> Option<(ResourceKind, usize)> {
        self.time(op)?;
        self.units.get(op.index()).copied()
    }

    /// Number of stages (SC): lower SC means lower iteration latency
    /// (paper §2.2).
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        self.times
            .iter()
            .filter(|&&t| t != UNSCHEDULED)
            .map(|&t| (t / i64::from(self.ii)) as u32 + 1)
            .max()
            .unwrap_or(1)
    }

    /// All scheduled ops with their times, sorted by time then id.
    #[must_use]
    pub fn entries(&self) -> Vec<(OpId, i64)> {
        let mut v: Vec<(OpId, i64)> = self
            .times
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != UNSCHEDULED)
            .map(|(i, &t)| (OpId::new(i), t))
            .collect();
        v.sort_by_key(|&(k, t)| (t, k));
        v
    }

    /// Size of the accelerator control configuration for this schedule, in
    /// 32-bit words: one instruction slot per (FU × II row) plus stream
    /// descriptors. Used to size the VM's code cache (paper §4.3 sizes 16
    /// translated loops at ~48 KB).
    #[must_use]
    pub fn control_words(&self, config: &AcceleratorConfig) -> usize {
        let fus = config.int_units + config.fp_units + config.cca_units;
        let agens = config.load_addr_gens + config.store_addr_gens;
        (fus + agens) * self.ii as usize + 2 * (config.load_streams + config.store_streams)
    }

    /// The dense per-slot representation: `(ii, times, units)`. Slots with
    /// no scheduled op carry [`Self::raw_unscheduled`] in `times`; their
    /// `units` entry is meaningless. Used by serializers (warm-state
    /// snapshots) that need the exact placement, not just the
    /// [`Self::entries`] view.
    #[must_use]
    pub fn raw_parts(&self) -> (u32, &[i64], &[(ResourceKind, usize)]) {
        (self.ii, &self.times, &self.units)
    }

    /// The `times` sentinel marking an unscheduled slot in
    /// [`Self::raw_parts`].
    #[must_use]
    pub fn raw_unscheduled() -> i64 {
        UNSCHEDULED
    }

    /// Reassembles a schedule from [`Self::raw_parts`] data. The caller
    /// owns validity: a schedule built from untrusted parts must be checked
    /// with [`crate::verify_schedule`] before use. `ii` is clamped to ≥ 1
    /// and `units` is resized to `times.len()` so the accessors never
    /// index out of bounds or divide by zero, whatever the input.
    #[must_use]
    pub fn from_raw_parts(ii: u32, times: Vec<i64>, mut units: Vec<(ResourceKind, usize)>) -> Self {
        units.resize(times.len(), (ResourceKind::Int, usize::MAX));
        ModuloSchedule {
            ii: ii.max(1),
            times,
            units,
        }
    }
}

impl fmt::Display for ModuloSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "II={} SC={}", self.ii, self.stage_count())?;
        for (op, t) in self.entries() {
            let (kind, unit) = self.unit(op).expect("entries are scheduled");
            writeln!(
                f,
                "  t={t:3} cycle={} stage={} {op} on {kind}{unit}",
                t.rem_euclid(i64::from(self.ii)),
                t / i64::from(self.ii),
            )?;
        }
        Ok(())
    }
}

/// Why a loop could not be scheduled onto the accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Stream requirements exceed the hardware.
    Capability(CapabilityError),
    /// The minimum II already exceeds the control-store depth.
    MiiExceedsControlStore {
        /// Required minimum II.
        mii: u32,
        /// Hardware maximum II.
        max_ii: u32,
    },
    /// No II up to the hardware maximum admitted a schedule.
    NoSchedule {
        /// The largest II attempted.
        tried_up_to: u32,
    },
    /// Register pressure exceeds the register file.
    Registers(crate::regalloc::RegisterPressure),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Capability(e) => write!(f, "{e}"),
            ScheduleError::MiiExceedsControlStore { mii, max_ii } => {
                write!(f, "MII {mii} exceeds control store depth {max_ii}")
            }
            ScheduleError::NoSchedule { tried_up_to } => {
                write!(f, "no feasible schedule up to II {tried_up_to}")
            }
            ScheduleError::Registers(p) => write!(f, "register pressure too high: {p}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Schedules `order` onto `config`, trying IIs from `mii` up to the
/// hardware maximum.
///
/// Placement follows the paper's walkthrough: each op's window is derived
/// from its already placed neighbours (`t(succ) ≥ t(pred) + latency −
/// II·distance`); the scheduler scans at most II slots in the appropriate
/// direction and, failing that for any op, retries the whole loop at
/// II + 1.
///
/// # Errors
///
/// [`ScheduleError::NoSchedule`] if no II ≤ `config.max_ii` works.
pub fn list_schedule(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    order: &[OpId],
    mii: u32,
    streams: StreamSummary,
    meter: &mut CostMeter,
) -> Result<ModuloSchedule, ScheduleError> {
    if !veal_ir::data_oriented_enabled() {
        return crate::reference::list_schedule(dfg, config, order, mii, streams, meter);
    }
    let lat = &config.latencies;
    // Depths depend only on (dfg, lat); when the parametric MinDist is
    // enabled its cache already memoizes them (the translator warms it
    // during RecMII/priority), so this pass reuses the cached copy and
    // charges the bulk equivalent (one unit per topo node). The fallback
    // recomputes — and, for ill-formed bodies, panics — exactly as before.
    let cached = if crate::mindist::parametric_enabled() {
        Some(crate::param::cached(dfg, lat))
    } else {
        None
    };
    let owned;
    let d: &[u32] = match cached.as_ref().and_then(|p| p.profiles()) {
        Some((pd, _, topo_len)) => {
            meter.charge(Phase::Scheduling, topo_len as u64);
            pd
        }
        None => {
            owned = depths(dfg, lat, meter, Phase::Scheduling);
            &owned
        }
    };
    let start_ii = mii.max(config.min_ii_for_streams(streams)).max(1);
    // Bound the escalation: a loop that fails 64 consecutive IIs is not
    // going to schedule (keeps the huge-control-store infinite machine from
    // scanning thousands of IIs).
    let last_ii = config.max_ii.min(start_ii.saturating_add(63));
    // The reservation table, time/unit maps, and worklist are hoisted out
    // of the escalation loop and cleared per attempt, so retrying at II + 1
    // re-uses the previous attempt's allocations. The scratch itself is
    // parked in a thread-local between calls: the VM schedules hundreds of
    // small loops back to back (translation, DSE sweeps), and re-allocating
    // the Θ(units·II) reservation table per loop shows up at that scale.
    // No reset here: `try_schedule` resets (and re-sizes) the scratch at
    // the top of every attempt.
    let mut scratch = SCRATCH_POOL
        .with(|p| p.borrow_mut().take())
        .unwrap_or_else(|| SchedScratch::new(start_ii, config, order.len(), dfg.len()));
    scratch.load_latencies(dfg, lat);
    let mut result = Err(ScheduleError::NoSchedule {
        tried_up_to: last_ii,
    });
    for ii in start_ii..=last_ii {
        meter.charge(Phase::Scheduling, 4);
        if ii > start_ii {
            // Escalations past the MII are the scheduler retrying; their
            // count (per attempted II step) is the headline "how often does
            // modulo scheduling fail first try" metric.
            static ESCALATIONS: std::sync::OnceLock<&'static veal_obs::Counter> =
                std::sync::OnceLock::new();
            ESCALATIONS
                .get_or_init(|| veal_obs::counter("sched.ii_escalations"))
                .inc();
        }
        if let Some(schedule) = try_schedule(dfg, config, order, ii, d, &mut scratch, meter) {
            result = Ok(schedule);
            break;
        }
    }
    SCRATCH_POOL.with(|p| *p.borrow_mut() = Some(scratch));
    result
}

thread_local! {
    /// Parked [`SchedScratch`] reused across `list_schedule` calls on this
    /// thread (the reservation table and worklist keep their allocations;
    /// the dense time/unit tables move into each successful schedule).
    static SCRATCH_POOL: std::cell::RefCell<Option<SchedScratch>> =
        const { std::cell::RefCell::new(None) };
}

/// Per-attempt working state of [`try_schedule`], reused across the
/// II-escalation loop so each retry stops re-allocating Θ(units·II) tables
/// and Θ(nodes) tables. Times and units are dense over node slots —
/// lookups in the scheduler's inner loop are direct indexing instead of
/// hashing.
struct SchedScratch {
    mrt: ModuloReservationTable,
    times: Vec<i64>,
    units: Vec<(ResourceKind, usize)>,
    queue: VecDeque<OpId>,
    /// Per-slot operation latency (0 for non-ops); filled once per
    /// `list_schedule` call, shared by every II attempt.
    lat_of: Vec<u32>,
    /// Per-slot reservation span (1 for pipelined ops).
    span_of: Vec<u32>,
    /// Ejection victim buffer.
    victims: Vec<OpId>,
}

/// Dense-unit sentinel for slots with no reservation (and the default for
/// resource-free ops, matching `unit()`'s historical answer for them).
const NO_UNIT: (ResourceKind, usize) = (ResourceKind::Int, usize::MAX);

impl SchedScratch {
    fn new(ii: u32, config: &AcceleratorConfig, ops: usize, nodes: usize) -> Self {
        SchedScratch {
            mrt: ModuloReservationTable::with_unit_cap(ii, config, ops.max(1)),
            times: vec![UNSCHEDULED; nodes],
            units: vec![NO_UNIT; nodes],
            queue: VecDeque::with_capacity(ops),
            lat_of: Vec::with_capacity(nodes),
            span_of: Vec::with_capacity(nodes),
            victims: Vec::new(),
        }
    }

    /// Rebuilds the per-slot latency/span tables for `dfg`.
    fn load_latencies(&mut self, dfg: &Dfg, lat: &veal_accel::LatencyModel) {
        let opcs = dfg.adjacency().opcodes();
        self.lat_of.clear();
        self.span_of.clear();
        for &enc in opcs {
            let (l, sp) = match veal_ir::Opcode::decode(enc) {
                Some(op) => {
                    let l = lat.latency(op);
                    (l, if op.pipelined() { 1 } else { l })
                }
                None => (0, 1),
            };
            self.lat_of.push(l);
            self.span_of.push(sp);
        }
    }

    /// Empties every structure for a fresh attempt at `ii`.
    fn reset(&mut self, ii: u32, config: &AcceleratorConfig, ops: usize, nodes: usize) {
        self.mrt.reset(ii, config, ops.max(1));
        self.times.clear();
        self.times.resize(nodes, UNSCHEDULED);
        self.units.clear();
        self.units.resize(nodes, NO_UNIT);
        self.queue.clear();
        self.victims.clear();
    }
}

fn try_schedule(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    order: &[OpId],
    ii: u32,
    depth: &[u32],
    scratch: &mut SchedScratch,
    meter: &mut CostMeter,
) -> Option<ModuloSchedule> {
    scratch.reset(ii, config, order.len(), dfg.len());
    let SchedScratch {
        mrt,
        times,
        units,
        queue,
        lat_of,
        span_of,
        victims,
    } = scratch;
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let opcs = adj.opcodes();

    // Worklist form of the list scheduler with a bounded ejection fallback
    // (Rau-style iterative scheduling): when an op's two-sided window is
    // structurally empty — its placed successors sit too close to its
    // placed predecessors — the successors are unplaced and rescheduled
    // after it. This keeps any externally supplied order (static hints,
    // height priority) feasible instead of failing every II.
    queue.extend(order.iter().copied());
    let mut ejections = 32 * order.len() as u64 + 64;

    while let Some(v) = queue.pop_front() {
        let op = veal_ir::Opcode::decode(opcs[v.index()]).expect("order contains only ops");
        let span = span_of[v.index()];

        // Earliest from placed predecessors, latest from placed successors.
        // The cost model charges one unit per adjacent edge; the count is
        // accumulated in a register and charged in bulk after the loops
        // (identical totals, no memory read-modify-write per edge).
        // Latencies come from the precomputed per-slot table.
        let mut edge_charges = 0u64;
        let mut early: Option<i64> = None;
        let mut late: Option<i64> = None;
        for &ei in adj.pred_edge_ids(v.index()) {
            let e = &edges[ei as usize];
            edge_charges += 1;
            if e.src == v {
                continue; // self edge: handled by the II >= RecMII bound
            }
            let tp = times[e.src.index()];
            if tp != UNSCHEDULED {
                let lp = i64::from(lat_of[e.src.index()]);
                let bound = tp + lp - i64::from(ii) * i64::from(e.distance);
                early = Some(early.map_or(bound, |b: i64| b.max(bound)));
            }
        }
        for &ei in adj.succ_edge_ids(v.index()) {
            let e = &edges[ei as usize];
            edge_charges += 1;
            if e.dst == v {
                continue;
            }
            let ts = times[e.dst.index()];
            if ts != UNSCHEDULED {
                let lv = i64::from(lat_of[v.index()]);
                let bound = ts - lv + i64::from(ii) * i64::from(e.distance);
                late = Some(late.map_or(bound, |b: i64| b.min(bound)));
            }
        }
        meter.charge(Phase::Scheduling, edge_charges);

        // Window and scan direction per the Swing scheme: top-down when
        // constrained from above, bottom-up when constrained from below. A
        // two-sided window that is empty (e0 > l0) or fully resource-blocked
        // triggers the ejection fallback: the placed successors are
        // unscheduled and retried after this op (Rau-style iterative
        // scheduling), which keeps any externally supplied order feasible.
        let slot = match (early, late) {
            (Some(e0), Some(l0)) if e0 > l0 => None,
            (Some(e0), Some(l0)) => scan_up(
                mrt,
                resource(op),
                e0,
                l0.min(e0 + i64::from(ii) - 1),
                span,
                meter,
            ),
            (Some(e0), None) => scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter),
            (None, Some(l0)) => {
                scan_down(mrt, resource(op), l0, l0 - i64::from(ii) + 1, span, meter)
            }
            (None, None) => {
                let e0 = i64::from(depth[v.index()]);
                scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter)
            }
        };
        let slot = match slot {
            Some(s) => s,
            None => {
                static SCHED_DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
                if *SCHED_DEBUG.get_or_init(|| std::env::var_os("VEAL_SCHED_DEBUG").is_some()) {
                    eprintln!("stuck {v} ({op}) early={early:?} late={late:?} ii={ii}");
                }
                if late.is_none() || ejections == 0 {
                    // One-sided failures mean genuine resource shortage at
                    // this II; ejection cannot help.
                    return None;
                }
                ejections -= 1;
                meter.charge(Phase::Scheduling, 4);
                victims.clear();
                for &ei in adj.succ_edge_ids(v.index()) {
                    let e = &edges[ei as usize];
                    if e.dst != v && times[e.dst.index()] != UNSCHEDULED {
                        victims.push(e.dst);
                    }
                }
                if victims.is_empty() {
                    return None;
                }
                for w in victims.drain(..) {
                    let tw = std::mem::replace(&mut times[w.index()], UNSCHEDULED);
                    if tw != UNSCHEDULED {
                        let (kind, u) = std::mem::replace(&mut units[w.index()], NO_UNIT);
                        if u != usize::MAX {
                            mrt.release(kind, u, tw, span_of[w.index()]);
                        }
                        queue.push_back(w);
                    }
                }
                queue.push_front(v);
                continue;
            }
        };
        let (t, unit_choice) = slot;
        if let Some((kind, u)) = unit_choice {
            mrt.reserve(kind, u, t, span);
            units[v.index()] = (kind, u);
        }
        times[v.index()] = t;
    }

    // Normalize times so the earliest op is at 0 (keeping rows intact would
    // also be valid; normalizing keeps stage counts meaningful).
    let min_t = times
        .iter()
        .copied()
        .filter(|&t| t != UNSCHEDULED)
        .min()
        .unwrap_or(0);
    let shift = min_t.rem_euclid(i64::from(ii)) - min_t;
    for t in times.iter_mut() {
        if *t != UNSCHEDULED {
            *t += shift;
        }
    }
    // Resource-free ops (none today) keep the dense NO_UNIT default, which
    // is exactly what `unit()` has always answered for them.
    // Success ends the escalation loop, so the tables can move straight into
    // the schedule (the scratch is left empty).
    Some(ModuloSchedule {
        ii,
        times: std::mem::take(times),
        units: std::mem::take(units),
    })
}

fn resource(op: veal_ir::Opcode) -> ResourceKind {
    ResourceKind::for_opcode(op).unwrap_or(ResourceKind::Int)
}

type Slot = (i64, Option<(ResourceKind, usize)>);

// Both scans charge one unit per probed slot; the probe count is kept in a
// register and charged in bulk on exit (identical totals to the historical
// per-probe charge).
fn scan_up(
    mrt: &ModuloReservationTable,
    kind: ResourceKind,
    from: i64,
    to: i64,
    span: u32,
    meter: &mut CostMeter,
) -> Option<Slot> {
    let mut probes = 0u64;
    let mut t = from;
    while t <= to {
        probes += 1;
        if let Some(u) = mrt.find_unit(kind, t, span) {
            meter.charge(Phase::Scheduling, probes);
            return Some((t, Some((kind, u))));
        }
        t += 1;
    }
    meter.charge(Phase::Scheduling, probes);
    None
}

fn scan_down(
    mrt: &ModuloReservationTable,
    kind: ResourceKind,
    from: i64,
    to: i64,
    span: u32,
    meter: &mut CostMeter,
) -> Option<Slot> {
    let mut probes = 0u64;
    let mut t = from;
    while t >= to {
        probes += 1;
        if let Some(u) = mrt.find_unit(kind, t, span) {
            meter.charge(Phase::Scheduling, probes);
            return Some((t, Some((kind, u))));
        }
        t -= 1;
    }
    meter.charge(Phase::Scheduling, probes);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::swing_order;
    use veal_accel::LatencyModel;
    use veal_ir::{DfgBuilder, Opcode};

    fn schedule(dfg: &Dfg, config: &AcceleratorConfig, mii: u32) -> ModuloSchedule {
        let mut m = CostMeter::new();
        let order = swing_order(dfg, &LatencyModel::default(), mii, &mut m);
        list_schedule(dfg, config, &order, mii, StreamSummary::default(), &mut m)
            .expect("schedulable")
    }

    #[test]
    fn chain_scheduled_in_dependence_order() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]);
        let y = b.op(Opcode::Add, &[x]);
        let dfg = b.finish();
        let s = schedule(&dfg, &AcceleratorConfig::paper_design(), 1);
        assert!(s.time(y).unwrap() >= s.time(x).unwrap() + 3);
    }

    #[test]
    fn five_int_ops_two_units_ii3() {
        // The paper's ResMII example: 5 independent int ops, 2 units.
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.op(Opcode::Shl, &[]);
        }
        let dfg = b.finish();
        let s = schedule(&dfg, &AcceleratorConfig::paper_design(), 3);
        assert_eq!(s.ii, 3);
        // No more than 2 ops share a kernel row.
        let mut per_row = [0; 3];
        for id in dfg.schedulable_ops() {
            per_row[s.cycle(id).unwrap() as usize] += 1;
        }
        assert!(per_row.iter().all(|&c| c <= 2));
    }

    #[test]
    fn recurrence_constrains_but_schedules() {
        let mut b = DfgBuilder::new();
        let m1 = b.op(Opcode::Mul, &[]);
        let o = b.op(Opcode::Or, &[m1]);
        b.loop_carried(o, m1, 1);
        let dfg = b.finish();
        let s = schedule(&dfg, &AcceleratorConfig::paper_design(), 4);
        assert_eq!(s.ii, 4);
        let tm = s.time(m1).unwrap();
        let to = s.time(o).unwrap();
        assert!(to >= tm + 3);
        // Loop-carried constraint: tm(next iter) = tm + 4 >= to + 1.
        assert!(tm + 4 > to);
    }

    #[test]
    fn ii_escalates_when_resources_tight() {
        // 4 FP ops on a 1-FP-unit machine with long latency chains.
        let la = AcceleratorConfig::builder().fp_units(1).build();
        let mut b = DfgBuilder::new();
        for _ in 0..4 {
            b.op(Opcode::FAdd, &[]);
        }
        let dfg = b.finish();
        let s = schedule(&dfg, &la, 1);
        assert!(s.ii >= 4);
    }

    #[test]
    fn unpipelined_div_occupies_span() {
        let la = AcceleratorConfig::builder().int_units(1).build();
        let mut b = DfgBuilder::new();
        b.op(Opcode::Div, &[]);
        b.op(Opcode::Add, &[]);
        let dfg = b.finish();
        // Div occupies its unit for 12 cycles; a second op needs II >= 13
        // on a single int unit.
        let s = schedule(&dfg, &la, 1);
        assert!(s.ii >= 13, "ii was {}", s.ii);
    }

    #[test]
    fn no_schedule_when_mii_exceeds_max() {
        let la = AcceleratorConfig::builder().max_ii(2).int_units(1).build();
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.op(Opcode::Add, &[]);
        }
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let order = swing_order(&dfg, &LatencyModel::default(), 5, &mut m);
        let r = list_schedule(&dfg, &la, &order, 1, StreamSummary::default(), &mut m);
        assert!(matches!(r, Err(ScheduleError::NoSchedule { .. })));
    }

    #[test]
    fn stage_count_and_cycles() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]);
        let y = b.op(Opcode::Mul, &[x]);
        let z = b.op(Opcode::Add, &[y]);
        let _ = z;
        let dfg = b.finish();
        // 3 int ops on 2 units: ResMII = 2.
        let s = schedule(&dfg, &AcceleratorConfig::paper_design(), 2);
        assert_eq!(s.ii, 2);
        // Chain latency 3+3+1 = 7 over II=2: at least 4 stages.
        assert!(s.stage_count() >= 4);
    }

    #[test]
    fn control_words_scale_with_ii() {
        let la = AcceleratorConfig::paper_design();
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        b.loop_carried(x, x, 1);
        for _ in 0..7 {
            b.op(Opcode::Shl, &[]);
        }
        let dfg = b.finish();
        let s = schedule(&dfg, &la, 4);
        assert!(s.control_words(&la) > 0);
        assert!(s.control_words(&la) >= 11 * s.ii as usize);
    }

    #[test]
    fn display_lists_all_ops() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let _ = x;
        let dfg = b.finish();
        let s = schedule(&dfg, &AcceleratorConfig::paper_design(), 1);
        assert!(s.to_string().contains("II=1"));
        assert!(s.to_string().contains("op0"));
    }
}
