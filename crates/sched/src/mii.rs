//! Minimum initiation interval calculation (paper §4.1).
//!
//! `II ≥ ResMII`: "since there are 5 integer instructions in the loop and 2
//! integer units, II must be at least ⌈5/2⌉" — per-resource-class op counts
//! divided by unit counts, plus the address-generator multiplexing bound.
//!
//! `II ≥ RecMII`: "because the longest recurrence is 4 cycles long, the II
//! must be at least 4" — the maximum over recurrence cycles of
//! `⌈Σ latency / Σ distance⌉`. Computed per strongly connected component
//! with a small binary search + Bellman–Ford feasibility check, keeping the
//! cost low (the paper measured ResMII+RecMII at only ~1.25k instructions
//! per loop).

use veal_accel::{AcceleratorConfig, LatencyModel, ResourceKind};
use veal_ir::streams::StreamSummary;
use veal_ir::{with_arena, CostMeter, Dfg, OpId, Phase};

/// Resource-constrained minimum II.
///
/// # Example
///
/// ```
/// use veal_accel::AcceleratorConfig;
/// use veal_ir::streams::StreamSummary;
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_sched::res_mii;
///
/// // 5 integer ops on 2 integer units -> ResMII = 3 (the paper's example).
/// let mut b = DfgBuilder::new();
/// let mut prev = b.op(Opcode::Shl, &[]);
/// for _ in 0..4 {
///     prev = b.op(Opcode::Shl, &[prev]);
/// }
/// let dfg = b.finish();
/// let la = AcceleratorConfig::paper_design();
/// let mut m = CostMeter::new();
/// assert_eq!(res_mii(&dfg, &la, StreamSummary::default(), &mut m), 3);
/// ```
#[must_use]
pub fn res_mii(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    streams: StreamSummary,
    meter: &mut CostMeter,
) -> u32 {
    let mut counts = [0usize; 5];
    for id in dfg.schedulable_ops() {
        meter.charge(Phase::ResMii, 1);
        let op = dfg.node(id).opcode().expect("schedulable op");
        if let Some(kind) = ResourceKind::for_opcode(op) {
            counts[kind.index()] += 1;
        }
    }
    let mut mii = 1u32;
    for &kind in veal_accel::resources::ALL_RESOURCES {
        let n = counts[kind.index()];
        if n == 0 {
            continue;
        }
        let units = config.units(kind);
        meter.charge(Phase::ResMii, 2);
        if units == 0 {
            // No unit of a needed class: effectively unschedulable; signal
            // with an II beyond any control store.
            return u32::MAX;
        }
        mii = mii.max(n.div_ceil(units) as u32);
    }
    // Address generators are time-multiplexed: a generator serves at most II
    // streams (paper §3.1).
    mii = mii.max(config.min_ii_for_streams(streams));
    mii
}

/// Recurrence-constrained minimum II.
///
/// # Example
///
/// ```
/// use veal_accel::LatencyModel;
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_sched::rec_mii;
///
/// // mul (3 cy) -> or (1 cy) -> back at distance 1: RecMII = 4.
/// let mut b = DfgBuilder::new();
/// let m = b.op(Opcode::Mul, &[]);
/// let o = b.op(Opcode::Or, &[m]);
/// b.loop_carried(o, m, 1);
/// let mut meter = CostMeter::new();
/// assert_eq!(rec_mii(&b.finish(), &LatencyModel::default(), &mut meter), 4);
/// ```
#[must_use]
pub fn rec_mii(dfg: &Dfg, lat: &LatencyModel, meter: &mut CostMeter) -> u32 {
    // The metered algorithm is unchanged (the VM pays for an SCC pass plus
    // the per-SCC binary search + Bellman–Ford below — the paper's ~1.25k
    // instructions); the host merely reads the SCC list and cyclic flags
    // off the graph's cached condensation instead of re-running Tarjan.
    if !veal_ir::data_oriented_enabled() {
        return rec_mii_reference(dfg, lat, meter);
    }
    // Only the cyclic SCCs matter, and RecMII is a max over them, so the
    // full condensation (component lists in reverse-topo order, topo order,
    // reachability snapshot) is overkill — an SCC membership map suffices.
    // Each cyclic component's members collect in ascending slot order,
    // matching the sorted component lists the reference scans, so the
    // compacted edge lists (and with them every metered relaxation round)
    // are identical.
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    meter.charge(Phase::RecMii, dfg.len() as u64);
    let scc_view = dfg.scc_view();
    let mut packed = with_arena(veal_ir::DfgArena::take_u64);
    // Members of cyclic components as `(comp << 32) | slot`: sorting groups
    // them by component with slots ascending inside each run.
    packed.clear();
    for v in 0..dfg.len() {
        let c = scc_view.comp_of[v];
        if c != u32::MAX && scc_view.is_cyclic(c) {
            packed.push(u64::from(c) << 32 | v as u64);
        }
    }
    packed.sort_unstable();

    let mut mii = 1u32;
    // Reused across SCCs: the compacted subgraph and the Bellman–Ford
    // distance column.
    let mut sedges: Vec<(u32, u32, i64, i64)> = Vec::new();
    let mut dist: Vec<i64> = Vec::new();
    let mut start = 0usize;
    while start < packed.len() {
        let c = packed[start] >> 32;
        let mut end = start + 1;
        while end < packed.len() && packed[end] >> 32 == c {
            end += 1;
        }
        let scc = &packed[start..end];
        // Compact the SCC subgraph once — `(src index, dst index, src
        // latency, distance)` in the exact order the reference relaxation
        // scans it — so each Bellman–Ford pass below runs over a flat
        // array instead of re-walking adjacency, re-resolving member
        // indices, and re-reading latencies per relaxation.
        sedges.clear();
        let mut lat_sum = 0u32;
        for (i, &pv) in scc.iter().enumerate() {
            let v = OpId::new((pv & 0xffff_ffff) as usize);
            let l = dfg.node(v).opcode().map_or(0, |op| lat.latency(op));
            lat_sum += l;
            for &ei in adj.succ_edge_ids(v.index()) {
                let e = &edges[ei as usize];
                // In-SCC targets share the packed high word, so the search
                // key is just the packed (comp, dst) pair.
                if let Ok(j) = scc.binary_search(&(c << 32 | e.dst.index() as u64)) {
                    sedges.push((i as u32, j as u32, i64::from(l), i64::from(e.distance)));
                }
            }
        }
        // Upper bound: the sum of latencies around the component.
        let mut lo = 1u32;
        let mut hi = lat_sum.max(1);
        // Binary search the smallest II with no positive cycle in the SCC.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if has_positive_cycle_fast(&sedges, scc.len(), mid, &mut dist, meter) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        mii = mii.max(lo);
        start = end;
    }
    with_arena(|a| a.give_u64(packed));
    mii
}

/// The pre-sweep [`rec_mii`], retained as the reference: every relaxation
/// re-walks the graph's successor lists and re-resolves SCC indices.
#[must_use]
pub fn rec_mii_reference(dfg: &Dfg, lat: &LatencyModel, meter: &mut CostMeter) -> u32 {
    let cond = dfg.condensation();
    meter.charge(Phase::RecMii, dfg.len() as u64);
    let mut mii = 1u32;
    for (ci, scc) in cond.comps().iter().enumerate() {
        if !cond.is_cyclic(ci) {
            continue;
        }
        // Upper bound: the sum of latencies around the component.
        let hi: u32 = scc
            .iter()
            .map(|&v| dfg.node(v).opcode().map_or(0, |op| lat.latency(op)))
            .sum::<u32>()
            .max(1);
        let mut lo = 1u32;
        let mut hi = hi;
        // Binary search the smallest II with no positive cycle in the SCC.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if has_positive_cycle(dfg, lat, scc, mid, meter) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        mii = mii.max(lo);
    }
    mii
}

/// RecMII read directly off the cached II-parametric MinDist structure
/// ([`crate::MinDistParam`]): the smallest II at which no frontier
/// diagonal entry is positive. **Unmetered** — the VM's cost model still
/// runs (and charges for) the Bellman–Ford in [`rec_mii`]; this accessor
/// serves host-side fast paths and cross-checks.
///
/// Equals [`rec_mii`] for every well-formed body (recurrence cycles pass
/// only through schedulable ops); property tests assert the equality over
/// a randomized corpus.
#[must_use]
pub fn rec_mii_from_frontier(dfg: &Dfg, lat: &LatencyModel) -> u32 {
    crate::param::cached(dfg, lat).rec_mii()
}

/// [`has_positive_cycle`] over a pre-compacted SCC edge list
/// `(src index, dst index, src latency, distance)`.
///
/// The list is built in the reference's scan order (SCC member order ×
/// successor-edge insertion order), so relaxations fire in the same order,
/// `changed` flips on the same rounds, and the early-exit round count —
/// hence the metered charge total (one unit per in-SCC edge per executed
/// round, batched here into one call per round) — is identical.
fn has_positive_cycle_fast(
    sedges: &[(u32, u32, i64, i64)],
    n: usize,
    ii: u32,
    dist: &mut Vec<i64>,
    meter: &mut CostMeter,
) -> bool {
    dist.clear();
    dist.resize(n, 0);
    for round in 0..=n {
        meter.charge(Phase::RecMii, sedges.len() as u64);
        let mut changed = false;
        for &(i, j, l, d) in sedges {
            let w = l - i64::from(ii) * d;
            let cand = dist[i as usize] + w;
            if cand > dist[j as usize] {
                dist[j as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    true
}

/// Bellman–Ford style positive-cycle detection on the SCC subgraph with
/// edge weight `latency(src) − ii·distance`.
fn has_positive_cycle(
    dfg: &Dfg,
    lat: &LatencyModel,
    scc: &[OpId],
    ii: u32,
    meter: &mut CostMeter,
) -> bool {
    let index_of = |id: OpId| scc.binary_search(&id).ok();
    let n = scc.len();
    let mut dist = vec![0i64; n];
    // n relaxation rounds; improvement in round n implies a positive cycle.
    for round in 0..=n {
        let mut changed = false;
        for (i, &v) in scc.iter().enumerate() {
            let l = i64::from(dfg.node(v).opcode().map_or(0, |op| lat.latency(op)));
            for e in dfg.succ_edges(v) {
                let Some(j) = index_of(e.dst) else { continue };
                meter.charge(Phase::RecMii, 1);
                let w = l - i64::from(ii) * i64::from(e.distance);
                if dist[i] + w > dist[j] {
                    dist[j] = dist[i] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    fn meter() -> CostMeter {
        CostMeter::new()
    }

    #[test]
    fn acyclic_loop_rec_mii_is_one() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        assert_eq!(
            rec_mii(&b.finish(), &LatencyModel::default(), &mut meter()),
            1
        );
    }

    #[test]
    fn self_accumulator_rec_mii_is_latency() {
        let mut b = DfgBuilder::new();
        let acc = b.op(Opcode::FAdd, &[]);
        b.loop_carried(acc, acc, 1);
        // FAdd latency 3, distance 1 -> RecMII 3.
        assert_eq!(
            rec_mii(&b.finish(), &LatencyModel::default(), &mut meter()),
            3
        );
    }

    #[test]
    fn distance_two_halves_rec_mii() {
        let mut b = DfgBuilder::new();
        let acc = b.op(Opcode::FAdd, &[]);
        b.loop_carried(acc, acc, 2);
        // 3 cycles over distance 2 -> ceil(3/2) = 2.
        assert_eq!(
            rec_mii(&b.finish(), &LatencyModel::default(), &mut meter()),
            2
        );
    }

    #[test]
    fn paper_figure5_recurrences() {
        // Two 4-cycle recurrences: shl(1)+cca(2)+shr(1) and mpy(3)+or(1).
        let mut b = DfgBuilder::new();
        let shl = b.op(Opcode::Shl, &[]);
        let cca = b.op(Opcode::And, &[shl]); // stand-in; collapsed later
        let shr = b.op(Opcode::Shr, &[cca]);
        b.loop_carried(shr, shl, 1);
        let mpy = b.op(Opcode::Mul, &[]);
        let or = b.op(Opcode::Or, &[mpy]);
        b.loop_carried(or, mpy, 1);
        let mut dfg = b.finish();
        // Collapse the stand-in into a real 2-cycle CCA node.
        dfg.collapse(&[cca]);
        // shl(1) + cca(2) + shr(1) = 4; mpy(3) + or(1) = 4.
        assert_eq!(rec_mii(&dfg, &LatencyModel::default(), &mut meter()), 4);
    }

    #[test]
    fn res_mii_integer_example_from_paper() {
        // 5 int ops, 2 int units -> 3.
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.op(Opcode::Shl, &[]);
        }
        let la = AcceleratorConfig::paper_design();
        assert_eq!(
            res_mii(&b.finish(), &la, StreamSummary::default(), &mut meter()),
            3
        );
    }

    #[test]
    fn res_mii_counts_classes_independently() {
        let mut b = DfgBuilder::new();
        for _ in 0..4 {
            b.op(Opcode::Mul, &[]);
        }
        for _ in 0..6 {
            b.op(Opcode::FAdd, &[]);
        }
        let la = AcceleratorConfig::paper_design();
        // int: ceil(4/2)=2, fp: ceil(6/2)=3 -> 3.
        assert_eq!(
            res_mii(&b.finish(), &la, StreamSummary::default(), &mut meter()),
            3
        );
    }

    #[test]
    fn res_mii_missing_unit_class_is_unschedulable() {
        let mut b = DfgBuilder::new();
        b.op(Opcode::FAdd, &[]);
        let la = AcceleratorConfig::builder().fp_units(0).build();
        assert_eq!(
            res_mii(&b.finish(), &la, StreamSummary::default(), &mut meter()),
            u32::MAX
        );
    }

    #[test]
    fn res_mii_stream_multiplexing_bound() {
        let mut b = DfgBuilder::new();
        b.op(Opcode::Add, &[]);
        let la = AcceleratorConfig::paper_design();
        let streams = StreamSummary {
            loads: 16,
            stores: 0,
        };
        // 16 streams / 4 generators -> II >= 4.
        assert_eq!(res_mii(&b.finish(), &la, streams, &mut meter()), 4);
    }

    #[test]
    fn mem_ops_schedule_on_ports() {
        let mut b = DfgBuilder::new();
        for i in 0..8 {
            b.load_stream(i);
        }
        let la = AcceleratorConfig::paper_design();
        // 8 load ops on 4 load ports -> II >= 2.
        assert_eq!(
            res_mii(
                &b.finish(),
                &la,
                StreamSummary {
                    loads: 8,
                    stores: 0
                },
                &mut meter()
            ),
            2
        );
    }

    #[test]
    fn two_node_cycle_with_slack_distance() {
        // a -> b (0), b -> a (distance 3), latencies 1+1=2 over distance 3
        // -> RecMII 1.
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        b.loop_carried(y, x, 3);
        assert_eq!(
            rec_mii(&b.finish(), &LatencyModel::default(), &mut meter()),
            1
        );
    }
}
