//! II-parametric MinDist: compute the all-pairs longest-path structure
//! once, evaluate it at any initiation interval in O(n²·k).
//!
//! `MinDist[u][v]` at interval `II` is `max (Σlatency − II·Σdistance)`
//! over dependence paths `u → v`. The path set does not depend on II —
//! only the *evaluation* does — so each pair can be summarized once as a
//! small Pareto frontier of `(Σlatency, Σdistance)` lines and every
//! later II becomes an upper-envelope evaluation instead of a fresh
//! Θ(n³) Floyd–Warshall. This mirrors how symbolic/parametric modulo
//! scheduling precomputes schedule artifacts once per loop and
//! specializes them per configuration.
//!
//! The structure is SCC-shaped (paper §4.1: recurrences are the SCCs):
//!
//! * **Inside each non-trivial SCC** a Floyd–Warshall pass runs over the
//!   frontier semiring (concatenate = pointwise sum, merge = union +
//!   dominance pruning). SCCs are tiny in practice, so the cubic factor
//!   applies to `s³`, not `n³`.
//! * **Across SCCs** the condensation is a DAG, so a per-source
//!   topological dynamic program extends frontiers along cross-component
//!   edges in O(n·e·k̄).
//!
//! **Exactness.** Frontier entries are genuine walk weights and the set
//! retained for a pair dominates every simple path between the pair. At
//! any `II ≥ RecMII` (of the schedulable subgraph) cycles weigh `≤ 0`,
//! so the best walk equals the best simple path and the envelope equals
//! the converged Floyd–Warshall value for **every** pair — including the
//! diagonal, where the critical recurrence reaches exactly 0. Below
//! RecMII positive cycles exist, single-pass Floyd–Warshall is not even
//! internally converged, and [`crate::MinDist::compute`] falls back to
//! the naive kernel (the pipeline never schedules below RecMII, so the
//! fallback only serves direct API callers).
//!
//! **Pruning rule.** For one pair, a line `(L, D)` evaluates to
//! `L − II·D`. Sorted by `D` ascending, a steeper line (larger `D`) can
//! only beat flatter ones *below* some II; therefore any line that is
//! already ≤ the running maximum at the smallest II we will ever
//! evaluate (`prune_ii`) is dominated for all `II ≥ prune_ii` and is
//! dropped. This keeps frontiers to a handful of entries — in particular
//! cycle-padded walks die immediately because padding adds a cycle worth
//! `≤ 0` at `prune_ii`.
//!
//! Nothing here is metered: the paper's VM runs Floyd–Warshall per
//! translation, and [`crate::MinDist::compute`] keeps charging exactly
//! that (`3n³ + 1` to `Phase::Priority`). This module only changes host
//! time.

use std::cell::RefCell;
use std::sync::Arc;
use veal_accel::LatencyModel;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// One path/walk summary: `(Σ latency, Σ distance)`; evaluates to
/// `L − II·D`.
type Line = (i64, i64);

const NO_OP: u32 = u32::MAX;

/// The II-parametric all-pairs longest-path structure of one graph
/// (schedulable ops only), as Pareto frontiers in CSR layout.
#[derive(Debug, Clone)]
pub struct MinDistParam {
    ops: Vec<OpId>,
    n: usize,
    /// RecMII of the schedulable subgraph: the envelope is exact for any
    /// `II ≥ rec_mii`. `u32::MAX` marks an ill-formed body (a positive
    /// zero-distance cycle) for which no II is safe.
    rec_mii: u32,
    /// `n·n + 1` CSR offsets into `pairs`; cell `(i, j)` is row-major.
    offsets: Vec<u32>,
    pairs: Vec<Line>,
    /// Memoized longest-path profiles over distance-0 edges (the Swing
    /// ordering's `depths`/`heights` and the list scheduler's `depths`):
    /// they depend only on `(dfg, lat)` — never on the II — so one
    /// computation serves every candidate II, sweep point, and retry.
    /// `None` for ill-formed bodies (cyclic distance-0 subgraph).
    profiles: Option<Profiles>,
}

/// Cached distance-0 longest-path profiles (see [`MinDistParam::profiles`]).
#[derive(Debug, Clone)]
struct Profiles {
    depths: Vec<u32>,
    heights: Vec<u32>,
    /// Live-node count of the topological order — the abstract charge one
    /// `depths`/`heights` pass makes (one unit per visited node).
    topo_len: usize,
}

/// Dominance pruning at `prune_ii` (see module docs): dedupe by `D`
/// keeping the largest `L`, then keep a line only when it strictly beats
/// every flatter line at `prune_ii`.
fn prune(front: &mut Vec<Line>, prune_ii: i64) {
    if front.len() <= 1 {
        return;
    }
    front.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
    front.dedup_by_key(|e| e.1);
    let mut kept = 0;
    let mut best = i64::MIN;
    for i in 0..front.len() {
        let (l, d) = front[i];
        let v = l - prune_ii * d;
        if v > best {
            front[kept] = (l, d);
            kept += 1;
            best = v;
        }
    }
    front.truncate(kept);
}

/// Appends every concatenation `a ⊗ b` (pointwise sums) to `dst`.
fn cross_into(dst: &mut Vec<Line>, a: &[Line], b: &[Line]) {
    for &(la, da) in a {
        for &(lb, db) in b {
            dst.push((la + lb, da + db));
        }
    }
}

impl MinDistParam {
    /// Builds the parametric structure for `dfg` under `lat`. Prefer
    /// [`cached`], which amortizes this across candidate IIs, sweep
    /// points, and scheduler retries.
    #[must_use]
    pub fn compute(dfg: &Dfg, lat: &LatencyModel) -> Self {
        let ops: Vec<OpId> = dfg.schedulable_ops().collect();
        let n = ops.len();
        let mut op_index = vec![NO_OP; dfg.len()];
        for (i, &o) in ops.iter().enumerate() {
            op_index[o.index()] = i as u32;
        }
        let latency =
            |i: usize| i64::from(dfg.node(ops[i]).opcode().map_or(0, |op| lat.latency(op)));

        // Components restricted to schedulable members, in the cached
        // condensation's reverse topological order. Paths between
        // schedulable ops only ever traverse schedulable ops (exactly the
        // node set the naive kernel walks), so the restriction is lossless.
        let cond = dfg.condensation();
        let comps: Vec<Vec<u32>> = cond
            .comps()
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&m| op_index[m.index()])
                    .filter(|&i| i != NO_OP)
                    .collect()
            })
            .collect();
        let mut comp_of_op = vec![0u32; n];
        for (ci, comp) in comps.iter().enumerate() {
            for &m in comp {
                comp_of_op[m as usize] = ci as u32;
            }
        }

        // Within-component all-pairs frontiers: Floyd–Warshall over the
        // frontier semiring, pruned conservatively at II = 1 (valid for
        // every II ≥ 1) until the real RecMII is known.
        let mut within: Vec<Vec<Vec<Line>>> = Vec::with_capacity(comps.len());
        for comp in &comps {
            let s = comp.len();
            let mut f: Vec<Vec<Line>> = vec![Vec::new(); s * s];
            for (li, &gi) in comp.iter().enumerate() {
                let l = latency(gi as usize);
                for e in dfg.succ_edges(ops[gi as usize]) {
                    let j = op_index[e.dst.index()];
                    if j == NO_OP
                        || comp_of_op[j as usize] as usize != comp_of_op[gi as usize] as usize
                    {
                        continue;
                    }
                    let lj = comp.iter().position(|&m| m == j).expect("member");
                    f[li * s + lj].push((l, i64::from(e.distance)));
                }
            }
            for cell in &mut f {
                prune(cell, 1);
            }
            for k in 0..s {
                // Snapshot row/column k (textbook FW uses the pre-k values).
                let rowk: Vec<Vec<Line>> = (0..s).map(|j| f[k * s + j].clone()).collect();
                let colk: Vec<Vec<Line>> = (0..s).map(|i| f[i * s + k].clone()).collect();
                for i in 0..s {
                    if colk[i].is_empty() {
                        continue;
                    }
                    for j in 0..s {
                        if rowk[j].is_empty() {
                            continue;
                        }
                        let cell = &mut f[i * s + j];
                        cross_into(cell, &colk[i], &rowk[j]);
                        prune(cell, 1);
                    }
                }
            }
            within.push(f);
        }

        // RecMII from the frontier diagonals: a cycle entry `(L, D)` stops
        // being positive at II = ⌈L/D⌉; the component's RecMII is the max
        // over its retained diagonal entries (pruning at 1 preserves the
        // envelope for all II ≥ 1, hence this maximum).
        let mut rec_mii = 1u32;
        let mut well_formed = true;
        for (comp, f) in comps.iter().zip(&within) {
            let s = comp.len();
            for i in 0..s {
                for &(l, d) in &f[i * s + i] {
                    if l <= 0 {
                        continue;
                    }
                    if d == 0 {
                        // Positive zero-distance cycle: ill-formed body, no
                        // II makes the naive kernel converge.
                        well_formed = false;
                    } else {
                        // Ceiling division; `l > 0` and `d > 0` here.
                        rec_mii = rec_mii.max(((l + d - 1) / d) as u32);
                    }
                }
            }
        }
        if !well_formed {
            return MinDistParam {
                ops,
                n,
                rec_mii: u32::MAX,
                offsets: vec![0; n * n + 1],
                pairs: Vec::new(),
                profiles: None,
            };
        }
        // Re-prune at the real floor: every evaluation happens at
        // II ≥ rec_mii, so tighter dominance applies.
        let at = i64::from(rec_mii);
        for f in &mut within {
            for cell in f.iter_mut() {
                prune(cell, at);
            }
        }

        // Cross-component DP, one source at a time. `comps` is in reverse
        // topological order, so walking indices downward follows the edges.
        let mut offsets: Vec<u32> = Vec::with_capacity(n * n + 1);
        offsets.push(0);
        let mut pairs: Vec<Line> = Vec::new();
        let mut cur: Vec<Vec<Line>> = vec![Vec::new(); n];
        for u in 0..n {
            for c in &mut cur {
                c.clear();
            }
            let pu = comp_of_op[u] as usize;
            for ci in (0..=pu).rev() {
                let comp = &comps[ci];
                let s = comp.len();
                if s == 0 {
                    continue;
                }
                if ci == pu {
                    // Seed: walks from u that stay inside its component.
                    let ul = comp.iter().position(|&m| m as usize == u).expect("source");
                    for j in 0..s {
                        let cell = &within[ci][ul * s + j];
                        if !cell.is_empty() {
                            let t = &mut cur[comp[j] as usize];
                            t.extend_from_slice(cell);
                            prune(t, at);
                        }
                    }
                } else if comp.iter().any(|&m| !cur[m as usize].is_empty()) {
                    // Close arrivals over the component: a walk may enter at
                    // x, wander within, and leave at y.
                    let arrivals: Vec<Vec<Line>> =
                        comp.iter().map(|&m| cur[m as usize].clone()).collect();
                    for (xl, ax) in arrivals.iter().enumerate() {
                        if ax.is_empty() {
                            continue;
                        }
                        for j in 0..s {
                            let cell = &within[ci][xl * s + j];
                            if cell.is_empty() {
                                continue;
                            }
                            let t = &mut cur[comp[j] as usize];
                            cross_into(t, ax, cell);
                            prune(t, at);
                        }
                    }
                }
                // Relax cross-component edges out of this component.
                for &xm in comp {
                    let x = xm as usize;
                    let starts_here = x == u;
                    if cur[x].is_empty() && !starts_here {
                        continue;
                    }
                    let lx = latency(x);
                    for e in dfg.succ_edges(ops[x]) {
                        let j = op_index[e.dst.index()];
                        if j == NO_OP || comp_of_op[j as usize] as usize == ci {
                            continue;
                        }
                        let d = i64::from(e.distance);
                        let mut add: Vec<Line> =
                            cur[x].iter().map(|&(l, dd)| (l + lx, dd + d)).collect();
                        if starts_here {
                            add.push((lx, d));
                        }
                        let t = &mut cur[j as usize];
                        t.extend_from_slice(&add);
                        prune(t, at);
                    }
                }
            }
            for c in &cur {
                pairs.extend_from_slice(c);
                offsets.push(pairs.len() as u32);
            }
        }

        let profiles = cond.topo0().map(|topo| {
            let mut scratch = CostMeter::new();
            Profiles {
                depths: crate::priority::depths(dfg, lat, &mut scratch, Phase::Priority),
                heights: crate::priority::heights(dfg, lat, &mut scratch, Phase::Priority),
                topo_len: topo.len(),
            }
        });

        MinDistParam {
            ops,
            n,
            rec_mii,
            offsets,
            pairs,
            profiles,
        }
    }

    /// The memoized `(depths, heights, topo_len)` profiles, or `None` for
    /// ill-formed bodies. `topo_len` is the abstract charge of one
    /// recomputation pass (callers charging the cost model must charge it
    /// once per pass they skip).
    #[must_use]
    pub fn profiles(&self) -> Option<(&[u32], &[u32], usize)> {
        self.profiles
            .as_ref()
            .map(|p| (&p.depths[..], &p.heights[..], p.topo_len))
    }

    /// The schedulable ops covered, sorted by id (same list the dense
    /// [`crate::MinDist`] carries).
    #[must_use]
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// RecMII of the schedulable subgraph — the smallest II at which the
    /// envelope is exact (and, equivalently, at which no recurrence cycle
    /// is positive). Matches [`crate::rec_mii`] on well-formed bodies,
    /// whose recurrences never pass through live-in/constant pseudo-nodes.
    #[must_use]
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// Whether the envelope may be evaluated at `ii`.
    #[must_use]
    pub fn valid_at(&self, ii: u32) -> bool {
        self.rec_mii != u32::MAX && ii >= self.rec_mii
    }

    /// Average frontier entries per reachable pair (diagnostic; the `k`
    /// in the O(n²·k) evaluation bound).
    #[must_use]
    pub fn mean_frontier_len(&self) -> f64 {
        let reachable = self
            .offsets
            .windows(2)
            .filter(|w| w[1] > w[0])
            .count()
            .max(1);
        self.pairs.len() as f64 / reachable as f64
    }

    /// Evaluates the envelope for a single `(u, v)` pair at `ii`: the
    /// MinDist entry, or `None` when `v` is unreachable from `u` (or
    /// either id is not a schedulable op). O(log n + k) — the Swing
    /// ordering uses this to read just the matrix diagonal (per-SCC
    /// criticality) without materializing all n² cells.
    #[must_use]
    pub fn eval_pair(&self, u: OpId, v: OpId, ii: u32) -> Option<i64> {
        let iu = self.ops.binary_search(&u).ok()?;
        let iv = self.ops.binary_search(&v).ok()?;
        let cell = iu * self.n + iv;
        let (a, b) = (self.offsets[cell] as usize, self.offsets[cell + 1] as usize);
        if a == b {
            return None;
        }
        let ii = i64::from(ii);
        self.pairs[a..b].iter().map(|&(l, d)| l - ii * d).max()
    }

    /// Evaluates the envelope at `ii` into a row-major `n·n` matrix whose
    /// cells are pre-filled with the caller's "no path" sentinel
    /// (unreachable pairs are left untouched).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `n·n` cells.
    pub fn eval_into(&self, ii: u32, out: &mut [i64]) {
        assert_eq!(out.len(), self.n * self.n, "matrix size mismatch");
        let ii = i64::from(ii);
        for (cell, w) in out.iter_mut().zip(self.offsets.windows(2)) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if a == b {
                continue;
            }
            let mut best = i64::MIN;
            for &(l, d) in &self.pairs[a..b] {
                let v = l - ii * d;
                if v > best {
                    best = v;
                }
            }
            *cell = best;
        }
    }
}

const PARAM_CACHE_CAP: usize = 64;

/// `(hits, misses)` of the frontier-structure cache, summed across all
/// threads. Handles cached so the hot path skips the registry lock.
fn param_cache_counters() -> (&'static veal_obs::Counter, &'static veal_obs::Counter) {
    static C: std::sync::OnceLock<(&'static veal_obs::Counter, &'static veal_obs::Counter)> =
        std::sync::OnceLock::new();
    *C.get_or_init(|| {
        (
            veal_obs::counter("sched.param_cache.hits"),
            veal_obs::counter("sched.param_cache.misses"),
        )
    })
}

thread_local! {
    // Small move-to-front LRU keyed on (graph content hash, latency-model
    // fingerprint) — the same identity the sweep engine's translation memo
    // trusts. Thread-local so worker threads never contend.
    static PARAM_CACHE: RefCell<Vec<(u64, u64, Arc<MinDistParam>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The cached parametric structure for `(dfg, lat)`, built on first use.
/// Per-thread LRU of [`PARAM_CACHE_CAP`] entries; repeated scheduling of
/// the same loop under the same latency model (II escalation, register
/// retries, sweep points) reuses one structure.
#[must_use]
pub fn cached(dfg: &Dfg, lat: &LatencyModel) -> Arc<MinDistParam> {
    let key = (dfg.content_hash(), lat.fingerprint());
    PARAM_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(pos) = cache.iter().position(|e| (e.0, e.1) == key) {
            let entry = cache.remove(pos);
            let param = Arc::clone(&entry.2);
            cache.insert(0, entry);
            param_cache_counters().0.inc();
            return param;
        }
        param_cache_counters().1.inc();
        let param = Arc::new(MinDistParam::compute(dfg, lat));
        cache.insert(0, (key.0, key.1, Arc::clone(&param)));
        cache.truncate(PARAM_CACHE_CAP);
        param
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    #[test]
    fn prune_keeps_upper_envelope() {
        // (10, 0) flat, (14, 1) wins below II 4, (12, 1) dominated by it,
        // (20, 10) already loses at II 2.
        let mut f = vec![(10, 0), (12, 1), (14, 1), (20, 10)];
        prune(&mut f, 2);
        assert_eq!(f, vec![(10, 0), (14, 1)]);
        // At II 2 the steeper line wins; by II 4 the flat one has caught up.
        let best = |ii: i64| f.iter().map(|&(l, d)| l - ii * d).max().unwrap();
        assert_eq!(best(2), 12);
        assert_eq!(best(4), 10);
    }

    #[test]
    fn chain_frontier_matches_direct_values() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]); // 3 cycles
        let y = b.op(Opcode::Add, &[x]);
        let z = b.op(Opcode::Add, &[y]);
        let dfg = b.finish();
        let p = MinDistParam::compute(&dfg, &LatencyModel::default());
        assert_eq!(p.rec_mii(), 1);
        let n = p.ops().len();
        let mut out = vec![i64::MIN; n * n];
        p.eval_into(3, &mut out);
        let idx = |a: OpId, b: OpId| {
            p.ops().binary_search(&a).unwrap() * n + p.ops().binary_search(&b).unwrap()
        };
        assert_eq!(out[idx(x, y)], 3);
        assert_eq!(out[idx(x, z)], 4);
        assert_eq!(out[idx(z, x)], i64::MIN);
    }

    #[test]
    fn recurrence_rec_mii_and_zero_diagonal() {
        // mul(3) -> or(1) -> back at distance 1: RecMII 4, and at II 4 the
        // critical cycle weighs exactly 0.
        let mut b = DfgBuilder::new();
        let m = b.op(Opcode::Mul, &[]);
        let o = b.op(Opcode::Or, &[m]);
        b.loop_carried(o, m, 1);
        let dfg = b.finish();
        let p = MinDistParam::compute(&dfg, &LatencyModel::default());
        assert_eq!(p.rec_mii(), 4);
        assert!(p.valid_at(4) && !p.valid_at(3));
        let mut out = vec![i64::MIN; 4];
        p.eval_into(4, &mut out);
        let i = p.ops().binary_search(&m).unwrap();
        assert_eq!(out[i * 2 + i], 0);
    }

    #[test]
    fn ill_formed_distance0_cycle_is_marked_invalid() {
        use veal_ir::dfg::{EdgeKind, NodeKind};
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        let p = MinDistParam::compute(&dfg, &LatencyModel::default());
        assert_eq!(p.rec_mii(), u32::MAX);
        assert!(!p.valid_at(u32::MAX - 1));
    }

    #[test]
    fn cached_returns_same_structure_for_same_key() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let _ = b.op(Opcode::Add, &[x]);
        let dfg = b.finish();
        let lat = LatencyModel::default();
        let a = cached(&dfg, &lat);
        let b2 = cached(&dfg, &lat);
        assert!(Arc::ptr_eq(&a, &b2));
    }
}
