//! The retained pre-optimization priority and scheduling kernels.
//!
//! Before the data-oriented sweep these were *the* implementations:
//! [`swing_order`] runs a full naive Θ(n³) Floyd–Warshall MinDist per call
//! and keeps its pending/placed bookkeeping in hash sets;
//! [`list_schedule`] keeps every per-op table (times, units, worklist) in
//! hash maps keyed by [`OpId`]. They are preserved verbatim — same
//! algorithm, same iteration order, same [`CostMeter`] charges — as the
//! "old" arm of the translation benchmark and as the implementations the
//! public [`crate::swing_order`] / [`crate::list_schedule`] dispatch to
//! when [`veal_ir::data_oriented_enabled`] is off, so an end-to-end
//! translate under the old arm runs the genuine old pipeline.
//!
//! The abstract cost model describes the *algorithmic* work of the paper's
//! translator, not the host-side data structures, so both arms charge the
//! meter at the same sites and the phase breakdowns are bit-identical
//! (asserted by `bench_translate` and the cross-arm tests).

use crate::mindist::MinDist;
use crate::mrt::ModuloReservationTable;
use crate::priority::{depths, heights};
use crate::scheduler::{ModuloSchedule, ScheduleError, UNSCHEDULED};
use std::collections::{HashMap, HashSet, VecDeque};
use veal_accel::{AcceleratorConfig, LatencyModel, ResourceKind};
use veal_ir::streams::StreamSummary;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// The old per-SCC criticality: the SCC's own RecMII recomputed from
/// MinDist self distances.
fn scc_criticality(md: &MinDist, scc: &[OpId]) -> i64 {
    scc.iter()
        .filter_map(|&v| md.get(v, v))
        .max()
        .unwrap_or(i64::MIN)
}

/// The old Swing ordering: a full naive Floyd–Warshall per call, hash
/// sets for the pending/placed bookkeeping.
#[must_use]
pub fn swing_order(dfg: &Dfg, lat: &LatencyModel, ii: u32, meter: &mut CostMeter) -> Vec<OpId> {
    let md = MinDist::compute_naive(dfg, lat, ii.max(1), meter);
    let d = depths(dfg, lat, meter, Phase::Priority);
    let h = heights(dfg, lat, meter, Phase::Priority);

    let sccs = dfg.sccs();
    meter.charge(Phase::Priority, (dfg.len() as u64) * 2);
    let mut rec_sets: Vec<&Vec<OpId>> = sccs
        .iter()
        .filter(|scc| {
            scc.iter().all(|&v| dfg.node(v).is_schedulable())
                && (scc.len() > 1 || dfg.succ_edges(scc[0]).any(|e| e.dst == scc[0]))
        })
        .collect();
    rec_sets.sort_by_key(|scc| {
        (
            std::cmp::Reverse(scc_criticality(&md, scc)),
            std::cmp::Reverse(scc.len()),
            scc[0],
        )
    });

    let mut order: Vec<OpId> = Vec::new();
    let mut placed: HashSet<OpId> = HashSet::new();

    let mut emit_set = |set: Vec<OpId>, order: &mut Vec<OpId>, placed: &mut HashSet<OpId>| {
        let pending: Vec<OpId> = set
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .collect();
        if pending.is_empty() {
            return;
        }
        let mut remaining: HashSet<OpId> = pending.iter().copied().collect();
        while !remaining.is_empty() {
            meter.charge(Phase::Priority, remaining.len() as u64);
            let mut candidates: Vec<OpId> = remaining
                .iter()
                .copied()
                .filter(|&v| {
                    dfg.pred_edges(v).any(|e| placed.contains(&e.src))
                        || dfg.succ_edges(v).any(|e| placed.contains(&e.dst))
                })
                .collect();
            if candidates.is_empty() {
                candidates = remaining.iter().copied().collect();
            }
            candidates.sort_by_key(|&v| {
                (
                    std::cmp::Reverse(d[v.index()] + h[v.index()]),
                    d[v.index()],
                    v,
                )
            });
            let chosen = candidates[0];
            remaining.remove(&chosen);
            placed.insert(chosen);
            order.push(chosen);
        }
    };

    for scc in rec_sets {
        emit_set(scc.clone(), &mut order, &mut placed);
    }
    let rest: Vec<OpId> = dfg
        .schedulable_ops()
        .filter(|v| !placed.contains(v))
        .collect();
    emit_set(rest, &mut order, &mut placed);
    order
}

/// The old scheduler's per-attempt state: hash maps keyed by op id.
struct RefScratch {
    mrt: ModuloReservationTable,
    times: HashMap<OpId, i64>,
    units: HashMap<OpId, (ResourceKind, usize)>,
    queue: VecDeque<OpId>,
}

impl RefScratch {
    fn new(ii: u32, config: &AcceleratorConfig, ops: usize) -> Self {
        RefScratch {
            mrt: ModuloReservationTable::with_unit_cap(ii, config, ops.max(1)),
            times: HashMap::with_capacity(ops),
            units: HashMap::with_capacity(ops),
            queue: VecDeque::with_capacity(ops),
        }
    }

    fn reset(&mut self, ii: u32, config: &AcceleratorConfig, ops: usize) {
        self.mrt.reset(ii, config, ops.max(1));
        self.times.clear();
        self.units.clear();
        self.queue.clear();
    }
}

/// The old modulo list scheduler: identical window/ejection logic to the
/// current one, but all per-op state lives in hash maps. The finished
/// schedule is emitted as a [`ModuloSchedule`] (same times, same units)
/// so callers are representation-agnostic.
///
/// # Errors
///
/// [`ScheduleError::NoSchedule`] if no II ≤ `config.max_ii` works.
pub fn list_schedule(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    order: &[OpId],
    mii: u32,
    streams: StreamSummary,
    meter: &mut CostMeter,
) -> Result<ModuloSchedule, ScheduleError> {
    let lat = &config.latencies;
    let d = depths(dfg, lat, meter, Phase::Scheduling);
    let start_ii = mii.max(config.min_ii_for_streams(streams)).max(1);
    let last_ii = config.max_ii.min(start_ii.saturating_add(63));
    let mut scratch = RefScratch::new(start_ii, config, order.len());
    for ii in start_ii..=last_ii {
        meter.charge(Phase::Scheduling, 4);
        if let Some(schedule) = try_schedule(dfg, config, order, ii, &d, &mut scratch, meter) {
            return Ok(schedule);
        }
    }
    Err(ScheduleError::NoSchedule {
        tried_up_to: last_ii,
    })
}

fn try_schedule(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    order: &[OpId],
    ii: u32,
    depth: &[u32],
    scratch: &mut RefScratch,
    meter: &mut CostMeter,
) -> Option<ModuloSchedule> {
    let lat = &config.latencies;
    scratch.reset(ii, config, order.len());
    let RefScratch {
        mrt,
        times,
        units,
        queue,
    } = scratch;

    queue.extend(order.iter().copied());
    let mut ejections = 32 * order.len() as u64 + 64;

    while let Some(v) = queue.pop_front() {
        let op = dfg.node(v).opcode().expect("order contains only ops");
        let span = if op.pipelined() { 1 } else { lat.latency(op) };

        let mut early: Option<i64> = None;
        let mut late: Option<i64> = None;
        for e in dfg.pred_edges(v) {
            meter.charge(Phase::Scheduling, 1);
            if e.src == v {
                continue;
            }
            if let Some(&tp) = times.get(&e.src) {
                let lp = i64::from(dfg.node(e.src).opcode().map_or(0, |o| lat.latency(o)));
                let bound = tp + lp - i64::from(ii) * i64::from(e.distance);
                early = Some(early.map_or(bound, |b: i64| b.max(bound)));
            }
        }
        for e in dfg.succ_edges(v) {
            meter.charge(Phase::Scheduling, 1);
            if e.dst == v {
                continue;
            }
            if let Some(&ts) = times.get(&e.dst) {
                let lv = i64::from(lat.latency(op));
                let bound = ts - lv + i64::from(ii) * i64::from(e.distance);
                late = Some(late.map_or(bound, |b: i64| b.min(bound)));
            }
        }

        let slot = match (early, late) {
            (Some(e0), Some(l0)) if e0 > l0 => None,
            (Some(e0), Some(l0)) => scan_up(
                mrt,
                resource(op),
                e0,
                l0.min(e0 + i64::from(ii) - 1),
                span,
                meter,
            ),
            (Some(e0), None) => scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter),
            (None, Some(l0)) => {
                scan_down(mrt, resource(op), l0, l0 - i64::from(ii) + 1, span, meter)
            }
            (None, None) => {
                let e0 = i64::from(depth[v.index()]);
                scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter)
            }
        };
        let slot = match slot {
            Some(s) => s,
            None => {
                if late.is_none() || ejections == 0 {
                    return None;
                }
                ejections -= 1;
                meter.charge(Phase::Scheduling, 4);
                let victims: Vec<OpId> = dfg
                    .succ_edges(v)
                    .filter(|e| e.dst != v && times.contains_key(&e.dst))
                    .map(|e| e.dst)
                    .collect();
                if victims.is_empty() {
                    return None;
                }
                for w in victims {
                    if let Some(tw) = times.remove(&w) {
                        if let Some((kind, u)) = units.remove(&w) {
                            let wop = dfg.node(w).opcode().expect("scheduled op");
                            let wspan = if wop.pipelined() { 1 } else { lat.latency(wop) };
                            mrt.release(kind, u, tw, wspan);
                        }
                        queue.push_back(w);
                    }
                }
                queue.push_front(v);
                continue;
            }
        };
        let (t, unit_choice) = slot;
        if let Some((kind, u)) = unit_choice {
            mrt.reserve(kind, u, t, span);
            units.insert(v, (kind, u));
        }
        times.insert(v, t);
    }

    let min_t = times.values().copied().min().unwrap_or(0);
    let shift = min_t.rem_euclid(i64::from(ii)) - min_t;
    for t in times.values_mut() {
        *t += shift;
    }
    for &v in order {
        units.entry(v).or_insert((ResourceKind::Int, usize::MAX));
    }

    // Emit in the dense representation: same times, same units, so the
    // output is indistinguishable from the current scheduler's.
    let n = dfg.len();
    let mut tvec = vec![UNSCHEDULED; n];
    let mut uvec = vec![(ResourceKind::Int, usize::MAX); n];
    for (&op, &t) in times.iter() {
        tvec[op.index()] = t;
    }
    for (&op, &u) in units.iter() {
        uvec[op.index()] = u;
    }
    Some(ModuloSchedule::from_parts(ii, tvec, uvec))
}

fn resource(op: veal_ir::Opcode) -> ResourceKind {
    ResourceKind::for_opcode(op).unwrap_or(ResourceKind::Int)
}

type Slot = (i64, Option<(ResourceKind, usize)>);

fn scan_up(
    mrt: &ModuloReservationTable,
    kind: ResourceKind,
    from: i64,
    to: i64,
    span: u32,
    meter: &mut CostMeter,
) -> Option<Slot> {
    let mut t = from;
    while t <= to {
        meter.charge(Phase::Scheduling, 1);
        if let Some(u) = mrt.find_unit(kind, t, span) {
            return Some((t, Some((kind, u))));
        }
        t += 1;
    }
    None
}

fn scan_down(
    mrt: &ModuloReservationTable,
    kind: ResourceKind,
    from: i64,
    to: i64,
    span: u32,
    meter: &mut CostMeter,
) -> Option<Slot> {
    let mut t = from;
    while t >= to {
        meter.charge(Phase::Scheduling, 1);
        if let Some(u) = mrt.find_unit(kind, t, span) {
            return Some((t, Some((kind, u))));
        }
        t -= 1;
    }
    None
}
