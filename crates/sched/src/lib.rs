//! Modulo scheduling for VEAL loop accelerators.
//!
//! Implements the translation pipeline of paper §4.1 from "Minimum II
//! Calculation" onward:
//!
//! * [`mii`] — ResMII (resource-constrained) and RecMII
//!   (recurrence-constrained) minimum initiation intervals;
//! * [`mindist`] — the all-pairs longest-path matrix used by the
//!   Swing ordering (the O(n³) pass that makes priority computation the
//!   dominant translation cost, 69% in the paper's Figure 8);
//! * [`priority`] — Swing modulo scheduling order (Llosa et al.) and the
//!   cheaper height-based order (Rau), plus orders injected from static
//!   binary hints;
//! * [`mrt`] / [`scheduler`] — the modulo reservation table and the
//!   single-pass list scheduler;
//! * [`regalloc`] — MaxLive register-pressure analysis and assignment;
//! * [`verify`] — an independent checker for schedule validity.
//!
//! The top-level entry point is [`modulo_schedule`].
//!
//! # Example
//!
//! ```
//! use veal_accel::AcceleratorConfig;
//! use veal_ir::{CostMeter, DfgBuilder, Opcode};
//! use veal_sched::{modulo_schedule, ScheduleOptions};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.load_stream(0);
//! let y = b.load_stream(1);
//! let p = b.op(Opcode::Mul, &[x, y]);
//! let s = b.op(Opcode::Add, &[p]);
//! b.loop_carried(s, s, 1);
//! b.mark_live_out(s);
//! let dfg = b.finish();
//!
//! let mut meter = CostMeter::new();
//! let la = AcceleratorConfig::paper_design();
//! let sched = modulo_schedule(&dfg, &la, &ScheduleOptions::default(), &mut meter)
//!     .expect("schedulable");
//! assert!(sched.schedule.ii >= 1);
//! ```

pub mod display;
pub mod mii;
pub mod mindist;
pub mod mrt;
pub mod param;
pub mod priority;
pub mod reference;
pub mod regalloc;
pub mod scheduler;
pub mod symbolic;
pub mod verify;

pub use display::render_mrt;
pub use mii::{rec_mii, rec_mii_from_frontier, res_mii};
pub use mindist::{parametric_enabled, set_parametric_enabled, MinDist};
pub use mrt::ModuloReservationTable;
pub use param::MinDistParam;
pub use priority::{height_order, swing_order, PriorityKind};
pub use regalloc::{assign_registers, RegisterAssignment, RegisterPressure};
pub use scheduler::{list_schedule, ModuloSchedule, ScheduleError};
pub use symbolic::{concretize, SymbolicSchedule};
pub use verify::{verify_schedule, ScheduleDefect};

use veal_accel::AcceleratorConfig;
use veal_ir::streams::StreamSummary;
use veal_ir::{CostMeter, Dfg, OpId};

/// Knobs for the scheduling pipeline.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOptions {
    /// Which priority function orders the ops.
    pub priority: PriorityKind,
    /// An externally supplied order (decoded from static binary hints);
    /// overrides `priority` when present.
    pub static_order: Option<Vec<OpId>>,
    /// Stream counts, when the caller has already separated streams (used
    /// for the address-generator multiplexing bound on II). Defaults to
    /// counting the graph's annotated streams.
    pub streams: Option<StreamSummary>,
}

/// A fully scheduled and register-allocated loop.
#[derive(Debug, Clone)]
pub struct ScheduledLoop {
    /// The modulo schedule (II, per-op times, stage count).
    pub schedule: ModuloSchedule,
    /// The register assignment.
    pub registers: RegisterAssignment,
    /// Minimum II that was attempted (max of ResMII and RecMII).
    pub mii: u32,
}

impl ScheduledLoop {
    /// Kernel cycles for `trips` iterations of this loop:
    /// `(SC + trips − 1) · II` (ramp-up through the prologue, one iteration
    /// completing per II in the kernel, drain through the epilogue).
    #[must_use]
    pub fn cycles(&self, trips: u64) -> u64 {
        (u64::from(self.schedule.stage_count()) + trips.saturating_sub(1))
            * u64::from(self.schedule.ii)
    }
}

fn stream_summary_of(dfg: &Dfg) -> StreamSummary {
    use veal_ir::Opcode;
    let mut loads = std::collections::HashSet::new();
    let mut stores = std::collections::HashSet::new();
    for id in dfg.schedulable_ops() {
        if let (Some(op), Some(s)) = (dfg.node(id).opcode(), dfg.node(id).stream) {
            match op {
                Opcode::Load => {
                    loads.insert(s);
                }
                Opcode::Store => {
                    stores.insert(s);
                }
                _ => {}
            }
        }
    }
    StreamSummary {
        loads: loads.len(),
        stores: stores.len(),
    }
}

/// Runs the full §4.1 pipeline on a *separated* loop body (compute ops and
/// stream-annotated memory accesses; CCA subgraphs already collapsed if a
/// CCA is present): MII calculation, priority, scheduling, register
/// assignment.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the loop cannot be mapped (too many
/// streams, no II ≤ `max_ii` admits a schedule, or register pressure
/// exceeds the file) — such loops execute on the baseline processor.
pub fn modulo_schedule(
    dfg: &Dfg,
    config: &AcceleratorConfig,
    options: &ScheduleOptions,
    meter: &mut CostMeter,
) -> Result<ScheduledLoop, ScheduleError> {
    let summary = options.streams.unwrap_or_else(|| stream_summary_of(dfg));
    config
        .check_streams(summary)
        .map_err(ScheduleError::Capability)?;

    let res = res_mii(dfg, config, summary, meter);
    let rec = rec_mii(dfg, &config.latencies, meter);
    let mii = res.max(rec);
    if mii > config.max_ii {
        return Err(ScheduleError::MiiExceedsControlStore {
            mii,
            max_ii: config.max_ii,
        });
    }

    let order = match &options.static_order {
        Some(order) => {
            // Decoding a static order costs one pass over the loop
            // (paper §4.2, Figure 9(c)).
            meter.charge(veal_ir::Phase::HintDecode, dfg.len() as u64);
            order.clone()
        }
        None => match options.priority {
            PriorityKind::Swing => swing_order(dfg, &config.latencies, mii, meter),
            PriorityKind::Height => height_order(dfg, &config.latencies, meter),
        },
    };

    // Schedule, then assign registers; excessive register pressure is
    // relieved by retrying at a higher II (longer kernels shorten the
    // *relative* lifetimes, reducing the self-overlap that costs extra
    // registers), up to the control-store depth.
    let mut ii_floor = mii;
    let mut last_pressure = None;
    for _ in 0..8 {
        let schedule = list_schedule(dfg, config, &order, ii_floor, summary, meter)?;
        let achieved = schedule.ii;
        match assign_registers(dfg, &schedule, config, meter) {
            Ok(registers) => {
                return Ok(ScheduledLoop {
                    schedule,
                    registers,
                    mii,
                })
            }
            Err(p) => {
                last_pressure = Some(p);
                if achieved >= config.max_ii {
                    break;
                }
                ii_floor = achieved + 1;
            }
        }
    }
    Err(ScheduleError::Registers(
        last_pressure.expect("retry loop ran at least once"),
    ))
}
