//! Symbolic schedules: the configuration-independent half of the
//! scheduling pipeline, computed once per loop family and concretized per
//! configuration.
//!
//! [`modulo_schedule`](crate::modulo_schedule) interleaves two kinds of
//! work. RecMII and the priority order depend only on `(graph, latencies,
//! II)` — for every configuration in an [`veal_accel::AcceleratorFamily`]
//! (which fixes the latency model) they come out identical, and their
//! charges are deterministic. ResMII, the list scheduler, and register
//! assignment genuinely depend on unit/register counts and must run per
//! configuration. A [`SymbolicSchedule`] caches the former — the RecMII
//! value and, per distinct MII, the priority order, each with the exact
//! [`PhaseBreakdown`] the real computation charged — so that
//! [`concretize`] replays the cached charges bit-identically and spends
//! host time only on the cheap configuration-dependent suffix (which
//! reuses the scheduler's thread-local scratch pool, so a concretization
//! is allocation-light).
//!
//! The bit-identity contract: for any `(dfg, options)` pair the symbolic
//! schedule was built against and any configuration with the family's
//! latency model, `concretize` returns the same `Result` and charges the
//! same per-phase costs as `modulo_schedule` — asserted by the property
//! corpus below and the differential arms of `bench_translate`/`bench_dse`.

use crate::mii::{rec_mii, res_mii};
use crate::priority::{height_order, swing_order, PriorityKind};
use crate::regalloc::assign_registers;
use crate::scheduler::list_schedule;
use crate::{ScheduleError, ScheduleOptions, ScheduledLoop};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use veal_accel::AcceleratorConfig;
use veal_ir::meter::ALL_PHASES;
use veal_ir::{CostMeter, Dfg, OpId, Phase, PhaseBreakdown};

/// A cached priority order plus the exact charges its real computation
/// made.
#[derive(Debug)]
struct OrderEntry {
    order: Vec<OpId>,
    charges: PhaseBreakdown,
}

/// Key of the order cache: the MII the order was computed at for the Swing
/// priority (which reads the MinDist envelope at that II), or this
/// sentinel for the II-independent height priority.
const HEIGHT_KEY: u32 = u32::MAX;

/// The family-invariant scheduling state of one loop: cached RecMII and
/// per-MII priority orders, each paired with the [`PhaseBreakdown`] the
/// underlying kernel charged, so concretizations replay costs exactly.
///
/// A `SymbolicSchedule` is valid for exactly one `(separated graph,
/// latency model)` pair — the caller (the VM's family-keyed memo entry)
/// owns that pairing. It is internally synchronized: one instance is
/// shared across serving threads via `Arc`, and racing fills of the same
/// cache slot compute identical values (first writer wins).
#[derive(Debug, Default)]
pub struct SymbolicSchedule {
    /// `(RecMII, charges)` — Bellman–Ford over the recurrence edges
    /// depends only on the graph and latencies.
    rec: OnceLock<(u32, PhaseBreakdown)>,
    /// Priority orders by MII (or [`HEIGHT_KEY`]).
    orders: Mutex<HashMap<u32, Arc<OrderEntry>>>,
}

impl SymbolicSchedule {
    /// Creates an empty symbolic schedule; caches fill on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct priority orders cached so far (telemetry).
    #[must_use]
    pub fn cached_orders(&self) -> usize {
        self.orders
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Cached RecMII: computed for real (with its exact charges recorded)
    /// on first use, replayed thereafter.
    fn rec_mii(&self, dfg: &Dfg, lat: &veal_accel::LatencyModel, meter: &mut CostMeter) -> u32 {
        let (value, charges) = self.rec.get_or_init(|| {
            let mut scratch = CostMeter::new();
            let value = rec_mii(dfg, lat, &mut scratch);
            (value, *scratch.breakdown())
        });
        replay(meter, charges);
        *value
    }

    /// Cached priority order for `key` (an MII, or [`HEIGHT_KEY`]),
    /// computing through `make` on the first request.
    fn order(
        &self,
        key: u32,
        meter: &mut CostMeter,
        make: impl FnOnce(&mut CostMeter) -> Vec<OpId>,
    ) -> Arc<OrderEntry> {
        let cached = self
            .orders
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        let entry = match cached {
            Some(e) => e,
            None => {
                // Compute outside the lock (priority is the O(n³) phase);
                // a racing thread computes the identical entry and the
                // first insert wins.
                let mut scratch = CostMeter::new();
                let order = make(&mut scratch);
                let entry = Arc::new(OrderEntry {
                    order,
                    charges: *scratch.breakdown(),
                });
                Arc::clone(
                    self.orders
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .entry(key)
                        .or_insert(entry),
                )
            }
        };
        replay(meter, &entry.charges);
        entry
    }
}

/// Charges every phase of `charges` into `meter`, reproducing the original
/// computation's metering exactly.
fn replay(meter: &mut CostMeter, charges: &PhaseBreakdown) {
    for &p in ALL_PHASES {
        let c = charges.get(p);
        if c != 0 {
            meter.charge(p, c);
        }
    }
}

/// Runs the scheduling pipeline at one concrete `config`, answering the
/// configuration-independent steps (RecMII, priority order) from `sym`'s
/// caches and running the configuration-dependent suffix (ResMII, list
/// scheduling, register assignment, II escalation) for real.
///
/// Mirrors [`modulo_schedule`](crate::modulo_schedule) step for step —
/// result and charges are bit-identical for every configuration sharing
/// the latency model `sym` was filled under.
///
/// # Errors
///
/// Exactly [`modulo_schedule`](crate::modulo_schedule)'s errors: the loop
/// cannot be mapped at this configuration.
pub fn concretize(
    sym: &SymbolicSchedule,
    dfg: &Dfg,
    config: &AcceleratorConfig,
    options: &ScheduleOptions,
    meter: &mut CostMeter,
) -> Result<ScheduledLoop, ScheduleError> {
    let summary = options
        .streams
        .unwrap_or_else(|| crate::stream_summary_of(dfg));
    config
        .check_streams(summary)
        .map_err(ScheduleError::Capability)?;

    let res = res_mii(dfg, config, summary, meter);
    let rec = sym.rec_mii(dfg, &config.latencies, meter);
    let mii = res.max(rec);
    if mii > config.max_ii {
        return Err(ScheduleError::MiiExceedsControlStore {
            mii,
            max_ii: config.max_ii,
        });
    }

    // The order: decoded hints charge per decode (as in the direct path);
    // dynamic priorities come from the per-MII cache.
    let static_entry;
    let cached_entry;
    let order: &[OpId] = match &options.static_order {
        Some(order) => {
            meter.charge(Phase::HintDecode, dfg.len() as u64);
            static_entry = order;
            static_entry
        }
        None => {
            cached_entry = match options.priority {
                PriorityKind::Swing => sym.order(mii, meter, |scratch| {
                    swing_order(dfg, &config.latencies, mii, scratch)
                }),
                PriorityKind::Height => sym.order(HEIGHT_KEY, meter, |scratch| {
                    height_order(dfg, &config.latencies, scratch)
                }),
            };
            &cached_entry.order
        }
    };

    // Configuration-dependent suffix, identical to `modulo_schedule`:
    // schedule, assign registers, relieve pressure by escalating II.
    let mut ii_floor = mii;
    let mut last_pressure = None;
    for _ in 0..8 {
        let schedule = list_schedule(dfg, config, order, ii_floor, summary, meter)?;
        let achieved = schedule.ii;
        match assign_registers(dfg, &schedule, config, meter) {
            Ok(registers) => {
                return Ok(ScheduledLoop {
                    schedule,
                    registers,
                    mii,
                })
            }
            Err(p) => {
                last_pressure = Some(p);
                if achieved >= config.max_ii {
                    break;
                }
                ii_floor = achieved + 1;
            }
        }
    }
    Err(ScheduleError::Registers(
        last_pressure.expect("retry loop ran at least once"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulo_schedule;
    use veal_ir::{DfgBuilder, Opcode};

    fn media_dfg() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.load_stream(1);
        let m = b.op(Opcode::Mul, &[x, y]);
        let a = b.op(Opcode::Add, &[m]);
        let s = b.op(Opcode::Shl, &[a, y]);
        b.loop_carried(a, a, 1);
        b.store_stream(2, s);
        b.finish()
    }

    fn configs() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::paper_design(),
            AcceleratorConfig::builder().int_units(1).build(),
            AcceleratorConfig::builder().int_units(4).max_ii(32).build(),
            AcceleratorConfig::builder().int_regs(4).fp_regs(4).build(),
        ]
    }

    fn assert_identical(
        a: &Result<ScheduledLoop, ScheduleError>,
        b: &Result<ScheduledLoop, ScheduleError>,
    ) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.mii, y.mii);
                assert_eq!(x.schedule.ii, y.schedule.ii);
                assert_eq!(x.schedule.entries(), y.schedule.entries());
                assert_eq!(x.registers.pressure, y.registers.pressure);
                assert_eq!(x.registers.assignment, y.registers.assignment);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("one arm scheduled, the other failed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn concretize_matches_modulo_schedule_across_configs() {
        let dfg = media_dfg();
        let sym = SymbolicSchedule::new();
        for config in configs() {
            let options = ScheduleOptions::default();
            let mut m_direct = CostMeter::new();
            let direct = modulo_schedule(&dfg, &config, &options, &mut m_direct);
            let mut m_sym = CostMeter::new();
            let symbolic = concretize(&sym, &dfg, &config, &options, &mut m_sym);
            assert_identical(&direct, &symbolic);
            assert_eq!(
                m_direct.breakdown(),
                m_sym.breakdown(),
                "charges diverged at {config}"
            );
        }
        // The sweep above shares one RecMII and one order per distinct MII.
        assert!(sym.cached_orders() >= 1);
    }

    #[test]
    fn height_priority_cached_independently_of_mii() {
        let dfg = media_dfg();
        let sym = SymbolicSchedule::new();
        let options = ScheduleOptions {
            priority: PriorityKind::Height,
            ..ScheduleOptions::default()
        };
        for config in configs() {
            let mut m_direct = CostMeter::new();
            let direct = modulo_schedule(&dfg, &config, &options, &mut m_direct);
            let mut m_sym = CostMeter::new();
            let symbolic = concretize(&sym, &dfg, &config, &options, &mut m_sym);
            assert_identical(&direct, &symbolic);
            assert_eq!(m_direct.breakdown(), m_sym.breakdown());
        }
        assert_eq!(sym.cached_orders(), 1, "height order is II-independent");
    }

    #[test]
    fn static_order_charges_hint_decode_like_the_direct_path() {
        let dfg = media_dfg();
        let order: Vec<OpId> = {
            let mut m = CostMeter::new();
            swing_order(&dfg, &veal_accel::LatencyModel::default(), 1, &mut m)
        };
        let options = ScheduleOptions {
            static_order: Some(order),
            ..ScheduleOptions::default()
        };
        let config = AcceleratorConfig::paper_design();
        let sym = SymbolicSchedule::new();
        let mut m_direct = CostMeter::new();
        let direct = modulo_schedule(&dfg, &config, &options, &mut m_direct);
        let mut m_sym = CostMeter::new();
        let symbolic = concretize(&sym, &dfg, &config, &options, &mut m_sym);
        assert_identical(&direct, &symbolic);
        assert_eq!(m_direct.breakdown(), m_sym.breakdown());
        assert!(m_sym.breakdown().get(Phase::HintDecode) > 0);
        assert_eq!(sym.cached_orders(), 0, "static orders bypass the cache");
    }

    #[test]
    fn capability_and_control_store_errors_replay() {
        // Too few streams → Capability; tiny control store → MII overflow.
        let dfg = media_dfg();
        let sym = SymbolicSchedule::new();
        for config in [
            AcceleratorConfig::builder().load_streams(1).build(),
            AcceleratorConfig::builder()
                .max_ii(1)
                .load_addr_gens(1)
                .store_addr_gens(1)
                .build(),
        ] {
            let options = ScheduleOptions::default();
            let mut m_direct = CostMeter::new();
            let direct = modulo_schedule(&dfg, &config, &options, &mut m_direct);
            assert!(direct.is_err());
            let mut m_sym = CostMeter::new();
            let symbolic = concretize(&sym, &dfg, &config, &options, &mut m_sym);
            assert_identical(&direct, &symbolic);
            assert_eq!(m_direct.breakdown(), m_sym.breakdown());
        }
    }

    #[test]
    fn shared_across_threads_stays_consistent() {
        let dfg = media_dfg();
        let sym = Arc::new(SymbolicSchedule::new());
        let config = AcceleratorConfig::paper_design();
        let options = ScheduleOptions::default();
        let mut reference = CostMeter::new();
        let want = modulo_schedule(&dfg, &config, &options, &mut reference);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sym = Arc::clone(&sym);
                let (dfg, config, options) = (&dfg, &config, &options);
                let want = &want;
                let reference = &reference;
                s.spawn(move || {
                    for _ in 0..8 {
                        let mut m = CostMeter::new();
                        let got = concretize(&sym, dfg, config, options, &mut m);
                        assert_identical(want, &got);
                        assert_eq!(reference.breakdown(), m.breakdown());
                    }
                });
            }
        });
    }
}
