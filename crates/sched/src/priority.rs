//! Scheduling priority functions.
//!
//! * [`swing_order`] — the Swing Modulo Scheduling ordering (Llosa et al.
//!   \[19\]): recurrence sets first, most critical first, each extended with
//!   the nodes on paths to previously ordered sets, swept alternately
//!   bottom-up/top-down so every op is scheduled next to an already placed
//!   neighbour. This is the high-quality, expensive priority (it computes
//!   the MinDist matrix).
//! * [`height_order`] — Rau's height-based priority \[24\]: a single
//!   O(V + E) longest-path-to-sink pass. Much cheaper to compute, but with
//!   a single-pass list scheduler it "often yielded sub-optimal schedules"
//!   (paper §4.2) — reproduced here and evaluated in Figure 10.

use crate::mindist::MinDist;
use veal_accel::LatencyModel;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// Which priority function the translator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityKind {
    /// Swing modulo scheduling order (recurrence-aware, expensive).
    #[default]
    Swing,
    /// Height-based order (cheap, sometimes worse II).
    Height,
}

/// Computes per-op height: the longest latency path from the op to any sink
/// over distance-0 edges.
#[must_use]
pub fn heights(dfg: &Dfg, lat: &LatencyModel, meter: &mut CostMeter, phase: Phase) -> Vec<u32> {
    let n = dfg.len();
    let mut h = vec![0u32; n];
    let cond = dfg.condensation();
    let order = cond.topo0().expect("distance-0 subgraph must be acyclic");
    for &v in order.iter().rev() {
        meter.charge(phase, 1);
        if !dfg.node(v).is_schedulable() {
            continue;
        }
        let l = dfg.node(v).opcode().map_or(0, |op| lat.latency(op));
        let best = dfg
            .succ_edges(v)
            .filter(|e| e.distance == 0 && dfg.node(e.dst).is_schedulable())
            .map(|e| h[e.dst.index()])
            .max()
            .unwrap_or(0);
        h[v.index()] = best + l;
    }
    h
}

/// Computes per-op depth: the longest latency path from any source to the
/// op over distance-0 edges (excluding the op's own latency).
#[must_use]
pub fn depths(dfg: &Dfg, lat: &LatencyModel, meter: &mut CostMeter, phase: Phase) -> Vec<u32> {
    let n = dfg.len();
    let mut d = vec![0u32; n];
    let cond = dfg.condensation();
    let order = cond.topo0().expect("distance-0 subgraph must be acyclic");
    for &v in order {
        meter.charge(phase, 1);
        if !dfg.node(v).is_schedulable() {
            continue;
        }
        let best = dfg
            .pred_edges(v)
            .filter(|e| e.distance == 0 && dfg.node(e.src).is_schedulable())
            .map(|e| {
                let l = dfg.node(e.src).opcode().map_or(0, |op| lat.latency(op));
                d[e.src.index()] + l
            })
            .max()
            .unwrap_or(0);
        d[v.index()] = best;
    }
    d
}

/// Height-based scheduling order: ops sorted by decreasing height, ties by
/// increasing id (deterministic).
///
/// # Example
///
/// ```
/// use veal_accel::LatencyModel;
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_sched::height_order;
///
/// let mut b = DfgBuilder::new();
/// let x = b.op(Opcode::Mul, &[]);
/// let y = b.op(Opcode::Add, &[x]);
/// let order = height_order(&b.finish(), &LatencyModel::default(),
///                          &mut CostMeter::new());
/// assert_eq!(order, vec![x, y]);
/// ```
#[must_use]
pub fn height_order(dfg: &Dfg, lat: &LatencyModel, meter: &mut CostMeter) -> Vec<OpId> {
    let h = heights(dfg, lat, meter, Phase::Priority);
    let mut ops: Vec<OpId> = dfg.schedulable_ops().collect();
    meter.charge(
        Phase::Priority,
        (ops.len() as u64) * (64 - (ops.len() as u64).leading_zeros() as u64).max(1),
    );
    ops.sort_by_key(|&v| (std::cmp::Reverse(h[v.index()]), v));
    ops
}

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

/// MinDist self-distance source for [`swing_order`]'s recurrence ranking.
///
/// The Swing ordering reads only the matrix *diagonal* (per-SCC
/// criticality), so when the II-parametric structure is valid the full
/// n² matrix is never materialized — each needed `(v, v)` cell is
/// evaluated from its Pareto frontier on demand. The naive fallback keeps
/// the dense matrix. Both sources yield identical values, and the caller
/// charges the same `3n³ + 1` either way (the VM's cost model describes
/// its Floyd–Warshall, not the host shortcut).
enum SelfDist {
    Param(std::sync::Arc<crate::param::MinDistParam>, u32),
    Naive(MinDist),
}

impl SelfDist {
    fn get(&self, v: OpId) -> Option<i64> {
        match self {
            SelfDist::Param(p, ii) => p.eval_pair(v, v, *ii),
            SelfDist::Naive(md) => md.get(v, v),
        }
    }
}

/// The per-SCC criticality used to rank recurrence sets: the SCC's own
/// RecMII (longest cycle ratio), recomputed cheaply from MinDist self
/// distances at the loop's RecMII.
fn scc_criticality(md: &SelfDist, scc: &[OpId]) -> i64 {
    scc.iter()
        .filter_map(|&v| md.get(v))
        .max()
        .unwrap_or(i64::MIN)
}

/// Swing modulo scheduling order.
///
/// Recurrence sets are ordered by decreasing criticality; the nodes of each
/// set (plus, implicitly, path nodes encountered later) are emitted in an
/// alternating sweep that guarantees every emitted op (except set seeds) is
/// adjacent to an already emitted op — so the list scheduler always has a
/// one-sided or two-sided window to place it in.
///
/// `ii` is the II the MinDist matrix is computed at (normally the MII).
#[must_use]
pub fn swing_order(dfg: &Dfg, lat: &LatencyModel, ii: u32, meter: &mut CostMeter) -> Vec<OpId> {
    if !veal_ir::data_oriented_enabled() {
        return crate::reference::swing_order(dfg, lat, ii, meter);
    }
    // Same dispatch as `MinDist::compute`, but via the diagonal-only
    // `SelfDist` view (the ordering never reads off-diagonal cells).
    let ii = ii.max(1);
    let md = 'md: {
        if crate::mindist::parametric_enabled() {
            let param = crate::param::cached(dfg, lat);
            if param.valid_at(ii) {
                let n = param.ops().len() as u64;
                meter.charge(Phase::Priority, 3 * n * n * n + 1);
                break 'md SelfDist::Param(param, ii);
            }
        }
        SelfDist::Naive(MinDist::compute_naive(dfg, lat, ii, meter))
    };
    // Depth/height profiles depend only on (dfg, lat), never on II, so the
    // parametric path reuses the copies memoized in the cached
    // `MinDistParam` — charging exactly what the two passes would have
    // charged (one unit per topo node per pass). The fallback recomputes
    // (and, for ill-formed bodies, panics) exactly as before.
    let dh = match &md {
        SelfDist::Param(p, _) => p.profiles().map(|(pd, ph, topo_len)| {
            meter.charge(Phase::Priority, 2 * topo_len as u64);
            (pd, ph)
        }),
        SelfDist::Naive(_) => None,
    };
    let owned;
    let (d, h): (&[u32], &[u32]) = match dh {
        Some(dh) => dh,
        None => {
            owned = (
                depths(dfg, lat, meter, Phase::Priority),
                heights(dfg, lat, meter, Phase::Priority),
            );
            (&owned.0, &owned.1)
        }
    };

    // Partition into recurrence sets and rank them. Only cyclic-SCC
    // membership matters here, so the allocation-free Tarjan suffices —
    // the full cached `Condensation` (per-component lists plus the reach0
    // snapshot) is never forced on the scheduling graph. Members are
    // collected in ascending id order, exactly the sorted component lists
    // the condensation would hand out, and `scc_membership`'s cyclic test
    // (size > 1, or a self-edge on the lone member) is the same predicate
    // the component filter used to apply inline.
    meter.charge(Phase::Priority, (dfg.len() as u64) * 2);
    let scc_view = dfg.scc_view();
    let mut packed = veal_ir::with_arena(veal_ir::DfgArena::take_u64);
    packed.clear();
    for (v, &c) in scc_view.comp_of.iter().enumerate() {
        if c != u32::MAX && scc_view.is_cyclic(c) {
            packed.push(u64::from(c) << 32 | v as u64);
        }
    }
    packed.sort_unstable();
    let mut members: Vec<OpId> = Vec::new();
    let mut set_bounds: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < packed.len() {
        let c = packed[i] >> 32;
        let start = members.len();
        let mut all_sched = true;
        while i < packed.len() && packed[i] >> 32 == c {
            let v = OpId::new((packed[i] & 0xffff_ffff) as usize);
            all_sched &= dfg.node(v).is_schedulable();
            members.push(v);
            i += 1;
        }
        if all_sched {
            set_bounds.push((start, members.len()));
        } else {
            members.truncate(start);
        }
    }
    veal_ir::with_arena(|a| a.give_u64(packed));
    let mut rec_sets: Vec<&[OpId]> = set_bounds.iter().map(|&(s, e)| &members[s..e]).collect();
    // Component ids are assigned in Tarjan emission order, so the
    // pre-sort order matches the old comps() iteration; the key is total
    // anyway (distinct sets differ in their smallest member).
    rec_sets.sort_by_key(|scc| {
        (
            std::cmp::Reverse(scc_criticality(&md, scc)),
            std::cmp::Reverse(scc.len()),
            scc[0],
        )
    });

    // Membership sets as u64 bitmask words over node slots. The emission
    // loop (and its per-iteration charge of `remaining.len()`) is
    // unchanged; the selection key is a total order (it ends in the op
    // id), so the produced order is identical to the HashSet version.
    // "Adjacent to something placed" is monotone (the placed set only
    // grows), so instead of rescanning every pending node's edge lists
    // each round, a bitset of placed-adjacent nodes is updated once per
    // placement from the CSR adjacency.
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let words = dfg.len().div_ceil(64);
    let mut order: Vec<OpId> = Vec::new();
    let mut placed = vec![0u64; words];
    let mut adjacent = vec![0u64; words];
    let mut remaining = vec![0u64; words];
    let mut pending: Vec<OpId> = Vec::new();

    let mut emit_set = |set: &[OpId], order: &mut Vec<OpId>, placed: &mut Vec<u64>| {
        pending.clear();
        pending.extend(set.iter().copied().filter(|v| !bit_get(placed, v.index())));
        if pending.is_empty() {
            return;
        }
        // `remaining` drains to all-zero by the end of each call, so the
        // buffer is reusable without re-clearing.
        for &v in &pending {
            bit_set(&mut remaining, v.index());
        }
        let mut remaining_count = pending.len();
        while remaining_count > 0 {
            meter.charge(Phase::Priority, remaining_count as u64);
            // Prefer nodes adjacent to something already ordered (either
            // direction); among those, minimal mobility-ish key: highest
            // depth+height sum (most critical), then lowest id. Only the
            // minimum is ever used, so a single scan tracking the best
            // adjacent and best overall key replaces materializing and
            // sorting the candidate list — same total order, same choice.
            type Key = (std::cmp::Reverse<u32>, u32, OpId);
            let mut best_adj: Option<Key> = None;
            let mut best_any: Option<Key> = None;
            for &v in &pending {
                if !bit_get(&remaining, v.index()) {
                    continue;
                }
                let k = (
                    std::cmp::Reverse(d[v.index()] + h[v.index()]),
                    d[v.index()], // producers before consumers on ties
                    v,
                );
                if best_any.is_none_or(|b| k < b) {
                    best_any = Some(k);
                }
                if bit_get(&adjacent, v.index()) && best_adj.is_none_or(|b| k < b) {
                    best_adj = Some(k);
                }
            }
            let chosen = best_adj.or(best_any).expect("remaining_count > 0").2;
            bit_clear(&mut remaining, chosen.index());
            remaining_count -= 1;
            bit_set(placed, chosen.index());
            for &ei in adj.pred_edge_ids(chosen.index()) {
                bit_set(&mut adjacent, edges[ei as usize].src.index());
            }
            for &ei in adj.succ_edge_ids(chosen.index()) {
                bit_set(&mut adjacent, edges[ei as usize].dst.index());
            }
            order.push(chosen);
        }
    };

    for scc in rec_sets {
        emit_set(scc, &mut order, &mut placed);
    }
    // Final set: all remaining schedulable ops.
    let rest: Vec<OpId> = dfg
        .schedulable_ops()
        .filter(|v| !bit_get(&placed, v.index()))
        .collect();
    emit_set(&rest, &mut order, &mut placed);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use veal_ir::{DfgBuilder, Opcode};

    #[test]
    fn heights_and_depths_of_chain() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]); // lat 3
        let y = b.op(Opcode::Add, &[x]); // lat 1
        let z = b.op(Opcode::Add, &[y]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let h = heights(&dfg, &LatencyModel::default(), &mut m, Phase::Priority);
        let d = depths(&dfg, &LatencyModel::default(), &mut m, Phase::Priority);
        assert_eq!(h[x.index()], 5);
        assert_eq!(h[z.index()], 1);
        assert_eq!(d[x.index()], 0);
        assert_eq!(d[y.index()], 3);
        assert_eq!(d[z.index()], 4);
    }

    #[test]
    fn height_order_puts_critical_first() {
        let mut b = DfgBuilder::new();
        let cheap = b.op(Opcode::Add, &[]);
        let deep1 = b.op(Opcode::Mul, &[]);
        let deep2 = b.op(Opcode::Add, &[deep1]);
        let _ = (cheap, deep2);
        let dfg = b.finish();
        let order = height_order(&dfg, &LatencyModel::default(), &mut CostMeter::new());
        assert_eq!(order[0], deep1);
    }

    #[test]
    fn swing_order_recurrence_first() {
        // An acyclic op plus a critical mul recurrence: the recurrence ops
        // must come before the acyclic one (paper: "schedule the most
        // critical recurrence first").
        let mut b = DfgBuilder::new();
        let acyclic = b.op(Opcode::Add, &[]);
        let mpy = b.op(Opcode::Mul, &[]);
        let or = b.op(Opcode::Or, &[mpy]);
        b.loop_carried(or, mpy, 1);
        let consume = b.op(Opcode::Add, &[or, acyclic]);
        let _ = consume;
        let dfg = b.finish();
        let order = swing_order(&dfg, &LatencyModel::default(), 4, &mut CostMeter::new());
        let pos = |v: OpId| order.iter().position(|&o| o == v).unwrap();
        assert!(pos(mpy) < pos(acyclic));
        assert!(pos(or) < pos(acyclic));
    }

    #[test]
    fn swing_order_two_recurrences_by_criticality() {
        // Recurrence A: fdiv (16 cy); recurrence B: add (1 cy). A first.
        let mut b = DfgBuilder::new();
        let slow = b.op(Opcode::FDiv, &[]);
        b.loop_carried(slow, slow, 1);
        let fast = b.op(Opcode::Add, &[]);
        b.loop_carried(fast, fast, 1);
        let dfg = b.finish();
        let order = swing_order(&dfg, &LatencyModel::default(), 16, &mut CostMeter::new());
        let pos = |v: OpId| order.iter().position(|&o| o == v).unwrap();
        assert!(pos(slow) < pos(fast));
    }

    #[test]
    fn swing_order_covers_all_ops_once() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Mul, &[x, x]);
        let z = b.op(Opcode::Add, &[y]);
        b.loop_carried(z, z, 1);
        b.store_stream(1, z);
        let dfg = b.finish();
        let order = swing_order(&dfg, &LatencyModel::default(), 3, &mut CostMeter::new());
        let expect: HashSet<OpId> = dfg.schedulable_ops().collect();
        let got: HashSet<OpId> = order.iter().copied().collect();
        assert_eq!(order.len(), expect.len());
        assert_eq!(got, expect);
    }

    #[test]
    fn swing_nonseed_ops_adjacent_to_placed() {
        // Every op after the first in a connected graph must touch an
        // already ordered neighbour.
        let mut b = DfgBuilder::new();
        let a = b.load_stream(0);
        let c = b.op(Opcode::Add, &[a]);
        let d2 = b.op(Opcode::Mul, &[c]);
        let e = b.op(Opcode::Sub, &[d2, a]);
        b.store_stream(1, e);
        let dfg = b.finish();
        let order = swing_order(&dfg, &LatencyModel::default(), 2, &mut CostMeter::new());
        let mut placed: HashSet<OpId> = HashSet::new();
        placed.insert(order[0]);
        for &v in &order[1..] {
            let adjacent = dfg.pred_edges(v).any(|e| placed.contains(&e.src))
                || dfg.succ_edges(v).any(|e| placed.contains(&e.dst));
            assert!(adjacent, "{v} ordered with no placed neighbour");
            placed.insert(v);
        }
    }

    #[test]
    fn swing_is_more_expensive_than_height() {
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::Add, &[]);
        for _ in 0..30 {
            prev = b.op(Opcode::Add, &[prev]);
        }
        let dfg = b.finish();
        let mut ms = CostMeter::new();
        let _ = swing_order(&dfg, &LatencyModel::default(), 1, &mut ms);
        let mut mh = CostMeter::new();
        let _ = height_order(&dfg, &LatencyModel::default(), &mut mh);
        assert!(ms.total() > 10 * mh.total());
    }
}
