//! All-pairs longest-path (MinDist) matrix.
//!
//! `MinDist[u][v]` is the largest value of `Σ latency − II·Σ distance` over
//! all paths from `u` to `v`; scheduling must satisfy
//! `t(v) ≥ t(u) + MinDist[u][v]`. The Swing ordering derives earliest/latest
//! start times and node mobility from this matrix.
//!
//! Computing it is Θ(n³) (Floyd–Warshall) — this is, by design, the
//! dominant cost of translation, matching the paper's finding that priority
//! computation consumes 69% of the ~100k-instruction average translation
//! penalty (Figure 8), and motivating its static precomputation (§4.2).

use veal_accel::LatencyModel;
use veal_ir::{CostMeter, Dfg, OpId, Phase};

/// The MinDist matrix over the schedulable ops of a graph.
#[derive(Debug, Clone)]
pub struct MinDist {
    ops: Vec<OpId>,
    // Row-major; i64::MIN encodes "no path".
    dist: Vec<i64>,
    n: usize,
}

const NEG_INF: i64 = i64::MIN / 4;

// Dropped matrices park their Θ(n²) buffers here (per thread) and the next
// `compute` on the thread reclaims them, so sweeps that translate thousands
// of loops stop round-tripping the allocator for every matrix.
thread_local! {
    static DIST_POOL: std::cell::RefCell<Vec<Vec<i64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

const DIST_POOL_DEPTH: usize = 8;

/// `(reuses, allocs)` of pooled matrix buffers, summed across threads.
fn dist_pool_counters() -> (&'static veal_obs::Counter, &'static veal_obs::Counter) {
    static C: std::sync::OnceLock<(&'static veal_obs::Counter, &'static veal_obs::Counter)> =
        std::sync::OnceLock::new();
    *C.get_or_init(|| {
        (
            veal_obs::counter("sched.dist_pool.reuses"),
            veal_obs::counter("sched.dist_pool.allocs"),
        )
    })
}

fn pooled_matrix(len: usize) -> Vec<i64> {
    let recycled = DIST_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // Evict buffers grossly oversized for this request instead of
        // resurrecting them: a thread that once scheduled a huge DFG must
        // not park Θ(n_max²) memory forever.
        while let Some(v) = pool.pop() {
            if v.capacity() <= 4 * len.max(1) {
                return Some(v);
            }
        }
        None
    });
    match recycled {
        Some(mut v) => {
            dist_pool_counters().0.inc();
            v.clear();
            v.resize(len, NEG_INF);
            v
        }
        None => {
            dist_pool_counters().1.inc();
            vec![NEG_INF; len]
        }
    }
}

thread_local! {
    static PARAMETRIC: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Whether [`MinDist::compute`] may answer from the cached II-parametric
/// structure (the default). Per thread.
#[must_use]
pub fn parametric_enabled() -> bool {
    PARAMETRIC.with(std::cell::Cell::get)
}

/// Enables/disables the parametric fast path on this thread, returning
/// the previous setting. Benchmarks and property tests use this to pit
/// the naive and parametric kernels against each other; results are
/// bit-identical either way.
pub fn set_parametric_enabled(on: bool) -> bool {
    PARAMETRIC.with(|c| c.replace(on))
}

impl Drop for MinDist {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.dist);
        if v.capacity() > 0 {
            DIST_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < DIST_POOL_DEPTH {
                    pool.push(v);
                }
            });
        }
    }
}

impl MinDist {
    /// Computes the matrix at initiation interval `ii`.
    ///
    /// Costs are charged to [`Phase::Priority`] because VEAL computes this
    /// matrix as part of priority calculation. The charge models the VM's
    /// Floyd–Warshall (`3n³ + 1`) regardless of how the host arrives at
    /// the values: when `ii` is at or above the graph's RecMII (always
    /// true inside the scheduling pipeline, where `II ≥ max(ResMII,
    /// RecMII)`), the matrix is evaluated in O(n²·k) from the cached
    /// II-parametric structure ([`crate::MinDistParam`]); otherwise — and
    /// whenever [`set_parametric_enabled`]`(false)` is in effect — the
    /// naive kernel runs. Both paths produce bit-identical matrices and
    /// charges.
    #[must_use]
    pub fn compute(dfg: &Dfg, lat: &LatencyModel, ii: u32, meter: &mut CostMeter) -> Self {
        if parametric_enabled() {
            let param = crate::param::cached(dfg, lat);
            if param.valid_at(ii) {
                let ops = param.ops().to_vec();
                let n = ops.len();
                meter.charge(
                    Phase::Priority,
                    3 * (n as u64) * (n as u64) * (n as u64) + 1,
                );
                // Unreachable pairs keep the pool's NEG_INF prefill.
                let mut dist = pooled_matrix(n * n);
                param.eval_into(ii, &mut dist);
                return MinDist { ops, dist, n };
            }
        }
        Self::compute_naive(dfg, lat, ii, meter)
    }

    /// The original Θ(n³) Floyd–Warshall kernel, retained as the reference
    /// implementation (property tests and `bench_translate` compare the
    /// parametric path against it) and as the fallback for `ii` below the
    /// graph's RecMII.
    #[must_use]
    pub fn compute_naive(dfg: &Dfg, lat: &LatencyModel, ii: u32, meter: &mut CostMeter) -> Self {
        let ops: Vec<OpId> = dfg.schedulable_ops().collect();
        let n = ops.len();
        let mut dist = pooled_matrix(n * n);
        let index_of = |id: OpId| ops.binary_search(&id).ok();

        for (i, &u) in ops.iter().enumerate() {
            let l = i64::from(dfg.node(u).opcode().map_or(0, |op| lat.latency(op)));
            for e in dfg.succ_edges(u) {
                let Some(j) = index_of(e.dst) else { continue };
                let w = l - i64::from(ii) * i64::from(e.distance);
                let cell = &mut dist[i * n + j];
                if w > *cell {
                    *cell = w;
                }
            }
        }
        // Each Floyd–Warshall inner step is several host instructions
        // (two loads, compare, add, conditional store): charge 3 abstract
        // instructions per step, calibrated against the paper's x86
        // instruction counts.
        meter.charge(
            Phase::Priority,
            3 * (n as u64) * (n as u64) * (n as u64) + 1,
        );
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik == NEG_INF {
                    continue;
                }
                for j in 0..n {
                    let through = dik + dist[k * n + j];
                    if dist[k * n + j] != NEG_INF && through > dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }
        MinDist { ops, dist, n }
    }

    /// The schedulable ops this matrix covers, sorted by id.
    #[must_use]
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Longest-path weight from `u` to `v`, or `None` when no path exists.
    #[must_use]
    pub fn get(&self, u: OpId, v: OpId) -> Option<i64> {
        let i = self.ops.binary_search(&u).ok()?;
        let j = self.ops.binary_search(&v).ok()?;
        let d = self.dist[i * self.n + j];
        (d != NEG_INF).then_some(d)
    }

    /// Whether `u` and `v` lie on a common cycle (mutually reachable).
    #[must_use]
    pub fn on_common_cycle(&self, u: OpId, v: OpId) -> bool {
        self.get(u, v).is_some() && self.get(v, u).is_some()
    }

    /// Earliest start of `v` relative to the graph's sources:
    /// `max(0, max_u MinDist[u][v])` over source ops `u` (no predecessors
    /// among schedulable ops).
    #[must_use]
    pub fn earliest(&self, dfg: &Dfg, v: OpId) -> i64 {
        let mut e = 0i64;
        for &u in &self.ops {
            let is_source = dfg
                .pred_edges(u)
                .all(|edge| edge.distance > 0 || !dfg.node(edge.src).is_schedulable());
            if !is_source {
                continue;
            }
            if let Some(d) = self.get(u, v) {
                e = e.max(d);
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    #[test]
    fn chain_distances() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]); // 3 cycles
        let y = b.op(Opcode::Add, &[x]); // 1 cycle
        let z = b.op(Opcode::Add, &[y]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let d = MinDist::compute(&dfg, &LatencyModel::default(), 2, &mut m);
        assert_eq!(d.get(x, y), Some(3));
        assert_eq!(d.get(x, z), Some(4));
        assert_eq!(d.get(z, x), None);
    }

    #[test]
    fn loop_carried_edge_subtracts_ii() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Add, &[x]);
        b.loop_carried(y, x, 1);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let d = MinDist::compute(&dfg, &LatencyModel::default(), 2, &mut m);
        // y -> x: 1 - 2*1 = -1.
        assert_eq!(d.get(y, x), Some(-1));
        assert!(d.on_common_cycle(x, y));
    }

    #[test]
    fn self_distance_zero_at_rec_mii() {
        // At II = RecMII the critical cycle has weight exactly 0.
        let mut b = DfgBuilder::new();
        let m1 = b.op(Opcode::Mul, &[]);
        let o = b.op(Opcode::Or, &[m1]);
        b.loop_carried(o, m1, 1);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let d = MinDist::compute(&dfg, &LatencyModel::default(), 4, &mut m);
        assert_eq!(d.get(m1, m1), Some(0));
    }

    #[test]
    fn cost_charged_cubically() {
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::Add, &[]);
        for _ in 0..9 {
            prev = b.op(Opcode::Add, &[prev]);
        }
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let _ = MinDist::compute(&dfg, &LatencyModel::default(), 1, &mut m);
        assert!(m.breakdown().get(Phase::Priority) >= 1000);
    }

    #[test]
    fn earliest_tracks_critical_path() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]); // source, 3 cycles
        let y = b.op(Opcode::Add, &[x]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let d = MinDist::compute(&dfg, &LatencyModel::default(), 1, &mut m);
        assert_eq!(d.earliest(&dfg, y), 3);
        assert_eq!(d.earliest(&dfg, x), 0);
    }
}
