//! The modulo reservation table (paper §4.1, "Scheduling").
//!
//! "A modulo reservation table is constructed to store the scheduling
//! results. The table has II rows and a column for each FU."

use veal_accel::{AcceleratorConfig, ResourceKind};

/// A modulo reservation table: `II` rows × the configured units of each
/// resource class.
///
/// Storage is a flat per-row *unit bitmask*: each kernel row of a class is
/// `⌈units/64⌉` words whose bit `u` marks unit `u` busy. A free-unit query
/// is then one OR across the span's rows and a `trailing_zeros`, instead of
/// a per-unit slot scan — the scheduler's window scans probe the table once
/// per candidate cycle, so this is its hottest query. The flat layout also
/// lets the II-escalation loop rebuild the table for a new II with
/// [`ModuloReservationTable::reset`] instead of re-allocating a fresh
/// nested structure at every attempt.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    ii: u32,
    // Row-major occupancy words: for each class, `ii` rows of
    // `words[kind]` words starting at word `offsets[kind]`; the word
    // holding (unit, row) is `offsets[kind] + row·words[kind] + unit/64`,
    // at bit `unit % 64`.
    busy: Vec<u64>,
    offsets: [usize; 5],
    units: [usize; 5],
    words: [usize; 5],
}

impl ModuloReservationTable {
    /// Creates an empty table for initiation interval `ii` on `config`.
    ///
    /// Unit counts are clamped to `ii × units ≥ slots`, capping the
    /// per-class columns at a practical bound for the infinite machine.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    #[must_use]
    pub fn new(ii: u32, config: &AcceleratorConfig) -> Self {
        Self::with_unit_cap(ii, config, 4096)
    }

    /// Like [`ModuloReservationTable::new`], with per-class columns capped
    /// at `cap` — more columns than schedulable ops can never help, so the
    /// scheduler passes the op count to keep the infinite machine's table
    /// small.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    #[must_use]
    pub fn with_unit_cap(ii: u32, config: &AcceleratorConfig, cap: usize) -> Self {
        let mut table = ModuloReservationTable {
            ii: 1,
            busy: Vec::new(),
            offsets: [0; 5],
            units: [0; 5],
            words: [0; 5],
        };
        table.reset(ii, config, cap);
        table
    }

    /// Reconfigures the table in place for a new `ii`, clearing every
    /// reservation but keeping the allocation. The scheduler's II-escalation
    /// loop calls this between attempts so each retry stops re-allocating.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn reset(&mut self, ii: u32, config: &AcceleratorConfig, cap: usize) {
        assert!(ii > 0, "II must be positive");
        let cap = cap.max(1);
        self.ii = ii;
        let mut total = 0usize;
        for &kind in veal_accel::resources::ALL_RESOURCES {
            let n = config.units(kind).min(cap.min(4096));
            let w = n.div_ceil(64);
            self.units[kind.index()] = n;
            self.words[kind.index()] = w;
            self.offsets[kind.index()] = total;
            total += w * ii as usize;
        }
        self.busy.clear();
        self.busy.resize(total, 0);
    }

    /// The initiation interval.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of columns for `kind`.
    #[must_use]
    pub fn units(&self, kind: ResourceKind) -> usize {
        self.units[kind.index()]
    }

    /// Kernel row of `time`, computed once per operation; consecutive span
    /// rows then advance by increment-and-wrap (the scheduler's slot scans
    /// probe thousands of cells, and a `rem_euclid` division per cell is
    /// measurable at that rate).
    fn base_row(&self, time: i64) -> usize {
        time.rem_euclid(i64::from(self.ii)) as usize
    }

    /// Tries to reserve a unit of `kind` at schedule time `time` for `span`
    /// consecutive cycles (span > 1 models unpipelined units). Returns the
    /// lowest free unit index on success without committing.
    #[must_use]
    pub fn find_unit(&self, kind: ResourceKind, time: i64, span: u32) -> Option<usize> {
        let ii = self.ii as usize;
        let span = span.min(self.ii) as usize; // II rows occupy everything
        let r0 = self.base_row(time);
        let k = kind.index();
        let (off, wpr, n) = (self.offsets[k], self.words[k], self.units[k]);
        for wi in 0..wpr {
            // A unit is free iff its bit is clear in every spanned row.
            let mut occ = 0u64;
            let mut r = r0;
            for _ in 0..span {
                occ |= self.busy[off + r * wpr + wi];
                r += 1;
                if r == ii {
                    r = 0;
                }
            }
            let remaining = n - wi * 64;
            let valid = if remaining >= 64 {
                !0u64
            } else {
                (1u64 << remaining) - 1
            };
            let free = !occ & valid;
            if free != 0 {
                return Some(wi * 64 + free.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Reserves `span` rows of `unit` starting at `time`.
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is already busy (callers must use
    /// [`ModuloReservationTable::find_unit`] first).
    pub fn reserve(&mut self, kind: ResourceKind, unit: usize, time: i64, span: u32) {
        let ii = self.ii as usize;
        let span = span.min(self.ii) as usize;
        let k = kind.index();
        let (off, wpr) = (self.offsets[k], self.words[k]);
        let (wi, bit) = (unit / 64, 1u64 << (unit % 64));
        let mut r = self.base_row(time);
        for _ in 0..span {
            let s = off + r * wpr + wi;
            assert!(self.busy[s] & bit == 0, "slot already reserved");
            self.busy[s] |= bit;
            r += 1;
            if r == ii {
                r = 0;
            }
        }
    }

    /// Releases a reservation previously made with
    /// [`ModuloReservationTable::reserve`] (used by the scheduler's
    /// ejection fallback).
    ///
    /// # Panics
    ///
    /// Panics if a slot being released is not reserved.
    pub fn release(&mut self, kind: ResourceKind, unit: usize, time: i64, span: u32) {
        let ii = self.ii as usize;
        let span = span.min(self.ii) as usize;
        let k = kind.index();
        let (off, wpr) = (self.offsets[k], self.words[k]);
        let (wi, bit) = (unit / 64, 1u64 << (unit % 64));
        let mut r = self.base_row(time);
        for _ in 0..span {
            let s = off + r * wpr + wi;
            assert!(self.busy[s] & bit != 0, "releasing a free slot");
            self.busy[s] &= !bit;
            r += 1;
            if r == ii {
                r = 0;
            }
        }
    }

    /// Number of occupied slots for `kind` (for diagnostics and tests).
    #[must_use]
    pub fn occupancy(&self, kind: ResourceKind) -> usize {
        let k = kind.index();
        let base = self.offsets[k];
        self.busy[base..base + self.words[k] * self.ii as usize]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt(ii: u32) -> ModuloReservationTable {
        ModuloReservationTable::new(ii, &AcceleratorConfig::paper_design())
    }

    #[test]
    fn reserve_fills_both_units_then_rejects() {
        let mut t = mrt(1);
        let u0 = t.find_unit(ResourceKind::Int, 0, 1).unwrap();
        t.reserve(ResourceKind::Int, u0, 0, 1);
        let u1 = t.find_unit(ResourceKind::Int, 5, 1).unwrap();
        assert_ne!(u0, u1);
        t.reserve(ResourceKind::Int, u1, 5, 1);
        // II=1: every time maps to row 0; both integer units are full.
        assert_eq!(t.find_unit(ResourceKind::Int, 9, 1), None);
    }

    #[test]
    fn modulo_wraparound() {
        let mut t = mrt(4);
        let u = t.find_unit(ResourceKind::Cca, 6, 1).unwrap();
        t.reserve(ResourceKind::Cca, u, 6, 1);
        // time 6 maps to row 2; time 2 conflicts on the only CCA.
        assert_eq!(t.find_unit(ResourceKind::Cca, 2, 1), None);
        assert!(t.find_unit(ResourceKind::Cca, 3, 1).is_some());
    }

    #[test]
    fn negative_times_wrap_correctly() {
        let mut t = mrt(4);
        let u = t.find_unit(ResourceKind::Cca, -1, 1).unwrap();
        t.reserve(ResourceKind::Cca, u, -1, 1);
        // -1 mod 4 = 3.
        assert_eq!(t.find_unit(ResourceKind::Cca, 3, 1), None);
    }

    #[test]
    fn span_reserves_consecutive_rows() {
        let mut t = mrt(4);
        let u = t.find_unit(ResourceKind::Fp, 1, 3).unwrap();
        t.reserve(ResourceKind::Fp, u, 1, 3);
        assert_eq!(t.occupancy(ResourceKind::Fp), 3);
        // Rows 1, 2, 3 of unit u are busy; a 2-span at time 3 would need
        // rows 3 and 0: row 3 busy on unit u but the second FP unit is free.
        assert!(t.find_unit(ResourceKind::Fp, 3, 2).is_some());
    }

    #[test]
    fn span_clamped_to_ii() {
        let mut t = mrt(2);
        let u = t.find_unit(ResourceKind::Int, 0, 16).unwrap();
        t.reserve(ResourceKind::Int, u, 0, 16);
        // The unit is fully occupied (span clamped to II=2 rows).
        assert_eq!(t.occupancy(ResourceKind::Int), 2);
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_reserve_panics() {
        let mut t = mrt(2);
        t.reserve(ResourceKind::Int, 0, 0, 1);
        t.reserve(ResourceKind::Int, 0, 2, 1); // same row 0
    }

    #[test]
    fn reset_reuses_allocation_and_clears() {
        let mut t = mrt(4);
        let u = t.find_unit(ResourceKind::Int, 2, 1).unwrap();
        t.reserve(ResourceKind::Int, u, 2, 1);
        assert_eq!(t.occupancy(ResourceKind::Int), 1);
        t.reset(5, &AcceleratorConfig::paper_design(), 4096);
        assert_eq!(t.ii(), 5);
        assert_eq!(t.occupancy(ResourceKind::Int), 0);
        // Behaves exactly like a fresh II=5 table.
        let fresh = mrt(5);
        assert_eq!(t.units(ResourceKind::Int), fresh.units(ResourceKind::Int));
        assert_eq!(
            t.find_unit(ResourceKind::Int, 7, 2),
            fresh.find_unit(ResourceKind::Int, 7, 2)
        );
    }
}
