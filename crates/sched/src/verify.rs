//! Independent validation of modulo schedules.
//!
//! The scheduler is complex enough to deserve an adversarial checker: this
//! module re-derives every constraint from scratch (dependences with
//! iteration distances, per-row resource capacity, II bounds) and is used
//! by the integration and property tests.

use crate::scheduler::ModuloSchedule;
use std::fmt;
use veal_accel::{AcceleratorConfig, ResourceKind};
use veal_ir::{Dfg, OpId};

/// A violated schedule constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleDefect {
    /// An op the graph contains was never scheduled.
    MissingOp(OpId),
    /// A dependence `src -> dst` with distance `d` is violated:
    /// `t(dst) < t(src) + latency − II·d`.
    DependenceViolated {
        /// Producer.
        src: OpId,
        /// Consumer.
        dst: OpId,
        /// Iteration distance.
        distance: u32,
        /// Observed slack (negative).
        slack: i64,
    },
    /// More ops share a (resource, row) than the hardware has units.
    ResourceOversubscribed {
        /// Resource class.
        kind: ResourceKind,
        /// Kernel row.
        row: u32,
        /// Ops in that row.
        count: usize,
        /// Units available.
        units: usize,
    },
    /// The II exceeds the control store.
    IiTooLarge {
        /// Achieved II.
        ii: u32,
        /// Hardware maximum.
        max_ii: u32,
    },
}

impl fmt::Display for ScheduleDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleDefect::MissingOp(op) => write!(f, "{op} missing from schedule"),
            ScheduleDefect::DependenceViolated {
                src,
                dst,
                distance,
                slack,
            } => write!(
                f,
                "dependence {src}->{dst} (distance {distance}) violated by {slack}"
            ),
            ScheduleDefect::ResourceOversubscribed {
                kind,
                row,
                count,
                units,
            } => write!(f, "{count} ops on {kind} in row {row} (only {units} units)"),
            ScheduleDefect::IiTooLarge { ii, max_ii } => {
                write!(f, "II {ii} exceeds control store {max_ii}")
            }
        }
    }
}

/// Checks `schedule` against `dfg` and `config`, returning every defect.
///
/// # Example
///
/// ```
/// use veal_accel::AcceleratorConfig;
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_sched::{modulo_schedule, verify_schedule, ScheduleOptions};
///
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// let y = b.op(Opcode::Add, &[x, x]);
/// b.store_stream(1, y);
/// let dfg = b.finish();
/// let la = AcceleratorConfig::paper_design();
/// let s = modulo_schedule(&dfg, &la, &ScheduleOptions::default(),
///                         &mut CostMeter::new()).unwrap();
/// assert!(verify_schedule(&dfg, &s.schedule, &la).is_empty());
/// ```
#[must_use]
pub fn verify_schedule(
    dfg: &Dfg,
    schedule: &ModuloSchedule,
    config: &AcceleratorConfig,
) -> Vec<ScheduleDefect> {
    let mut defects = Vec::new();
    let ii = schedule.ii;
    if ii > config.max_ii {
        defects.push(ScheduleDefect::IiTooLarge {
            ii,
            max_ii: config.max_ii,
        });
    }

    for v in dfg.schedulable_ops() {
        if schedule.time(v).is_none() {
            defects.push(ScheduleDefect::MissingOp(v));
        }
    }

    let lat = &config.latencies;
    for e in dfg.edges() {
        let (Some(ts), Some(td)) = (schedule.time(e.src), schedule.time(e.dst)) else {
            continue;
        };
        let l = i64::from(dfg.node(e.src).opcode().map_or(0, |op| lat.latency(op)));
        let slack = td - (ts + l - i64::from(ii) * i64::from(e.distance));
        if slack < 0 {
            defects.push(ScheduleDefect::DependenceViolated {
                src: e.src,
                dst: e.dst,
                distance: e.distance,
                slack,
            });
        }
    }

    // Resource rows: account span for unpipelined ops.
    for &kind in veal_accel::resources::ALL_RESOURCES {
        let units = config.units(kind);
        let mut rows = vec![0usize; ii as usize];
        for v in dfg.schedulable_ops() {
            let op = dfg.node(v).opcode().expect("schedulable");
            if ResourceKind::for_opcode(op) != Some(kind) {
                continue;
            }
            let Some(t) = schedule.time(v) else { continue };
            let span = if op.pipelined() {
                1
            } else {
                lat.latency(op).min(ii)
            };
            for k in 0..span {
                let r = (t + i64::from(k)).rem_euclid(i64::from(ii)) as usize;
                rows[r] += 1;
            }
        }
        for (row, &count) in rows.iter().enumerate() {
            if count > units {
                defects.push(ScheduleDefect::ResourceOversubscribed {
                    kind,
                    row: row as u32,
                    count,
                    units,
                });
            }
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modulo_schedule, ScheduleOptions};
    use veal_ir::{CostMeter, DfgBuilder, Opcode};

    #[test]
    fn valid_schedule_has_no_defects() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.load_stream(1);
        let p = b.op(Opcode::Mul, &[x, y]);
        let a = b.op(Opcode::Add, &[p]);
        b.loop_carried(a, a, 1);
        b.store_stream(2, a);
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        assert_eq!(verify_schedule(&dfg, &s.schedule, &la), vec![]);
    }

    #[test]
    fn detects_missing_op() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let dfg_small = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg_small,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        // Verify against a *larger* graph: the extra op is missing.
        let mut b2 = DfgBuilder::new();
        let x2 = b2.op(Opcode::Add, &[]);
        let y2 = b2.op(Opcode::Sub, &[x2]);
        let dfg_big = b2.finish();
        let defects = verify_schedule(&dfg_big, &s.schedule, &la);
        assert!(defects.contains(&ScheduleDefect::MissingOp(y2)));
        let _ = x;
    }

    #[test]
    fn detects_ii_overflow() {
        // 5 int ops on 2 units schedule at II=3 on the paper design; the
        // same schedule is illegal for a control store of depth 2.
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.op(Opcode::Shl, &[]);
        }
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        assert_eq!(s.schedule.ii, 3);
        let shallow = AcceleratorConfig::builder().max_ii(2).build();
        let defects = verify_schedule(&dfg, &s.schedule, &shallow);
        assert!(defects
            .iter()
            .any(|d| matches!(d, ScheduleDefect::IiTooLarge { ii: 3, max_ii: 2 })));
    }

    #[test]
    fn detects_resource_oversubscription() {
        // Schedule on the generous paper design, then verify against a
        // single-int-unit machine: rows must oversubscribe.
        let mut b = DfgBuilder::new();
        for _ in 0..4 {
            b.op(Opcode::Shl, &[]);
        }
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        let narrow = AcceleratorConfig::builder().int_units(1).build();
        let defects = verify_schedule(&dfg, &s.schedule, &narrow);
        assert!(defects
            .iter()
            .any(|d| matches!(d, ScheduleDefect::ResourceOversubscribed { .. })));
    }
}
