//! Paper-style rendering of a modulo reservation table.
//!
//! Figure 5's right-hand side shows the schedule as a grid: one row per
//! kernel cycle (0..II), one column per function unit, each cell holding
//! the op placed there (grayed when it belongs to a later stage).
//! [`render_mrt`] produces the same view in text, with `*` marking ops
//! from stages past the first.

use crate::scheduler::ModuloSchedule;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use veal_accel::{AcceleratorConfig, ResourceKind};
use veal_ir::Dfg;

/// Renders the kernel of `schedule` as a cycle × unit grid.
///
/// # Example
///
/// ```
/// use veal_accel::AcceleratorConfig;
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_sched::{modulo_schedule, display::render_mrt, ScheduleOptions};
///
/// let mut b = DfgBuilder::new();
/// for _ in 0..5 {
///     b.op(Opcode::Shl, &[]);
/// }
/// let dfg = b.finish();
/// let la = AcceleratorConfig::paper_design();
/// let s = modulo_schedule(&dfg, &la, &ScheduleOptions::default(),
///                         &mut CostMeter::new()).unwrap();
/// let grid = render_mrt(&dfg, &s.schedule, &la);
/// assert!(grid.contains("cycle"));
/// assert!(grid.contains("Int0"));
/// ```
#[must_use]
pub fn render_mrt(dfg: &Dfg, schedule: &ModuloSchedule, config: &AcceleratorConfig) -> String {
    // Collect the units actually used, in a stable order.
    let mut columns: BTreeMap<(ResourceKind, usize), Vec<(u32, String)>> = BTreeMap::new();
    for v in dfg.schedulable_ops() {
        let (Some(t), Some((kind, unit))) = (schedule.time(v), schedule.unit(v)) else {
            continue;
        };
        let cycle = t.rem_euclid(i64::from(schedule.ii)) as u32;
        let stage = (t / i64::from(schedule.ii)) as u32;
        let marker = if stage > 0 { "*" } else { "" };
        let label = format!(
            "{}{marker}",
            dfg.node(v)
                .opcode()
                .map_or_else(|| v.to_string(), |op| format!("{v}:{op}"))
        );
        columns
            .entry((kind, unit))
            .or_default()
            .push((cycle, label));
    }
    let _ = config;

    let col_names: Vec<String> = columns
        .keys()
        .map(|&(kind, unit)| format!("{kind}{unit}"))
        .collect();
    let width = columns
        .values()
        .flatten()
        .map(|(_, l)| l.len())
        .chain(col_names.iter().map(String::len))
        .max()
        .unwrap_or(6)
        .max(6);

    let mut out = String::new();
    let _ = write!(out, "{:>5} |", "cycle");
    for name in &col_names {
        let _ = write!(out, " {name:^width$} |");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(7 + (width + 3) * col_names.len()));
    for cycle in 0..schedule.ii {
        let _ = write!(out, "{cycle:>5} |");
        for cells in columns.values() {
            let label = cells
                .iter()
                .find(|&&(c, _)| c == cycle)
                .map_or("", |(_, l)| l.as_str());
            let _ = write!(out, " {label:^width$} |");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(* = op executes in a later pipeline stage)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modulo_schedule, ScheduleOptions};
    use veal_ir::{CostMeter, DfgBuilder, Opcode};

    #[test]
    fn grid_has_ii_rows_and_all_ops() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]);
        let y = b.op(Opcode::Add, &[x]);
        let z = b.op(Opcode::Shl, &[y]);
        let _ = z;
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        let grid = render_mrt(&dfg, &s.schedule, &la);
        let rows = grid.lines().count();
        // header + rule + II rows + legend
        assert_eq!(rows as u32, 3 + s.schedule.ii);
        for op in ["mpy", "add", "shl"] {
            assert!(grid.contains(op), "missing {op} in\n{grid}");
        }
    }

    #[test]
    fn later_stage_ops_are_starred() {
        // A chain longer than II guarantees a later-stage op.
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Mul, &[]);
        let y = b.op(Opcode::Mul, &[x]);
        let z = b.op(Opcode::Add, &[y]);
        let _ = z;
        let dfg = b.finish();
        let la = AcceleratorConfig::paper_design();
        let s = modulo_schedule(
            &dfg,
            &la,
            &ScheduleOptions::default(),
            &mut CostMeter::new(),
        )
        .unwrap();
        let grid = render_mrt(&dfg, &s.schedule, &la);
        assert!(grid.contains('*'), "{grid}");
    }
}
