//! Seeded-corpus equivalence of the II-parametric MinDist against the
//! naive Floyd–Warshall kernel (ISSUE: ~200 random DFGs).
//!
//! Three properties, each over the same deterministic [`Rng64`] corpus:
//!
//! 1. `MinDistParam::eval_pair` equals `MinDist::compute_naive` for every
//!    op pair at every II in 1..=16 where the parametric structure is
//!    valid (and validity begins exactly at its RecMII).
//! 2. `swing_order` and `list_schedule` produce identical orders,
//!    schedules, *and abstract cost breakdowns* with the parametric path
//!    toggled on or off — the paper's measured translation cost must not
//!    depend on the host algorithm.
//! 3. `rec_mii_from_frontier` equals the metered Bellman–Ford `rec_mii`.

use veal_accel::{AcceleratorConfig, LatencyModel};
use veal_ir::rng::Rng64;
use veal_ir::streams::{separate, StreamSummary};
use veal_ir::{CostMeter, Dfg};
use veal_sched::{
    list_schedule, rec_mii, rec_mii_from_frontier, set_parametric_enabled, swing_order, MinDist,
    MinDistParam,
};
use veal_workloads::{synth_loop, SynthSpec};

const CASES: u64 = 200;

/// One corpus graph: a synthetic loop pushed through the same pipeline the
/// translator uses (stream separation, then greedy CCA mapping), so the
/// graphs carry stream ops, CCA pseudo-nodes, and loop-carried edges.
fn corpus_dfg(case: u64) -> Option<(Dfg, StreamSummary)> {
    let mut rng = Rng64::new(case.wrapping_mul(0x517C_C1B7_2722_0A95) ^ 0x5EED);
    let body = synth_loop(&SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(3, 24),
        fp_frac: if case.is_multiple_of(4) { 0.3 } else { 0.0 },
        loads: rng.gen_range(0, 4),
        stores: rng.gen_range(0, 2),
        recurrences: rng.gen_range(0, 3),
        rec_distance: 1 + (case as u32 % 3),
    });
    let mut meter = CostMeter::new();
    let sep = separate(&body.dfg, &mut meter).ok()?;
    let summary = sep.summary();
    let mut dfg = sep.dfg;
    veal_cca::map_cca(&mut dfg, &veal_cca::CcaSpec::paper(), &mut meter);
    Some((dfg, summary))
}

#[test]
fn parametric_matches_naive_for_all_pairs_at_every_ii() {
    let lat = LatencyModel::default();
    let mut pairs_checked = 0u64;
    for case in 0..CASES {
        let Some((dfg, _)) = corpus_dfg(case) else {
            continue;
        };
        let param = MinDistParam::compute(&dfg, &lat);
        for ii in 1..=16u32 {
            assert_eq!(
                param.valid_at(ii),
                ii >= param.rec_mii(),
                "case {case}: validity must begin exactly at RecMII"
            );
            if !param.valid_at(ii) {
                // Below RecMII the naive matrix has a positive diagonal
                // and the pruned frontiers are not comparable by design.
                continue;
            }
            let naive = MinDist::compute_naive(&dfg, &lat, ii, &mut CostMeter::new());
            for &u in param.ops() {
                for &v in param.ops() {
                    assert_eq!(
                        param.eval_pair(u, v, ii),
                        naive.get(u, v),
                        "case {case} ii {ii}: MinDist({u}, {v}) diverged"
                    );
                    pairs_checked += 1;
                }
            }
        }
    }
    assert!(
        pairs_checked > 100_000,
        "corpus degenerated: only {pairs_checked} pairs compared"
    );
}

#[test]
fn swing_and_schedule_identical_across_kernels() {
    let config = AcceleratorConfig::paper_design();
    let lat = &config.latencies;
    let mut scheduled = 0u32;
    for case in 0..CASES {
        let Some((dfg, summary)) = corpus_dfg(case) else {
            continue;
        };
        let mii = rec_mii(&dfg, lat, &mut CostMeter::new());

        let was = set_parametric_enabled(false);
        let mut m_naive = CostMeter::new();
        let order_naive = swing_order(&dfg, lat, mii, &mut m_naive);
        let sched_naive = list_schedule(&dfg, &config, &order_naive, mii, summary, &mut m_naive);
        set_parametric_enabled(true);
        let mut m_param = CostMeter::new();
        let order_param = swing_order(&dfg, lat, mii, &mut m_param);
        let sched_param = list_schedule(&dfg, &config, &order_param, mii, summary, &mut m_param);
        set_parametric_enabled(was);

        assert_eq!(order_naive, order_param, "case {case}: order diverged");
        assert_eq!(
            m_naive.breakdown(),
            m_param.breakdown(),
            "case {case}: abstract cost diverged"
        );
        match (sched_naive, sched_param) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.ii, b.ii, "case {case}: II diverged");
                assert_eq!(a.entries(), b.entries(), "case {case}: times diverged");
                for (op, _) in a.entries() {
                    assert_eq!(a.unit(op), b.unit(op), "case {case}: unit of {op} diverged");
                }
                scheduled += 1;
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "case {case}: error diverged"),
            (a, b) => panic!("case {case}: feasibility diverged: {a:?} vs {b:?}"),
        }
    }
    assert!(
        scheduled > 50,
        "corpus degenerated: {scheduled} schedulable"
    );
}

#[test]
fn frontier_rec_mii_matches_bellman_ford() {
    let lat = LatencyModel::default();
    for case in 0..CASES {
        let Some((dfg, _)) = corpus_dfg(case) else {
            continue;
        };
        assert_eq!(
            rec_mii_from_frontier(&dfg, &lat),
            rec_mii(&dfg, &lat, &mut CostMeter::new()),
            "case {case}: RecMII diverged"
        );
    }
}
