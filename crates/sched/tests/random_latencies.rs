//! Scheduler robustness under arbitrary latency models: whatever the
//! hardware's latencies, an accepted schedule must verify and respect its
//! bounds (dynamic translation is what makes latency evolution safe —
//! paper §4.2, "Static ResMII and RecMII Calculation").

use proptest::prelude::*;
use veal_accel::{AcceleratorConfig, LatencyModel};
use veal_ir::streams::separate;
use veal_ir::{CostMeter, Opcode};
use veal_sched::{modulo_schedule, verify_schedule, PriorityKind, ScheduleOptions};
use veal_workloads::{synth_loop, SynthSpec};

fn arb_latencies() -> impl Strategy<Value = LatencyModel> {
    (1u32..5, 1u32..7, 1u32..7, 1u32..9).prop_map(|(add, mul, sh, fadd)| {
        let mut m = LatencyModel::default();
        m.set(Opcode::Add, add);
        m.set(Opcode::Mul, mul);
        m.set(Opcode::Shl, sh);
        m.set(Opcode::Shr, sh);
        m.set(Opcode::FAdd, fadd);
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedules_verify_under_any_latency_model(
        seed in any::<u64>(),
        ops in 6usize..32,
        lat in arb_latencies(),
        priority in prop_oneof![Just(PriorityKind::Swing), Just(PriorityKind::Height)],
    ) {
        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: if seed % 3 == 0 { 0.4 } else { 0.0 },
            loads: 2 + (seed as usize % 3),
            stores: 1,
            recurrences: (seed % 2) as usize,
            rec_distance: 2 + (ops as u32 / 6),
        });
        let mut config = AcceleratorConfig::paper_design();
        config.latencies = lat;

        let mut meter = CostMeter::new();
        let Ok(sep) = separate(&body.dfg, &mut meter) else {
            return Ok(());
        };
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        veal_cca::map_cca(&mut dfg, &veal_cca::CcaSpec::paper(), &mut meter);

        let opts = ScheduleOptions {
            priority,
            static_order: None,
            streams: Some(summary),
        };
        if let Ok(s) = modulo_schedule(&dfg, &config, &opts, &mut CostMeter::new()) {
            let defects = verify_schedule(&dfg, &s.schedule, &config);
            prop_assert!(defects.is_empty(), "{defects:?}");
            prop_assert!(s.schedule.ii <= config.max_ii);
            prop_assert!(s.registers.pressure.fits());
        }
    }

    #[test]
    fn longer_latencies_never_shrink_ii(seed in any::<u64>(), ops in 6usize..24) {
        // Monotonicity: slowing every unit down cannot lower the achieved
        // II on the same loop and order policy.
        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: 0.0,
            loads: 2,
            stores: 1,
            recurrences: 1,
            rec_distance: 2 + ops as u32 / 4,
        });
        let mut meter = CostMeter::new();
        let Ok(sep) = separate(&body.dfg, &mut meter) else { return Ok(()); };
        let summary = sep.summary();
        let dfg = sep.dfg;

        let fast = AcceleratorConfig::paper_design();
        let mut slow = AcceleratorConfig::paper_design();
        let mut lat = LatencyModel::default();
        lat.set(Opcode::Mul, 4);
        lat.set(Opcode::Add, 2);
        slow.latencies = lat;

        let opts = ScheduleOptions {
            priority: PriorityKind::Swing,
            static_order: None,
            streams: Some(summary),
        };
        let a = modulo_schedule(&dfg, &fast, &opts, &mut CostMeter::new());
        let b = modulo_schedule(&dfg, &slow, &opts, &mut CostMeter::new());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!(b.mii >= a.mii, "slow MII {} < fast MII {}", b.mii, a.mii);
        }
    }
}
