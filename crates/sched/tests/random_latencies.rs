//! Scheduler robustness under arbitrary latency models: whatever the
//! hardware's latencies, an accepted schedule must verify and respect its
//! bounds (dynamic translation is what makes latency evolution safe —
//! paper §4.2, "Static ResMII and RecMII Calculation").

use veal_accel::{AcceleratorConfig, LatencyModel};
use veal_ir::rng::Rng64;
use veal_ir::streams::separate;
use veal_ir::{CostMeter, Opcode};
use veal_sched::{modulo_schedule, verify_schedule, PriorityKind, ScheduleOptions};
use veal_workloads::{synth_loop, SynthSpec};

fn arb_latencies(rng: &mut Rng64) -> LatencyModel {
    let add = rng.gen_range(1, 5) as u32;
    let mul = rng.gen_range(1, 7) as u32;
    let sh = rng.gen_range(1, 7) as u32;
    let fadd = rng.gen_range(1, 9) as u32;
    let mut m = LatencyModel::default();
    m.set(Opcode::Add, add);
    m.set(Opcode::Mul, mul);
    m.set(Opcode::Shl, sh);
    m.set(Opcode::Shr, sh);
    m.set(Opcode::FAdd, fadd);
    m
}

#[test]
fn schedules_verify_under_any_latency_model() {
    for case in 0u64..32 {
        let mut rng = Rng64::new(case.wrapping_mul(0xA24B_AED4) ^ 0x1CE);
        let seed = rng.next_u64();
        let ops = rng.gen_range(6, 32);
        let lat = arb_latencies(&mut rng);
        let priority = if rng.gen_bool(0.5) {
            PriorityKind::Swing
        } else {
            PriorityKind::Height
        };

        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: if seed.is_multiple_of(3) { 0.4 } else { 0.0 },
            loads: 2 + (seed as usize % 3),
            stores: 1,
            recurrences: (seed % 2) as usize,
            rec_distance: 2 + (ops as u32 / 6),
        });
        let mut config = AcceleratorConfig::paper_design();
        config.latencies = lat;

        let mut meter = CostMeter::new();
        let Ok(sep) = separate(&body.dfg, &mut meter) else {
            continue;
        };
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        veal_cca::map_cca(&mut dfg, &veal_cca::CcaSpec::paper(), &mut meter);

        let opts = ScheduleOptions {
            priority,
            static_order: None,
            streams: Some(summary),
        };
        if let Ok(s) = modulo_schedule(&dfg, &config, &opts, &mut CostMeter::new()) {
            let defects = verify_schedule(&dfg, &s.schedule, &config);
            assert!(defects.is_empty(), "case {case}: {defects:?}");
            assert!(s.schedule.ii <= config.max_ii, "case {case}");
            assert!(s.registers.pressure.fits(), "case {case}");
        }
    }
}

#[test]
fn longer_latencies_never_shrink_ii() {
    // Monotonicity: slowing every unit down cannot lower the achieved
    // II on the same loop and order policy.
    for case in 0u64..32 {
        let mut rng = Rng64::new(case.wrapping_mul(0x9E37_79B9) ^ 0xB0B);
        let seed = rng.next_u64();
        let ops = rng.gen_range(6, 24);
        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: 0.0,
            loads: 2,
            stores: 1,
            recurrences: 1,
            rec_distance: 2 + ops as u32 / 4,
        });
        let mut meter = CostMeter::new();
        let Ok(sep) = separate(&body.dfg, &mut meter) else {
            continue;
        };
        let summary = sep.summary();
        let dfg = sep.dfg;

        let fast = AcceleratorConfig::paper_design();
        let mut slow = AcceleratorConfig::paper_design();
        let mut lat = LatencyModel::default();
        lat.set(Opcode::Mul, 4);
        lat.set(Opcode::Add, 2);
        slow.latencies = lat;

        let opts = ScheduleOptions {
            priority: PriorityKind::Swing,
            static_order: None,
            streams: Some(summary),
        };
        let a = modulo_schedule(&dfg, &fast, &opts, &mut CostMeter::new());
        let b = modulo_schedule(&dfg, &slow, &opts, &mut CostMeter::new());
        if let (Ok(a), Ok(b)) = (a, b) {
            assert!(
                b.mii >= a.mii,
                "case {case}: slow MII {} < fast MII {}",
                b.mii,
                a.mii
            );
        }
    }
}
