//! Regenerates the golden semantic checksums in `src/golden.rs`.
//! Run after an intentional kernel change and paste the output in.

use veal_workloads::{kernels, semantic_checksum};

fn main() {
    let list: Vec<(&str, veal_ir::LoopBody)> = vec![
        ("dot_product", kernels::dot_product()),
        ("daxpy", kernels::daxpy()),
        ("fir8", kernels::fir(8)),
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("autocorr", kernels::autocorr()),
        ("viterbi_acs", kernels::viterbi_acs()),
        ("quantize", kernels::quantize()),
        ("stencil3", kernels::stencil3()),
        ("crypto4", kernels::crypto_round(4)),
        ("swim_stencil", kernels::swim_stencil()),
        ("mgrid27", kernels::mgrid_resid(27)),
        ("color_convert", kernels::color_convert()),
        ("bit_unpack", kernels::bit_unpack()),
        ("sobel3", kernels::sobel3()),
        ("alpha_blend", kernels::alpha_blend()),
        ("rgb_to_gray", kernels::rgb_to_gray()),
        ("median3", kernels::median3()),
        ("matmul_tile", kernels::matmul_tile()),
        ("lms_adapt", kernels::lms_adapt()),
    ];
    for (name, body) in list {
        match semantic_checksum(&body) {
            Some(h) => println!("(\"{name}\", {h:#018x}),"),
            None => println!("// {name}: not interpretable"),
        }
    }
}
