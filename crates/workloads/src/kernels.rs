//! Hand-built inner-loop kernels.
//!
//! Each kernel is a faithful dataflow rendition of a real media/FP inner
//! loop, in the *full binary form*: compute ops, `Load`/`Store` ops fed by
//! affine address generators, and the counted-control pattern (induction
//! increment, compare, back branch) — the shape the VM's stream separator
//! expects (paper Figure 5).

use veal_ir::dfg::Dfg;
use veal_ir::{DfgBuilder, LoopBody, OpId, Opcode};

/// Builder wrapper that adds the stream/control idioms kernels share.
#[derive(Debug, Default)]
pub struct KernelCtx {
    b: DfgBuilder,
}

impl KernelCtx {
    /// Creates an empty kernel context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a compute op.
    pub fn op(&mut self, opcode: Opcode, inputs: &[OpId]) -> OpId {
        self.b.op(opcode, inputs)
    }

    /// Adds a constant.
    pub fn constant(&mut self, v: i64) -> OpId {
        self.b.constant(v)
    }

    /// Adds a scalar live-in.
    pub fn live_in(&mut self) -> OpId {
        self.b.live_in()
    }

    /// Adds a loop-carried dependence.
    pub fn loop_carried(&mut self, src: OpId, dst: OpId, distance: u32) {
        self.b.loop_carried(src, dst, distance);
    }

    /// Marks a live-out value.
    pub fn mark_live_out(&mut self, id: OpId) {
        self.b.mark_live_out(id);
    }

    /// Adds a streaming load: an affine address generator (`addr += stride`)
    /// feeding a `Load`.
    pub fn load(&mut self, stride: i64) -> OpId {
        let step = self.b.constant(stride);
        let addr = self.b.op(Opcode::Add, &[step]);
        self.b.loop_carried(addr, addr, 1);
        self.b.op(Opcode::Load, &[addr])
    }

    /// Adds a streaming store of `value`.
    pub fn store(&mut self, stride: i64, value: OpId) -> OpId {
        let step = self.b.constant(stride);
        let addr = self.b.op(Opcode::Add, &[step]);
        self.b.loop_carried(addr, addr, 1);
        self.b.op(Opcode::Store, &[value, addr])
    }

    /// Appends the counted-control pattern (`i += 1; cmp i, n; brc`) and
    /// finishes the graph.
    #[must_use]
    pub fn finish_counted(mut self) -> Dfg {
        let one = self.b.constant(1);
        let i = self.b.op(Opcode::Add, &[one]);
        self.b.loop_carried(i, i, 1);
        let n = self.b.live_in();
        let c = self.b.op(Opcode::CmpLt, &[i, n]);
        self.b.op(Opcode::BrCond, &[c]);
        self.b.finish()
    }

    /// Finishes without control (a pre-separated compute view, used for
    /// modelling unrolled raw binaries).
    #[must_use]
    pub fn finish_preseparated(self) -> Dfg {
        self.b.finish()
    }
}

/// `acc += x[i] * y[i]` — double-precision dot product (every BLAS-1 user).
#[must_use]
pub fn dot_product() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(8);
    let y = k.load(8);
    let p = k.op(Opcode::FMul, &[x, y]);
    let acc = k.op(Opcode::FAdd, &[p]);
    k.loop_carried(acc, acc, 1);
    k.mark_live_out(acc);
    LoopBody::new("dot_product", k.finish_counted())
}

/// `y[i] = a*x[i] + y[i]` — daxpy.
#[must_use]
pub fn daxpy() -> LoopBody {
    let mut k = KernelCtx::new();
    let a = k.live_in();
    let x = k.load(8);
    let y = k.load(8);
    let p = k.op(Opcode::FMul, &[a, x]);
    let s = k.op(Opcode::FAdd, &[p, y]);
    k.store(8, s);
    LoopBody::new("daxpy", k.finish_counted())
}

/// `y[i] = Σ_j h[j]·x[i+j]` — integer FIR filter with `taps` taps; each
/// shifted input window is its own memory stream, which is why FIR-heavy
/// apps drove the paper's 16-load-stream requirement.
#[must_use]
pub fn fir(taps: usize) -> LoopBody {
    let mut k = KernelCtx::new();
    let mut sum: Option<OpId> = None;
    for _ in 0..taps {
        let x = k.load(4);
        let h = k.live_in();
        let p = k.op(Opcode::Mul, &[x, h]);
        sum = Some(match sum {
            Some(s) => k.op(Opcode::Add, &[s, p]),
            None => p,
        });
    }
    let scaled = {
        let s = sum.expect("taps >= 1");
        let sh = k.constant(15);
        k.op(Opcode::Sra, &[s, sh])
    };
    k.store(4, scaled);
    LoopBody::new(format!("fir{taps}"), k.finish_counted())
}

/// One ADPCM predictor step (rawcaudio's hot loop): shifts, masks,
/// saturation, two predictor recurrences. CCA-rich integer code.
#[must_use]
pub fn adpcm_step() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(2);
    // Predictor state (valpred) recurrence.
    let step_tab = k.load(4);
    let diff = k.op(Opcode::Sub, &[x]);
    let sign = k.op(Opcode::CmpLt, &[diff]);
    let mag = k.op(Opcode::Abs, &[diff]);
    let sh3 = k.constant(3);
    let d3 = k.op(Opcode::Shr, &[mag, sh3]);
    let masked = k.op(Opcode::And, &[d3]);
    let delta = k.op(Opcode::Or, &[masked, sign]);
    let scaled = k.op(Opcode::Mul, &[delta, step_tab]);
    let valpred = k.op(Opcode::Add, &[scaled]);
    k.loop_carried(valpred, diff, 1); // diff = x - valpred(prev)
    k.loop_carried(valpred, valpred, 1);
    // Saturate.
    let hi = k.constant(32767);
    let lo = k.constant(-32768);
    let clip1 = k.op(Opcode::Min, &[valpred, hi]);
    let clip2 = k.op(Opcode::Max, &[clip1, lo]);
    // Step-size index recurrence.
    let idx_adj = k.op(Opcode::Add, &[delta]);
    let idx_hi = k.constant(88);
    let idx = k.op(Opcode::Min, &[idx_adj, idx_hi]);
    let zero = k.constant(0);
    let idx2 = k.op(Opcode::Max, &[idx, zero]);
    k.loop_carried(idx2, idx_adj, 1);
    k.store(1, delta);
    k.mark_live_out(clip2);
    LoopBody::new("adpcm_step", k.finish_counted())
}

/// An 8-point IDCT butterfly row (mpeg2dec / djpeg): 8 loads, constant
/// multiplies, add/sub butterflies, 8 stores.
#[must_use]
pub fn idct_row() -> LoopBody {
    let mut k = KernelCtx::new();
    let ins: Vec<OpId> = (0..8).map(|_| k.load(16)).collect();
    // Stage 1: constant multiplies on odd coefficients.
    let mut stage1 = Vec::new();
    for (j, &x) in ins.iter().enumerate() {
        if j % 2 == 1 {
            let c = k.live_in();
            let m = k.op(Opcode::Mul, &[x, c]);
            let sh = k.constant(11);
            stage1.push(k.op(Opcode::Sra, &[m, sh]));
        } else {
            stage1.push(x);
        }
    }
    // Stage 2: butterflies.
    let mut outs = Vec::new();
    for j in 0..4 {
        let a = stage1[j];
        let b2 = stage1[7 - j];
        let s = k.op(Opcode::Add, &[a, b2]);
        let d = k.op(Opcode::Sub, &[a, b2]);
        outs.push(s);
        outs.push(d);
    }
    for v in outs {
        let hi = k.constant(255);
        let zero = k.constant(0);
        let c1 = k.op(Opcode::Min, &[v, hi]);
        let c2 = k.op(Opcode::Max, &[c1, zero]);
        k.store(16, c2);
    }
    LoopBody::new("idct_row", k.finish_counted())
}

/// `acc += x[i] * x[i+lag]` — autocorrelation (gsm, g721).
#[must_use]
pub fn autocorr() -> LoopBody {
    let mut k = KernelCtx::new();
    let a = k.load(2);
    let b2 = k.load(2);
    let p = k.op(Opcode::Mul, &[a, b2]);
    let sh = k.constant(1);
    let ps = k.op(Opcode::Sra, &[p, sh]);
    let acc = k.op(Opcode::Add, &[ps]);
    k.loop_carried(acc, acc, 1);
    k.mark_live_out(acc);
    LoopBody::new("autocorr", k.finish_counted())
}

/// Viterbi add-compare-select (g721/gsm decoders): pure CCA food.
#[must_use]
pub fn viterbi_acs() -> LoopBody {
    let mut k = KernelCtx::new();
    let m0 = k.load(4);
    let m1 = k.load(4);
    let bm0 = k.load(4);
    let bm1 = k.load(4);
    let p0 = k.op(Opcode::Add, &[m0, bm0]);
    let p1 = k.op(Opcode::Add, &[m1, bm1]);
    let best = k.op(Opcode::Min, &[p0, p1]);
    let c = k.op(Opcode::CmpLt, &[p0, p1]);
    let sel = k.op(Opcode::Select, &[c, p0, p1]);
    let norm = k.op(Opcode::Sub, &[sel, best]);
    k.store(4, best);
    k.store(1, norm);
    LoopBody::new("viterbi_acs", k.finish_counted())
}

/// Quantization with saturation (cjpeg/mpeg2enc).
#[must_use]
pub fn quantize() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(2);
    let q = k.load(2);
    let m = k.op(Opcode::Mul, &[x, q]);
    let sh = k.constant(16);
    let s = k.op(Opcode::Sra, &[m, sh]);
    let hi = k.constant(2047);
    let lo = k.constant(-2048);
    let c1 = k.op(Opcode::Min, &[s, hi]);
    let c2 = k.op(Opcode::Max, &[c1, lo]);
    k.store(2, c2);
    LoopBody::new("quantize", k.finish_counted())
}

/// 3-point integer stencil (epic wavelet lifting).
#[must_use]
pub fn stencil3() -> LoopBody {
    let mut k = KernelCtx::new();
    let a = k.load(4);
    let b2 = k.load(4);
    let c = k.load(4);
    let w = k.live_in();
    let s1 = k.op(Opcode::Add, &[a, c]);
    let m = k.op(Opcode::Mul, &[b2, w]);
    let sh = k.constant(2);
    let s2 = k.op(Opcode::Sra, &[s1, sh]);
    let o = k.op(Opcode::Sub, &[m, s2]);
    k.store(4, o);
    LoopBody::new("stencil3", k.finish_counted())
}

/// One round of a software cipher (pegwit): a deep chain of xor/add/or
/// mixing with rotations, several long integer recurrences. Large loops of
/// this shape are what made pegwit's dynamic translation so expensive.
///
/// `rounds` controls the depth (ops ≈ 8 · rounds).
#[must_use]
pub fn crypto_round(rounds: usize) -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(4);
    let key = k.live_in();
    let mut s0 = k.op(Opcode::Xor, &[x, key]);
    let first0 = s0;
    let mut s1 = k.op(Opcode::Add, &[x, key]);
    let first1 = s1;
    for r in 0..rounds {
        // Real ciphers rotate by a small set of fixed amounts; distinct
        // constants would each pin a register.
        let rot = k.constant(if r % 2 == 0 { 3 } else { 5 });
        let rot2 = k.constant(7);
        let hi = k.op(Opcode::Shl, &[s0, rot]);
        let lo = k.op(Opcode::Shr, &[s0, rot]);
        let rotv = k.op(Opcode::Or, &[hi, lo]);
        let hi2 = k.op(Opcode::Shl, &[s1, rot2]);
        let lo2 = k.op(Opcode::Shr, &[s1, rot2]);
        let rotw = k.op(Opcode::Or, &[hi2, lo2]);
        let mix = k.op(Opcode::Xor, &[rotv, rotw]);
        let sum = k.op(Opcode::Add, &[mix, key]);
        let and = k.op(Opcode::And, &[sum, rotv]);
        s1 = k.op(Opcode::Sub, &[rotw, and]);
        s0 = k.op(Opcode::Xor, &[mix, sum]);
    }
    // Ciphertext chaining across interleaved blocks: the feedback spans
    // `rounds` iterations, so the recurrence-constrained II stays ~5-6 even
    // for deep loops (the cipher processes independent lanes in between).
    let feedback_distance = (rounds as u32).max(2);
    k.loop_carried(s0, first0, feedback_distance);
    // Only one state word chains across blocks (CBC-style); chaining both
    // would double the cross-iteration register lanes.
    let _ = first1;
    k.store(4, s0);
    k.store(4, s1);
    LoopBody::new(format!("crypto{rounds}"), k.finish_counted())
}

/// 5-point double-precision stencil (171.swim's shallow-water update).
#[must_use]
pub fn swim_stencil() -> LoopBody {
    let mut k = KernelCtx::new();
    let c = k.load(8);
    let n = k.load(8);
    let s = k.load(8);
    let e = k.load(8);
    let w = k.load(8);
    let cw = k.live_in();
    let sum_ns = k.op(Opcode::FAdd, &[n, s]);
    let sum_ew = k.op(Opcode::FAdd, &[e, w]);
    let sum = k.op(Opcode::FAdd, &[sum_ns, sum_ew]);
    let scaled = k.op(Opcode::FMul, &[sum, cw]);
    let out = k.op(Opcode::FSub, &[scaled, c]);
    k.store(8, out);
    LoopBody::new("swim_stencil", k.finish_counted())
}

/// A large multigrid residual expression (172.mgrid): the fourth-order
/// 27-point stencil in its shared-coefficient form — neighbours at the same
/// distance share one coefficient, so `points` loads feed group sums that
/// are scaled by only four live-in weights. `points = 27` yields a ~90-op
/// loop with 27 load streams: more streams than the design point supports,
/// so the static compiler must fission it (paper §3.1), and its Θ(n³)
/// priority computation dominates mgrid's translation time.
#[must_use]
pub fn mgrid_resid(points: usize) -> LoopBody {
    let mut k = KernelCtx::new();
    // Distance groups of the 27-point stencil: centre, faces, edges,
    // corners (1 + 6 + 12 + 8). Smaller `points` truncate the tail.
    let group_sizes = [1usize, 6, 12, 8];
    let mut remaining = points;
    let mut scaled_groups = Vec::new();
    for &g in &group_sizes {
        if remaining == 0 {
            break;
        }
        let take = g.min(remaining);
        remaining -= take;
        let mut sum: Option<OpId> = None;
        for _ in 0..take {
            let x = k.load(8);
            sum = Some(match sum {
                Some(s) => k.op(Opcode::FAdd, &[s, x]),
                None => x,
            });
        }
        let coeff = k.live_in();
        let scaled = k.op(Opcode::FMul, &[sum.expect("take >= 1"), coeff]);
        scaled_groups.push(scaled);
    }
    let mut total = scaled_groups[0];
    for &g in &scaled_groups[1..] {
        total = k.op(Opcode::FAdd, &[total, g]);
    }
    let r = k.load(8);
    let resid = k.op(Opcode::FSub, &[r, total]);
    k.store(8, resid);
    LoopBody::new(format!("mgrid_resid{points}"), k.finish_counted())
}

/// Newton–Raphson reciprocal-sqrt iteration: a long FP recurrence that
/// bounds II from below (RecMII-dominated loop).
#[must_use]
pub fn fp_recurrence() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(8);
    let half = k.live_in();
    let y = k.op(Opcode::FMul, &[x]);
    let first = y;
    let sq = k.op(Opcode::FMul, &[y, y]);
    let prod = k.op(Opcode::FMul, &[sq, half]);
    let upd = k.op(Opcode::FSub, &[prod]);
    let next = k.op(Opcode::FMul, &[y, upd]);
    // Two interleaved Newton streams: the value feeds back two iterations
    // later, halving the recurrence-constrained II.
    k.loop_carried(next, first, 2);
    k.store(8, next);
    LoopBody::new("fp_recurrence", k.finish_counted())
}

/// Color-space conversion (djpeg): 3 loads, constant muls, adds, clamps,
/// 3 stores.
#[must_use]
pub fn color_convert() -> LoopBody {
    let mut k = KernelCtx::new();
    let y = k.load(1);
    let cb = k.load(1);
    let cr = k.load(1);
    for plane in 0..3 {
        let c1 = k.live_in();
        let c2 = k.live_in();
        let a = if plane == 0 { cb } else { cr };
        let m1 = k.op(Opcode::Mul, &[a, c1]);
        let m2 = k.op(Opcode::Mul, &[if plane == 2 { cb } else { cr }, c2]);
        let sum = k.op(Opcode::Add, &[m1, m2]);
        let sh = k.constant(16);
        let scaled = k.op(Opcode::Sra, &[sum, sh]);
        let with_y = k.op(Opcode::Add, &[scaled, y]);
        let hi = k.constant(255);
        let zero = k.constant(0);
        let cl = k.op(Opcode::Min, &[with_y, hi]);
        let cl2 = k.op(Opcode::Max, &[cl, zero]);
        k.store(1, cl2);
    }
    LoopBody::new("color_convert", k.finish_counted())
}

/// Bit unpacking (gsm/g721 decode): shifts and masks from one stream into
/// two.
#[must_use]
pub fn bit_unpack() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(1);
    let sh4 = k.constant(4);
    let mask = k.constant(0xF);
    let hi = k.op(Opcode::Shr, &[x, sh4]);
    let lo = k.op(Opcode::And, &[x, mask]);
    let bias = k.live_in();
    let hi2 = k.op(Opcode::Sub, &[hi, bias]);
    let lo2 = k.op(Opcode::Sub, &[lo, bias]);
    k.store(2, hi2);
    k.store(2, lo2);
    LoopBody::new("bit_unpack", k.finish_counted())
}

/// 3x3 Sobel edge detection (epic/image kernels): 6 loads (two stencil
/// rows reused via shifted streams), weighted sums, absolute values,
/// saturation.
#[must_use]
pub fn sobel3() -> LoopBody {
    let mut k = KernelCtx::new();
    let rows: Vec<OpId> = (0..6).map(|_| k.load(1)).collect();
    let two = k.constant(2);
    // Horizontal gradient.
    let l = k.op(Opcode::Add, &[rows[0], rows[3]]);
    let lm = k.op(Opcode::Mul, &[rows[1], two]);
    let left = k.op(Opcode::Add, &[l, lm]);
    let r = k.op(Opcode::Add, &[rows[2], rows[5]]);
    let rm = k.op(Opcode::Mul, &[rows[4], two]);
    let right = k.op(Opcode::Add, &[r, rm]);
    let gx = k.op(Opcode::Sub, &[left, right]);
    let mag = k.op(Opcode::Abs, &[gx]);
    let hi = k.constant(255);
    let clip = k.op(Opcode::Min, &[mag, hi]);
    k.store(1, clip);
    LoopBody::new("sobel3", k.finish_counted())
}

/// Alpha blending (compositing inner loop): two pixel streams mixed by a
/// live-in alpha; pure CCA-friendly integer arithmetic plus one multiply
/// pair.
#[must_use]
pub fn alpha_blend() -> LoopBody {
    let mut k = KernelCtx::new();
    let fg = k.load(1);
    let bg = k.load(1);
    let alpha = k.live_in();
    let inv = k.constant(256);
    let ia = k.op(Opcode::Sub, &[inv, alpha]);
    let a = k.op(Opcode::Mul, &[fg, alpha]);
    let b2 = k.op(Opcode::Mul, &[bg, ia]);
    let sum = k.op(Opcode::Add, &[a, b2]);
    let sh = k.constant(8);
    let out = k.op(Opcode::Shr, &[sum, sh]);
    k.store(1, out);
    LoopBody::new("alpha_blend", k.finish_counted())
}

/// RGB-to-grayscale conversion: three plane streams, constant weights.
#[must_use]
pub fn rgb_to_gray() -> LoopBody {
    let mut k = KernelCtx::new();
    let r = k.load(1);
    let g = k.load(1);
    let b2 = k.load(1);
    let wr = k.constant(77);
    let wg = k.constant(150);
    let wb = k.constant(29);
    let mr = k.op(Opcode::Mul, &[r, wr]);
    let mg = k.op(Opcode::Mul, &[g, wg]);
    let mb = k.op(Opcode::Mul, &[b2, wb]);
    let s1 = k.op(Opcode::Add, &[mr, mg]);
    let s2 = k.op(Opcode::Add, &[s1, mb]);
    let sh = k.constant(8);
    let gray = k.op(Opcode::Shr, &[s2, sh]);
    k.store(1, gray);
    LoopBody::new("rgb_to_gray", k.finish_counted())
}

/// Fixed-width bit packing (entropy coder back end): accumulate two
/// fields into a word stream with shifts and masks, carrying the bit
/// buffer across iterations.
#[must_use]
pub fn bit_pack() -> LoopBody {
    let mut k = KernelCtx::new();
    let sym = k.load(2);
    let len = k.load(2);
    let buf = k.op(Opcode::Shl, &[sym]);
    let merged = k.op(Opcode::Or, &[buf, len]);
    let mask = k.constant(0xFFFF);
    let low = k.op(Opcode::And, &[merged, mask]);
    k.loop_carried(merged, buf, 1); // bit buffer carries over
    k.store(2, low);
    LoopBody::new("bit_pack", k.finish_counted())
}

/// The inner loop of a tiled double-precision matrix multiply: two loads,
/// an FP multiply-accumulate chain over a distance-2 unrolled accumulator
/// pair (classic FP-pipelining shape).
#[must_use]
pub fn matmul_tile() -> LoopBody {
    let mut k = KernelCtx::new();
    let a = k.load(8);
    let b2 = k.load(8);
    let p = k.op(Opcode::FMul, &[a, b2]);
    let acc = k.op(Opcode::FAdd, &[p]);
    k.loop_carried(acc, acc, 2); // two interleaved partial sums
    k.mark_live_out(acc);
    LoopBody::new("matmul_tile", k.finish_counted())
}

/// LMS adaptive-filter update (056.ear-style): the coefficient update
/// feeds back with distance 1, bounding II by the FP recurrence.
#[must_use]
pub fn lms_adapt() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(8);
    let w = k.load(8);
    let mu_e = k.live_in();
    let grad = k.op(Opcode::FMul, &[x, mu_e]);
    let w_new = k.op(Opcode::FAdd, &[w, grad]);
    k.store(8, w_new);
    let y = k.op(Opcode::FMul, &[x, w_new]);
    let acc = k.op(Opcode::FAdd, &[y]);
    k.loop_carried(acc, acc, 1);
    k.mark_live_out(acc);
    LoopBody::new("lms_adapt", k.finish_counted())
}

/// 3-tap median filter via a min/max network — entirely CCA-supported
/// compute.
#[must_use]
pub fn median3() -> LoopBody {
    let mut k = KernelCtx::new();
    let a = k.load(1);
    let b2 = k.load(1);
    let c = k.load(1);
    let hi_ab = k.op(Opcode::Max, &[a, b2]);
    let lo_ab = k.op(Opcode::Min, &[a, b2]);
    let hi2 = k.op(Opcode::Min, &[hi_ab, c]);
    let med = k.op(Opcode::Max, &[lo_ab, hi2]);
    k.store(1, med);
    LoopBody::new("median3", k.finish_counted())
}

/// A while-loop shape (data-dependent exit): classified as needing
/// speculation support, never accelerated (paper Figure 2's gray segment).
#[must_use]
pub fn while_scan() -> LoopBody {
    let mut b = DfgBuilder::new();
    let step = b.constant(1);
    let addr = b.op(Opcode::Add, &[step]);
    b.loop_carried(addr, addr, 1);
    let x = b.op(Opcode::Load, &[addr]);
    let zero = b.constant(0);
    let c = b.op(Opcode::CmpNe, &[x, zero]);
    b.op(Opcode::BrCond, &[c]);
    LoopBody::new("while_scan", b.finish())
}

/// A loop around an opaque library call (paper Figure 2's "Subroutine"
/// segment).
#[must_use]
pub fn call_loop() -> LoopBody {
    let mut k = KernelCtx::new();
    let x = k.load(8);
    let r = k.op(Opcode::Call, &[x]);
    k.store(8, r);
    LoopBody::new("call_loop", k.finish_counted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{classify_loop, verify_dfg, LoopClass};

    fn schedulable_kernels() -> Vec<LoopBody> {
        vec![
            dot_product(),
            daxpy(),
            fir(8),
            adpcm_step(),
            idct_row(),
            autocorr(),
            viterbi_acs(),
            quantize(),
            stencil3(),
            crypto_round(6),
            swim_stencil(),
            mgrid_resid(27),
            fp_recurrence(),
            color_convert(),
            bit_unpack(),
            sobel3(),
            alpha_blend(),
            rgb_to_gray(),
            bit_pack(),
            matmul_tile(),
            lms_adapt(),
            median3(),
        ]
    }

    #[test]
    fn all_kernels_are_well_formed() {
        for k in schedulable_kernels() {
            assert_eq!(verify_dfg(&k.dfg), Ok(()), "kernel {}", k.name);
        }
        assert!(verify_dfg(&while_scan().dfg).is_ok());
        assert!(verify_dfg(&call_loop().dfg).is_ok());
    }

    #[test]
    fn compute_kernels_are_modulo_schedulable() {
        for k in schedulable_kernels() {
            assert_eq!(
                classify_loop(&k.dfg),
                LoopClass::ModuloSchedulable,
                "kernel {}",
                k.name
            );
        }
    }

    #[test]
    fn special_kernels_classify_correctly() {
        assert_eq!(
            classify_loop(&while_scan().dfg),
            LoopClass::NeedsSpeculation
        );
        assert_eq!(classify_loop(&call_loop().dfg), LoopClass::Subroutine);
    }

    #[test]
    fn mgrid_is_large() {
        assert!(mgrid_resid(27).len() > 80);
    }

    #[test]
    fn crypto_depth_scales() {
        assert!(crypto_round(12).len() > crypto_round(4).len());
    }

    #[test]
    fn fir_stream_count_matches_taps() {
        use veal_ir::streams::separate;
        use veal_ir::CostMeter;
        let body = fir(8);
        let sep = separate(&body.dfg, &mut CostMeter::new()).expect("fir separates");
        assert_eq!(sep.summary().loads, 8);
        assert_eq!(sep.summary().stores, 1);
    }

    #[test]
    fn dot_product_has_fp_accumulator_recurrence() {
        let body = dot_product();
        assert!(!body.dfg.recurrences().is_empty());
    }
}
