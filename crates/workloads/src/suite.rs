//! The 27-application benchmark suite.
//!
//! Names and per-benchmark behaviours follow the paper's evaluation:
//! MediaBench (ADPCM, G.721, GSM, EPIC, MPEG-2, JPEG, Pegwit) plus SPECfp
//! (alvinn, ear, swim, mgrid, nasa7, art) form the media/FP subset used in
//! the acceleration studies; SPECint-style applications appear only in the
//! Figure 2 classification. All generation is deterministic.
//!
//! Calibration anchors from the paper:
//! * rawcaudio has one critical loop, so translation cost is amortized
//!   away;
//! * mpeg2dec runs many distinct mid-size loops over a short execution,
//!   so fully dynamic translation erases most of its benefit (2.1 → 1.15);
//! * pegwitenc and 172.mgrid have few but very large loops whose Θ(n³)
//!   priority computation wipes out the entire benefit when run
//!   dynamically;
//! * most media apps need static transforms (inlining, predication,
//!   re-rolling, fission) before *any* hot loop fits the accelerator
//!   (Figure 7's zeros).

use crate::app::{unrolled, with_call, with_guard, AppLoop, Application};
use crate::kernels;
use crate::synth::{synth_loop, SynthSpec};
use veal_ir::{LoopProfile, Opcode};
use veal_opt::{CalleeFragment, RawLoop};

/// Every benchmark name, media/FP subset first.
pub const SUITE_NAMES: &[&str] = &[
    // Media / FP (the acceleration subset, paper Fig. 2 left).
    "rawcaudio",
    "rawdaudio",
    "g721encode",
    "g721decode",
    "gsmencode",
    "gsmdecode",
    "epic",
    "unepic",
    "mpeg2dec",
    "mpeg2enc",
    "cjpeg",
    "djpeg",
    "pegwitenc",
    "pegwitdec",
    "052.alvinn",
    "056.ear",
    "171.swim",
    "172.mgrid",
    "093.nasa7",
    "179.art",
    // Integer SPEC (classification only, paper Fig. 2 right).
    "124.m88ksim",
    "129.compress",
    "164.gzip",
    "181.mcf",
    "197.parser",
    "255.vortex",
    "300.twolf",
];

#[allow(dead_code)]
fn abs_fragment() -> CalleeFragment {
    CalleeFragment::build(1, |b, p| b.op(Opcode::Abs, &[p[0]]))
}

fn saturate_fragment() -> CalleeFragment {
    CalleeFragment::build(1, |b, p| {
        let zero = b.constant(0);
        let hi = b.constant(255);
        let lo = b.op(Opcode::Max, &[p[0], zero]);
        b.op(Opcode::Min, &[lo, hi])
    })
}

fn plain(body: veal_ir::LoopBody, inv: u64, trips: u64) -> AppLoop {
    AppLoop::plain(body, inv, trips)
}

fn guarded(body: &veal_ir::LoopBody, inv: u64, trips: u64) -> AppLoop {
    AppLoop {
        raw: RawLoop::plain(with_guard(body)),
        profile: LoopProfile::new(inv, trips),
    }
}

fn called(body: &veal_ir::LoopBody, inv: u64, trips: u64) -> AppLoop {
    AppLoop {
        raw: with_call(body, saturate_fragment()),
        profile: LoopProfile::new(inv, trips),
    }
}

/// An over-unrolled quantize-style kernel with `factor` copies.
fn unrolled_quant(factor: u16, inv: u64, trips: u64) -> AppLoop {
    let body = unrolled("quant", factor, 3, |b, base| {
        let x = b.load_stream(base);
        let q = b.load_stream(base + 1);
        let m = b.op(Opcode::Mul, &[x, q]);
        let sh = b.constant(14);
        let s = b.op(Opcode::Sra, &[m, sh]);
        b.store_stream(base + 2, s);
    });
    AppLoop::plain(body, inv, trips)
}

fn synth_body(seed: u64, ops: usize, fp: f64, loads: usize, stores: usize) -> veal_ir::LoopBody {
    let spec = SynthSpec {
        seed,
        compute_ops: ops,
        fp_frac: fp,
        loads,
        stores,
        recurrences: 1,
        rec_distance: 1 + (ops as u32 / 8),
    };
    synth_loop(&spec)
}

fn synth(
    seed: u64,
    ops: usize,
    fp: f64,
    loads: usize,
    stores: usize,
    inv: u64,
    trips: u64,
) -> AppLoop {
    AppLoop::plain(synth_body(seed, ops, fp, loads, stores), inv, trips)
}

fn app(
    name: &str,
    media_fp: bool,
    loops: Vec<AppLoop>,
    acyclic_instrs: u64,
    acyclic_ilp: f64,
) -> Application {
    Application {
        name: name.to_owned(),
        loops,
        acyclic_instrs,
        acyclic_ilp,
        media_fp,
    }
}

fn rawcaudio() -> Application {
    // One critical ADPCM loop dominates everything.
    app(
        "rawcaudio",
        true,
        vec![
            called(&kernels::adpcm_step(), 60, 16_000),
            plain(kernels::bit_unpack(), 60, 2_000),
        ],
        1_200_000,
        1.2,
    )
}

fn rawdaudio() -> Application {
    app(
        "rawdaudio",
        true,
        vec![
            called(&kernels::adpcm_step(), 60, 14_000),
            plain(kernels::bit_unpack(), 60, 3_500),
        ],
        1_000_000,
        1.2,
    )
}

fn g721encode() -> Application {
    app(
        "g721encode",
        true,
        vec![
            called(&kernels::adpcm_step(), 200, 1_600),
            guarded(&kernels::viterbi_acs(), 200, 1_200),
            plain(kernels::autocorr(), 200, 900),
            synth(7211, 28, 0.0, 4, 1, 200, 700),
            plain(kernels::while_scan(), 120, 300),
        ],
        2_500_000,
        1.3,
    )
}

fn g721decode() -> Application {
    app(
        "g721decode",
        true,
        vec![
            called(&kernels::adpcm_step(), 180, 1_500),
            guarded(&kernels::viterbi_acs(), 180, 1_300),
            plain(kernels::bit_unpack(), 180, 1_000),
            synth(7212, 24, 0.0, 4, 1, 180, 600),
            plain(kernels::while_scan(), 100, 300),
        ],
        2_200_000,
        1.3,
    )
}

fn gsmencode() -> Application {
    app(
        "gsmencode",
        true,
        vec![
            guarded(&kernels::autocorr(), 600, 160),
            called(&kernels::fir(8), 600, 120),
            plain(kernels::quantize(), 600, 160),
            plain(kernels::bit_pack(), 400, 130),
            synth(4501, 36, 0.0, 6, 2, 600, 110),
            synth(4502, 22, 0.0, 3, 1, 600, 140),
            plain(kernels::while_scan(), 200, 220),
        ],
        3_200_000,
        1.35,
    )
}

fn gsmdecode() -> Application {
    app(
        "gsmdecode",
        true,
        vec![
            called(&kernels::fir(8), 550, 140),
            plain(kernels::bit_unpack(), 550, 160),
            guarded(&kernels::viterbi_acs(), 550, 130),
            synth(4503, 26, 0.0, 4, 1, 550, 120),
            plain(kernels::while_scan(), 150, 200),
        ],
        2_600_000,
        1.35,
    )
}

fn epic() -> Application {
    app(
        "epic",
        true,
        vec![
            guarded(&kernels::stencil3(), 900, 240),
            unrolled_quant(8, 900, 220),
            called(&kernels::fir(6), 450, 260),
            plain(kernels::sobel3(), 700, 200),
            plain(kernels::median3(), 600, 240),
            synth(5101, 30, 0.2, 5, 2, 450, 180),
            plain(kernels::call_loop(), 120, 100),
        ],
        6_500_000,
        1.25,
    )
}

fn unepic() -> Application {
    app(
        "unepic",
        true,
        vec![
            guarded(&kernels::stencil3(), 800, 230),
            unrolled_quant(8, 800, 200),
            synth(5102, 26, 0.2, 4, 1, 400, 170),
            plain(kernels::while_scan(), 100, 120),
        ],
        5_500_000,
        1.25,
    )
}

/// mpeg2dec: many distinct mid-size loops over a short run — the
/// fully-dynamic translation penalty shows (paper: 2.1 → 1.15).
fn mpeg2dec() -> Application {
    let mut loops = vec![
        called(&kernels::idct_row(), 1_400, 8),
        guarded(&kernels::idct_row(), 1_400, 8),
        called(&kernels::color_convert(), 700, 90),
        unrolled_quant(8, 1_400, 12),
        guarded(&kernels::quantize(), 1_400, 16),
    ];
    for i in 0..18u64 {
        // Motion compensation / add-block / saturation variants; most were
        // emitted with branchy guards the static compiler predicates away.
        let ops = 36 + (i as usize % 5) * 9;
        if i % 3 == 0 {
            loops.push(synth(9000 + i, ops, 0.0, 4, 2, 650, 12));
        } else {
            loops.push(guarded(&synth_body(9000 + i, ops, 0.0, 4, 2), 650, 12));
        }
    }
    loops.push(plain(kernels::while_scan(), 250, 60));
    app("mpeg2dec", true, loops, 2_600_000, 1.3)
}

fn mpeg2enc() -> Application {
    let mut loops = vec![
        called(&kernels::idct_row(), 1_000, 8),
        guarded(&kernels::quantize(), 1_000, 16),
        plain(kernels::stencil3(), 1_000, 64),
    ];
    for i in 0..10u64 {
        let ops = 34 + (i as usize % 4) * 8;
        if i % 2 == 0 {
            loops.push(guarded(&synth_body(9100 + i, ops, 0.0, 5, 1), 700, 48));
        } else {
            loops.push(synth(9100 + i, ops, 0.0, 5, 1, 700, 48));
        }
    }
    loops.push(plain(kernels::while_scan(), 500, 80));
    loops.push(plain(kernels::call_loop(), 260, 60));
    app("mpeg2enc", true, loops, 6_000_000, 1.3)
}

fn cjpeg() -> Application {
    app(
        "cjpeg",
        true,
        vec![
            called(&kernels::idct_row(), 900, 8),
            guarded(&kernels::quantize(), 900, 64),
            called(&kernels::color_convert(), 450, 220),
            plain(kernels::rgb_to_gray(), 450, 180),
            synth(6001, 32, 0.0, 5, 2, 450, 90),
            plain(kernels::while_scan(), 420, 40),
        ],
        2_300_000,
        1.3,
    )
}

fn djpeg() -> Application {
    app(
        "djpeg",
        true,
        vec![
            called(&kernels::idct_row(), 1_000, 8),
            called(&kernels::color_convert(), 500, 260),
            unrolled_quant(8, 1_000, 48),
            plain(kernels::alpha_blend(), 500, 120),
            synth(6002, 28, 0.0, 4, 1, 500, 100),
            plain(kernels::while_scan(), 300, 40),
        ],
        2_100_000,
        1.3,
    )
}

/// pegwit: aggressive inlining produced many distinct large crypto loop
/// instances; their Θ(n³) dynamic priority computation erases the benefit
/// (paper: lost all speedup when fully dynamic).
fn pegwitenc() -> Application {
    let mut loops = Vec::new();
    for i in 0..16u64 {
        let rounds = 4; // deeper variants exceed the LA's capacity
        let _ = i;
        let body = kernels::crypto_round(rounds);
        let l = match i % 3 {
            0 => called(&body, 16, 420),
            1 => guarded(&body, 16, 380),
            _ => AppLoop::plain(body, 14, 400),
        };
        loops.push(l);
    }
    loops.push(plain(kernels::bit_unpack(), 40, 600));
    loops.push(plain(kernels::while_scan(), 30, 150));
    app("pegwitenc", true, loops, 1_000_000, 1.2)
}

fn pegwitdec() -> Application {
    let mut loops = Vec::new();
    for i in 0..14u64 {
        let rounds = 4;
        let body = kernels::crypto_round(rounds);
        let l = match i % 2 {
            0 => called(&body, 14, 400),
            _ => guarded(&body, 14, 360),
        };
        loops.push(l);
    }
    loops.push(plain(kernels::bit_unpack(), 36, 600));
    loops.push(plain(kernels::while_scan(), 24, 150));
    app("pegwitdec", true, loops, 850_000, 1.2)
}

fn alvinn() -> Application {
    app(
        "052.alvinn",
        true,
        vec![
            called(&kernels::dot_product(), 1_500, 1_300),
            plain(kernels::daxpy(), 1_500, 1_300),
            plain(kernels::matmul_tile(), 900, 800),
            synth(5201, 18, 0.8, 3, 1, 700, 900),
        ],
        12_000_000,
        1.4,
    )
}

fn ear() -> Application {
    app(
        "056.ear",
        true,
        vec![
            plain(kernels::fir(10), 900, 700),
            called(&kernels::fir(8), 900, 650),
            plain(kernels::lms_adapt(), 600, 450),
            plain(kernels::dot_product(), 900, 600),
            synth(5601, 24, 0.7, 5, 1, 450, 500),
            plain(kernels::while_scan(), 80, 100),
        ],
        20_000_000,
        1.4,
    )
}

fn swim() -> Application {
    app(
        "171.swim",
        true,
        vec![
            called(&kernels::swim_stencil(), 400, 6_000),
            guarded(&kernels::swim_stencil(), 400, 5_500),
            plain(kernels::daxpy(), 400, 5_000),
        ],
        23_000_000,
        1.5,
    )
}

/// 172.mgrid: few huge stencil loops (27 streams: must be fissioned
/// statically), short run — fully dynamic translation erases the benefit.
fn mgrid() -> Application {
    // Eight large stencil instances (resid/psinv/interp at several grid
    // levels), each needing static fission; a short run.
    let mut loops = Vec::new();
    for i in 0..12u64 {
        let points = [27usize, 27, 24, 21, 27, 19, 24, 21, 27, 24, 21, 19][i as usize];
        loops.push(AppLoop::plain(
            kernels::mgrid_resid(points),
            8 + (i % 3) * 2,
            280 + (i % 4) * 40,
        ));
    }
    loops.push(called(&kernels::swim_stencil(), 20, 450));
    app("172.mgrid", true, loops, 500_000, 1.5)
}

fn nasa7() -> Application {
    app(
        "093.nasa7",
        true,
        vec![
            called(&kernels::dot_product(), 800, 1_100),
            plain(kernels::fp_recurrence(), 500, 900),
            guarded(&kernels::swim_stencil(), 500, 800),
            synth(9301, 26, 0.8, 7, 2, 400, 600),
        ],
        2_600_000,
        1.45,
    )
}

fn art() -> Application {
    app(
        "179.art",
        true,
        vec![
            called(&kernels::dot_product(), 2_200, 800),
            plain(kernels::daxpy(), 2_200, 700),
            synth(1791, 20, 0.8, 4, 1, 1_100, 500),
            plain(kernels::while_scan(), 160, 220),
        ],
        13_000_000,
        1.4,
    )
}

// --- SPECint-style applications (Figure 2 classification only) ----------

fn int_app(
    name: &str,
    seed: u64,
    sched_weight: u64,
    spec_weight: u64,
    call_weight: u64,
    acyclic: u64,
) -> Application {
    let mut loops = Vec::new();
    if sched_weight > 0 {
        loops.push(synth(seed, 18, 0.0, 3, 1, sched_weight, 60));
        loops.push(plain(kernels::bit_unpack(), sched_weight / 2 + 1, 50));
    }
    if spec_weight > 0 {
        loops.push(plain(kernels::while_scan(), spec_weight, 90));
    }
    if call_weight > 0 {
        loops.push(plain(kernels::call_loop(), call_weight, 70));
    }
    app(name, false, loops, acyclic, 1.3)
}

fn m88ksim() -> Application {
    int_app("124.m88ksim", 8801, 300, 2_200, 900, 9_000_000)
}

fn compress() -> Application {
    int_app("129.compress", 1291, 700, 4_500, 300, 4_500_000)
}

fn gzip() -> Application {
    int_app("164.gzip", 1641, 900, 5_200, 200, 5_000_000)
}

fn mcf() -> Application {
    int_app("181.mcf", 1811, 120, 2_600, 1_400, 8_000_000)
}

fn parser() -> Application {
    int_app("197.parser", 1971, 150, 1_800, 1_600, 10_000_000)
}

fn vortex() -> Application {
    int_app("255.vortex", 2551, 100, 1_200, 1_100, 12_000_000)
}

fn twolf() -> Application {
    int_app("300.twolf", 3001, 450, 2_400, 700, 7_500_000)
}

/// Builds one application by name.
///
/// # Example
///
/// ```
/// let a = veal_workloads::application("rawcaudio").unwrap();
/// assert!(a.media_fp);
/// assert!(!a.loops.is_empty());
/// ```
#[must_use]
pub fn application(name: &str) -> Option<Application> {
    let a = match name {
        "rawcaudio" => rawcaudio(),
        "rawdaudio" => rawdaudio(),
        "g721encode" => g721encode(),
        "g721decode" => g721decode(),
        "gsmencode" => gsmencode(),
        "gsmdecode" => gsmdecode(),
        "epic" => epic(),
        "unepic" => unepic(),
        "mpeg2dec" => mpeg2dec(),
        "mpeg2enc" => mpeg2enc(),
        "cjpeg" => cjpeg(),
        "djpeg" => djpeg(),
        "pegwitenc" => pegwitenc(),
        "pegwitdec" => pegwitdec(),
        "052.alvinn" => alvinn(),
        "056.ear" => ear(),
        "171.swim" => swim(),
        "172.mgrid" => mgrid(),
        "093.nasa7" => nasa7(),
        "179.art" => art(),
        "124.m88ksim" => m88ksim(),
        "129.compress" => compress(),
        "164.gzip" => gzip(),
        "181.mcf" => mcf(),
        "197.parser" => parser(),
        "255.vortex" => vortex(),
        "300.twolf" => twolf(),
        _ => return None,
    };
    Some(a)
}

/// The media/FP subset used for the acceleration experiments.
#[must_use]
pub fn media_fp_suite() -> Vec<Application> {
    SUITE_NAMES
        .iter()
        .filter_map(|n| application(n))
        .filter(|a| a.media_fp)
        .collect()
}

/// Every application, media/FP and integer alike (Figure 2).
#[must_use]
pub fn full_suite() -> Vec<Application> {
    SUITE_NAMES.iter().filter_map(|n| application(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::verify_dfg;

    #[test]
    fn every_name_resolves() {
        for n in SUITE_NAMES {
            assert!(application(n).is_some(), "missing app {n}");
        }
        assert!(application("nonesuch").is_none());
    }

    #[test]
    fn suite_sizes() {
        assert_eq!(full_suite().len(), 27);
        assert_eq!(media_fp_suite().len(), 20);
        assert!(media_fp_suite().iter().all(|a| a.media_fp));
    }

    #[test]
    fn all_loop_bodies_verify() {
        for a in full_suite() {
            for l in &a.loops {
                assert_eq!(
                    verify_dfg(&l.raw.body.dfg),
                    Ok(()),
                    "{} / {}",
                    a.name,
                    l.raw.body.name
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = application("mpeg2dec").unwrap();
        let b = application("mpeg2dec").unwrap();
        assert_eq!(a.loops.len(), b.loops.len());
        for (x, y) in a.loops.iter().zip(&b.loops) {
            assert_eq!(x.raw.body.dfg, y.raw.body.dfg);
            assert_eq!(x.profile, y.profile);
        }
    }

    #[test]
    fn mpeg2dec_has_many_loops_rawcaudio_few() {
        assert!(application("mpeg2dec").unwrap().loops.len() >= 20);
        assert!(application("rawcaudio").unwrap().loops.len() <= 3);
    }

    #[test]
    fn mgrid_loops_are_large() {
        let a = application("172.mgrid").unwrap();
        assert!(a.loops.iter().any(|l| l.raw.body.len() > 80));
    }

    #[test]
    fn most_media_loops_have_raw_defects() {
        // Figure 7's premise: without static transforms, most hot loops
        // cannot be retargeted.
        let mut defective = 0usize;
        let mut total = 0usize;
        for a in media_fp_suite() {
            for l in &a.loops {
                total += 1;
                let has_call_defect = l.raw.callee.is_some();
                let unschedulable = veal_ir::classify_loop(&l.raw.body.dfg)
                    != veal_ir::LoopClass::ModuloSchedulable;
                let too_wide = {
                    use veal_ir::streams::separate;
                    separate(&l.raw.body.dfg, &mut veal_ir::CostMeter::new())
                        .map(|s| s.summary().loads > 16 || s.summary().stores > 8)
                        .unwrap_or(false)
                };
                if has_call_defect || unschedulable || too_wide {
                    defective += 1;
                }
            }
        }
        assert!(
            defective * 2 > total,
            "expected most raw loops defective: {defective}/{total}"
        );
    }
}
