//! The application model: loops + profiles + acyclic remainder.

use veal_ir::dfg::NodeKind;
use veal_ir::{LoopBody, LoopProfile, OpId, Opcode};
use veal_opt::{CalleeFragment, RawLoop};

/// One loop of an application, in its raw binary form.
#[derive(Debug, Clone)]
pub struct AppLoop {
    /// The loop as the front-end emitted it (may contain calls, guards,
    /// unrolled copies, or too many streams).
    pub raw: RawLoop,
    /// Dynamic execution profile.
    pub profile: LoopProfile,
}

impl AppLoop {
    /// Convenience constructor for a defect-free loop.
    #[must_use]
    pub fn plain(body: LoopBody, invocations: u64, trip_count: u64) -> Self {
        AppLoop {
            raw: RawLoop::plain(body),
            profile: LoopProfile::new(invocations, trip_count),
        }
    }
}

/// A whole application: its loops plus the acyclic remainder.
#[derive(Debug, Clone)]
pub struct Application {
    /// Benchmark name (paper's labels, e.g. `"mpeg2dec"`).
    pub name: String,
    /// The loops.
    pub loops: Vec<AppLoop>,
    /// Dynamic instructions executed outside any loop.
    pub acyclic_instrs: u64,
    /// Instruction-level parallelism available in the acyclic code (bounds
    /// the IPC a wider in-order CPU can extract from it).
    pub acyclic_ilp: f64,
    /// Whether the app belongs to the media/FP subset (left portion of
    /// Figure 2) used for the acceleration studies.
    pub media_fp: bool,
}

impl Application {
    /// Total dynamic loop iterations across the run.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.loops
            .iter()
            .map(|l| l.profile.total_iterations())
            .sum()
    }
}

/// Wraps `body` with a side-exit guard that a static compiler would
/// if-convert: a compare on a loop value, a guard branch, and a `Select`
/// that already carries the predicated result. The dynamic translator (no
/// transforms) sees two branches and rejects the loop; `veal-opt`'s
/// predication pass removes the guard.
#[must_use]
pub fn with_guard(body: &LoopBody) -> LoopBody {
    let mut dfg = body.dfg.clone();
    // Find a value op to guard: a schedulable compute op that is not part
    // of an induction/address pattern (no distance-1 self edge), so the
    // guard cannot be mistaken for the loop's counted back branch.
    let v = dfg
        .schedulable_ops()
        .find(|&id| {
            let is_compute = dfg
                .node(id)
                .opcode()
                .is_some_and(|op| op.has_dest() && !op.is_control() && op != Opcode::Load);
            let self_carried = dfg.succ_edges(id).any(|e| e.dst == id);
            is_compute && !self_carried
        })
        .expect("body has a value op");
    let zero = dfg.add_node(NodeKind::Const(0));
    let cmp = dfg.add_node(NodeKind::Op(Opcode::CmpLt));
    dfg.add_edge(v, cmp, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(zero, cmp, 0, veal_ir::EdgeKind::Data);
    let guard = dfg.add_node(NodeKind::Op(Opcode::BrCond));
    dfg.add_edge(cmp, guard, 0, veal_ir::EdgeKind::Data);
    let sel = dfg.add_node(NodeKind::Op(Opcode::Select));
    dfg.add_edge(cmp, sel, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(v, sel, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(zero, sel, 0, veal_ir::EdgeKind::Data);
    dfg.node_mut(sel).live_out = true;
    LoopBody::new(format!("{}+guard", body.name), dfg)
}

/// Unrolls the *compute view* of a kernel `factor` times with disjoint
/// streams — the over-unrolled raw binary a CPU-tuned compiler would emit.
/// The result is pre-separated (no control pattern); `veal-opt`'s re-roll
/// pass recovers the single kernel.
///
/// `build` constructs one copy's worth of compute ops into the supplied
/// builder using the given base stream index, returning nothing; copies
/// must not share values.
#[must_use]
pub fn unrolled(
    name: &str,
    factor: u16,
    streams_per_copy: u16,
    build: impl Fn(&mut veal_ir::DfgBuilder, u16),
) -> LoopBody {
    let mut b = veal_ir::DfgBuilder::new();
    for copy in 0..factor {
        build(&mut b, copy * streams_per_copy);
    }
    LoopBody::new(format!("{name}x{factor}"), b.finish())
}

/// Wraps `body` so one of its values is produced by an inlinable call to
/// `fragment` (models a visible math-library helper). The raw loop is a
/// "Subroutine" until the static inliner runs.
#[must_use]
pub fn with_call(body: &LoopBody, fragment: CalleeFragment) -> RawLoop {
    let mut dfg = body.dfg.clone();
    let v = dfg
        .schedulable_ops()
        .find(|&id| {
            dfg.node(id)
                .opcode()
                .is_some_and(|op| op.has_dest() && !op.is_control() && op != Opcode::Load)
        })
        .expect("body has a value op");
    // Route v through a call before its consumers see it.
    let call = dfg.add_node(NodeKind::Op(Opcode::Call));
    let consumers: Vec<(OpId, u32, veal_ir::EdgeKind)> = dfg
        .succ_edges(v)
        .map(|e| (e.dst, e.distance, e.kind))
        .collect();
    let _ = consumers; // consumers keep their direct edge; the call adds
                       // an additional user whose result is stored.
    dfg.add_edge(v, call, 0, veal_ir::EdgeKind::Data);
    dfg.node_mut(call).live_out = true;
    RawLoop {
        body: LoopBody::new(format!("{}+call", body.name), dfg),
        callee: Some(fragment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use veal_ir::{classify_loop, verify_dfg, LoopClass};
    use veal_opt::{legalize, TransformLimits};

    #[test]
    fn guard_defect_round_trips_through_predication() {
        let raw = with_guard(&kernels::quantize());
        assert!(verify_dfg(&raw.dfg).is_ok());
        assert_eq!(classify_loop(&raw.dfg), LoopClass::NeedsSpeculation);
        let out = legalize(&RawLoop::plain(raw), &TransformLimits::default());
        assert_eq!(
            classify_loop(&out[0].body.dfg),
            LoopClass::ModuloSchedulable
        );
    }

    #[test]
    fn call_defect_round_trips_through_inlining() {
        let frag = CalleeFragment::build(1, |b, p| b.op(Opcode::Abs, &[p[0]]));
        let raw = with_call(&kernels::quantize(), frag);
        assert_eq!(classify_loop(&raw.body.dfg), LoopClass::Subroutine);
        let out = legalize(&raw, &TransformLimits::default());
        assert_eq!(
            classify_loop(&out[0].body.dfg),
            LoopClass::ModuloSchedulable
        );
    }

    #[test]
    fn unrolled_defect_round_trips_through_reroll() {
        let raw = unrolled("quant", 12, 3, |b, base| {
            let x = b.load_stream(base);
            let q = b.load_stream(base + 1);
            let m = b.op(Opcode::Mul, &[x, q]);
            b.store_stream(base + 2, m);
        });
        assert!(verify_dfg(&raw.dfg).is_ok());
        // 24 load streams > 16: unusable raw.
        let out = legalize(&RawLoop::plain(raw), &TransformLimits::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].trip_multiplier, 12);
        assert_eq!(out[0].body.dfg.schedulable_ops().count(), 4);
    }

    #[test]
    fn application_totals() {
        let app = Application {
            name: "t".into(),
            loops: vec![
                AppLoop::plain(kernels::dot_product(), 10, 100),
                AppLoop::plain(kernels::daxpy(), 5, 50),
            ],
            acyclic_instrs: 1000,
            acyclic_ilp: 1.2,
            media_fp: true,
        };
        assert_eq!(app.total_iterations(), 1250);
    }
}
