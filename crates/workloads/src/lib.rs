//! Workloads for the VEAL experiments.
//!
//! The paper evaluates on MediaBench and SPEC binaries compiled with a
//! modified Trimaran; neither the binaries nor Trimaran are available, so
//! this crate provides the substitution documented in `DESIGN.md`:
//!
//! * [`kernels`] — hand-built dataflow graphs of real media/FP inner loops
//!   (FIR, IDCT, ADPCM, autocorrelation, stencils, crypto rounds, …), each
//!   in the full binary form (counted control + affine address patterns);
//! * [`synth`] — a seeded random loop generator for coverage beyond the
//!   hand-built shapes;
//! * [`app`] — the application model: loops with execution profiles plus
//!   an acyclic remainder, and raw-binary defects (calls, guard branches,
//!   over-unrolling, stream overflow) for the Figure 7 experiment;
//! * [`suite`] — 27 named applications whose loop populations are
//!   calibrated to the per-benchmark behaviour the paper reports
//!   (rawcaudio: one hot loop; mpeg2dec: many mid-size loops; pegwitenc and
//!   172.mgrid: few huge loops whose dynamic translation cost erases the
//!   accelerator benefit; SPECint apps: mostly unschedulable time).
//!
//! Everything is deterministic: the same suite is generated on every run.

pub mod app;
pub mod golden;
pub mod kernels;
pub mod suite;
pub mod synth;

pub use app::{AppLoop, Application};
pub use golden::{fixture_inputs, fold_checksum, semantic_checksum, FIXTURE_ITERATIONS};
pub use kernels::KernelCtx;
pub use suite::{application, full_suite, media_fp_suite, SUITE_NAMES};
pub use synth::{synth_loop, SynthSpec};
