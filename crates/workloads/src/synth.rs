//! Seeded synthetic loop generation.
//!
//! The hand-built kernels cover the canonical shapes; the synthetic
//! generator fills the long tail the paper's 20+ benchmark binaries would
//! have contained. Generation is deterministic for a given [`SynthSpec`],
//! and every output passes [`veal_ir::verify_dfg`] and classifies as
//! modulo-schedulable.

use veal_ir::rng::Rng64;
use veal_ir::{LoopBody, OpId, Opcode};

use crate::kernels::KernelCtx;

/// Parameters of a synthetic loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// RNG seed (same seed → same loop).
    pub seed: u64,
    /// Approximate number of compute ops.
    pub compute_ops: usize,
    /// Fraction of compute ops that are double-precision FP.
    pub fp_frac: f64,
    /// Number of load streams.
    pub loads: usize,
    /// Number of store streams.
    pub stores: usize,
    /// Number of accumulator-style recurrences to thread through.
    pub recurrences: usize,
    /// Iteration distance of the recurrences (larger = more slack).
    pub rec_distance: u32,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            seed: 1,
            compute_ops: 24,
            fp_frac: 0.0,
            loads: 4,
            stores: 1,
            recurrences: 1,
            rec_distance: 1,
        }
    }
}

const INT_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sra,
    Opcode::Mul,
    Opcode::Add,
    Opcode::Add,
    Opcode::Sub,
];

const FP_OPS: &[Opcode] = &[
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FAdd,
    Opcode::FMul,
    Opcode::FMin,
    Opcode::FMax,
];

/// Generates a synthetic modulo-schedulable loop from `spec`.
///
/// Structure: `loads` streaming loads feed a random DAG of `compute_ops`
/// ops (each consuming one or two earlier values); `recurrences`
/// accumulator chains are threaded through with the requested distance; the
/// last values feed `stores` streaming stores.
///
/// # Example
///
/// ```
/// use veal_ir::{classify_loop, LoopClass};
/// use veal_workloads::{synth_loop, SynthSpec};
///
/// let body = synth_loop(&SynthSpec { seed: 7, ..SynthSpec::default() });
/// assert_eq!(classify_loop(&body.dfg), LoopClass::ModuloSchedulable);
/// ```
#[must_use]
pub fn synth_loop(spec: &SynthSpec) -> LoopBody {
    let mut rng = Rng64::new(spec.seed ^ 0x5EA1);
    let mut k = KernelCtx::new();

    let mut int_vals: Vec<OpId> = Vec::new();
    let mut fp_vals: Vec<OpId> = Vec::new();
    for i in 0..spec.loads.max(1) {
        let v = k.load(if i % 2 == 0 { 4 } else { 8 });
        // Loads fan into both domains; conversions bridge when needed.
        if spec.fp_frac > 0.0 && i % 2 == 1 {
            fp_vals.push(v);
        } else {
            int_vals.push(v);
        }
    }
    if spec.fp_frac > 0.0 && fp_vals.is_empty() {
        let seed = int_vals[0];
        fp_vals.push(k.op(Opcode::ItoF, &[seed]));
    }
    let scalar = k.live_in();
    int_vals.push(scalar);

    let mut first_int_compute: Option<OpId> = None;
    let mut first_fp_compute: Option<OpId> = None;
    let mut last_compute: Option<OpId> = None;
    for _ in 0..spec.compute_ops {
        let use_fp = rng.gen_bool(spec.fp_frac.clamp(0.0, 1.0)) && !fp_vals.is_empty();
        let (pool, ops): (&mut Vec<OpId>, &[Opcode]) = if use_fp {
            (&mut fp_vals, FP_OPS)
        } else {
            (&mut int_vals, INT_OPS)
        };
        let op = ops[rng.gen_range(0, ops.len())];
        // Operand locality: real code consumes recently produced values;
        // a uniformly random choice would create absurdly long lifetimes
        // (and register pressure no machine could hold).
        let window = 6.min(pool.len());
        let lo = pool.len() - window;
        let a = pool[rng.gen_range(lo, pool.len())];
        let b = pool[rng.gen_range(lo, pool.len())];
        let inputs: Vec<OpId> = match op.arity() {
            1 => vec![a],
            _ => vec![a, b],
        };
        let v = k.op(op, &inputs);
        pool.push(v);
        if use_fp {
            first_fp_compute.get_or_insert(v);
        } else {
            first_int_compute.get_or_insert(v);
        }
        last_compute = Some(v);
    }

    // Thread recurrences: the final compute value feeds the first compute
    // op of its domain on a later iteration (an accumulator chain).
    if let Some(late) = last_compute {
        let early = if spec.fp_frac > 0.5 {
            first_fp_compute.or(first_int_compute)
        } else {
            first_int_compute.or(first_fp_compute)
        };
        if let Some(early) = early {
            for _ in 0..spec.recurrences {
                if late != early {
                    k.loop_carried(late, early, spec.rec_distance.max(1));
                    break;
                }
            }
        }
    }

    for s in 0..spec.stores {
        let pool = if spec.fp_frac > 0.5 && !fp_vals.is_empty() {
            &fp_vals
        } else {
            &int_vals
        };
        let v = pool[pool.len() - 1 - (s % pool.len().min(3))];
        k.store(4, v);
    }
    let out_pool = if spec.fp_frac > 0.5 {
        &fp_vals
    } else {
        &int_vals
    };
    if let Some(&last) = out_pool.last() {
        k.mark_live_out(last);
    }
    LoopBody::new(format!("synth{}", spec.seed), k.finish_counted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{classify_loop, verify_dfg, LoopClass};

    #[test]
    fn synthetic_loops_verify_and_classify() {
        for seed in 0..50 {
            let spec = SynthSpec {
                seed,
                compute_ops: 8 + (seed as usize % 40),
                fp_frac: if seed % 3 == 0 { 0.6 } else { 0.0 },
                loads: 1 + (seed as usize % 6),
                stores: 1 + (seed as usize % 2),
                recurrences: (seed as usize) % 3,
                rec_distance: 1 + (seed as u32 % 4),
            };
            let body = synth_loop(&spec);
            assert_eq!(verify_dfg(&body.dfg), Ok(()), "seed {seed}");
            assert_eq!(
                classify_loop(&body.dfg),
                LoopClass::ModuloSchedulable,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::default();
        let a = synth_loop(&spec);
        let b = synth_loop(&spec);
        assert_eq!(a.dfg, b.dfg);
    }

    #[test]
    fn compute_ops_scale_size() {
        let small = synth_loop(&SynthSpec {
            compute_ops: 8,
            ..SynthSpec::default()
        });
        let big = synth_loop(&SynthSpec {
            compute_ops: 80,
            ..SynthSpec::default()
        });
        assert!(big.len() > small.len() + 40);
    }

    #[test]
    fn recurrences_appear_when_requested() {
        let body = synth_loop(&SynthSpec {
            recurrences: 2,
            compute_ops: 30,
            ..SynthSpec::default()
        });
        assert!(!body.dfg.recurrences().is_empty());
    }
}
