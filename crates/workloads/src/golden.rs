//! Golden-value pins for the kernel library's semantics.
//!
//! Every kernel is executed through [`veal_ir::interp`] on fixed inputs
//! and its outputs are folded into an FNV checksum. A change to a kernel's
//! *meaning* (as opposed to its timing) fails these pins — which matters
//! because the calibration in `EXPERIMENTS.md` is stated per kernel shape.

use veal_ir::interp::{interpret, ExecResult, Inputs, Value};
use veal_ir::LoopBody;

/// The fixed iteration count of the golden fixture.
pub const FIXTURE_ITERATIONS: u64 = 24;

/// The standard fixture inputs every golden checksum is computed on: 40
/// deterministic 24-element streams and every live-in pinned to 5.
/// Shared by the interpreter pins here and by the differential gates in
/// `veal-exec`/`bench_exec`, which must feed all executors identically.
#[must_use]
pub fn fixture_inputs(body: &LoopBody) -> Inputs {
    let mut inputs = Inputs::default();
    for s in 0..40u16 {
        inputs.streams.insert(
            s,
            (0..FIXTURE_ITERATIONS)
                .map(|i| Value::Int((i as i64 * 7 + i64::from(s) * 13 + 3) % 101 - 50))
                .collect(),
        );
    }
    for id in body.dfg.live_in_ids() {
        inputs.live_ins.insert(id, Value::Int(5));
    }
    inputs
}

/// Folds an execution result into the order-stable FNV-1a checksum the
/// golden pins are stated in: stores (stream id, then values in push
/// order), then live-outs (node id, then value), floats via their bit
/// pattern.
#[must_use]
pub fn fold_checksum(out: &ExecResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: i64| {
        h ^= v as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (s, vals) in &out.stores {
        mix(i64::from(*s));
        for v in vals {
            match v {
                Value::Int(i) => mix(*i),
                Value::Fp(f) => mix(f.to_bits() as i64),
            }
        }
    }
    for (id, v) in &out.live_outs {
        mix(id.index() as i64);
        match v {
            Value::Int(i) => mix(*i),
            Value::Fp(f) => mix(f.to_bits() as i64),
        }
    }
    h
}

/// Executes `body` on the standard fixture inputs and folds every store
/// and live-out into an order-stable FNV-1a checksum. Returns `None` for
/// uninterpretable bodies (opaque calls).
#[must_use]
pub fn semantic_checksum(body: &LoopBody) -> Option<u64> {
    let inputs = fixture_inputs(body);
    let out = interpret(&body.dfg, FIXTURE_ITERATIONS, &inputs).ok()?;
    Some(fold_checksum(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    /// Generated once with `examples/gen_checksums.rs`; regenerate when a
    /// kernel's semantics intentionally change.
    const GOLDEN: &[(&str, u64)] = &[
        ("dot_product", 0xcf2f4507f4e2c672),
        ("daxpy", 0x05c1377859b63bae),
        ("fir8", 0xed2773a691168eb6),
        ("adpcm_step", 0x6e80afdf6c9f451c),
        ("idct_row", 0x34b82f5c8a9767ee),
        ("autocorr", 0xa90e0608c62c30e8),
        ("viterbi_acs", 0xd00f6a01559238ae),
        ("quantize", 0x22863c9027eb93c1),
        ("stencil3", 0x93863a0e64cbb9ee),
        ("crypto4", 0x33309c69e8c4779b),
        ("swim_stencil", 0x242aad4859b63bae),
        ("mgrid27", 0xc8b34a9459b63bae),
        ("color_convert", 0x72ff3594a06c5973),
        ("bit_unpack", 0xa48d6188c4e23df1),
        ("sobel3", 0x23856072a52a3616),
        ("alpha_blend", 0xdb351af35ccde906),
        ("rgb_to_gray", 0x654b46e6b0134ba6),
        ("median3", 0x4a4d63fa559c0e56),
        ("matmul_tile", 0xb215143d54e2c672),
        ("lms_adapt", 0xa844d82aa657161b),
    ];

    fn kernel_by_name(name: &str) -> LoopBody {
        match name {
            "dot_product" => kernels::dot_product(),
            "daxpy" => kernels::daxpy(),
            "fir8" => kernels::fir(8),
            "adpcm_step" => kernels::adpcm_step(),
            "idct_row" => kernels::idct_row(),
            "autocorr" => kernels::autocorr(),
            "viterbi_acs" => kernels::viterbi_acs(),
            "quantize" => kernels::quantize(),
            "stencil3" => kernels::stencil3(),
            "crypto4" => kernels::crypto_round(4),
            "swim_stencil" => kernels::swim_stencil(),
            "mgrid27" => kernels::mgrid_resid(27),
            "color_convert" => kernels::color_convert(),
            "bit_unpack" => kernels::bit_unpack(),
            "sobel3" => kernels::sobel3(),
            "alpha_blend" => kernels::alpha_blend(),
            "rgb_to_gray" => kernels::rgb_to_gray(),
            "median3" => kernels::median3(),
            "matmul_tile" => kernels::matmul_tile(),
            "lms_adapt" => kernels::lms_adapt(),
            other => panic!("unknown kernel {other}"),
        }
    }

    #[test]
    fn kernel_semantics_are_pinned() {
        for &(name, expected) in GOLDEN {
            let body = kernel_by_name(name);
            let got = semantic_checksum(&body).unwrap_or_else(|| panic!("{name} interprets"));
            assert_eq!(
                got, expected,
                "{name}: semantics changed (checksum {got:#018x}, pinned {expected:#018x})"
            );
        }
    }

    #[test]
    fn checksums_are_pairwise_distinct() {
        let mut seen = std::collections::HashMap::new();
        for &(name, h) in GOLDEN {
            if let Some(prev) = seen.insert(h, name) {
                panic!("{name} and {prev} share a checksum");
            }
        }
    }

    #[test]
    fn checksum_is_deterministic() {
        let a = semantic_checksum(&kernels::adpcm_step()).unwrap();
        let b = semantic_checksum(&kernels::adpcm_step()).unwrap();
        assert_eq!(a, b);
    }
}
