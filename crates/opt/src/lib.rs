//! Static loop transformations for VEAL.
//!
//! Paper §4.2, "Loop Identification and Transformation": "high quality loop
//! transformations are much too complicated to perform in a
//! time-constrained environment … not performing loop transformations
//! reduced speedup attained by the accelerator by 75%" (Figure 7). The
//! transformations — aggressive inlining, aggressive predication
//! (if-conversion), re-rolling over-unrolled loops, and loop fission to fit
//! stream budgets — are therefore performed *statically*; they do not
//! change program semantics and need no special encoding in the binary.
//!
//! This crate implements those passes:
//!
//! * [`inline`] — splices a callee fragment over a `Call` node;
//! * [`predicate`] — if-conversion: removes side-exit guard branches whose
//!   values are already computed with `Select`s;
//! * [`reroll()`](reroll::reroll) — collapses an unrolled loop back to one kernel copy;
//! * [`fission`] — splits a loop with too many memory streams into smaller
//!   loops communicating through scratch streams;
//! * [`cfgpass`] — CFG-level counterparts (function inlining and diamond
//!   if-conversion) plus extraction of innermost single-block loops into
//!   dataflow graphs;
//! * [`pipeline`] — [`pipeline::legalize`], the whole static pipeline.

pub mod cfgpass;
pub mod fission;
pub mod inline;
pub mod pipeline;
pub mod predicate;
pub mod reroll;
pub mod unroll;

pub use fission::fission_by_streams;
pub use inline::{inline_call, CalleeFragment};
pub use pipeline::{legalize, LegalizedLoop, RawLoop, TransformLimits};
pub use predicate::if_convert_guards;
pub use reroll::reroll;
pub use unroll::unroll;
