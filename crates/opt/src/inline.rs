//! DFG-level function inlining.
//!
//! A `Call` node in a loop body keeps the loop off the accelerator
//! (paper §2.2: loops with function calls cannot be modulo scheduled).
//! When the callee is visible to the static compiler it is spliced in
//! place of the call: the call's argument edges feed the fragment's
//! parameter nodes and the fragment's result node replaces the call's
//! value.

use veal_ir::dfg::{Dfg, EdgeKind};
use veal_ir::{OpId, Opcode};

/// A callee body prepared for inlining: a small dataflow fragment with
/// designated parameter and result nodes.
///
/// # Example
///
/// ```
/// use veal_opt::CalleeFragment;
/// use veal_ir::Opcode;
///
/// // abs(x - 1): one parameter, one result.
/// let frag = CalleeFragment::build(1, |b, params| {
///     let one = b.constant(1);
///     let d = b.op(Opcode::Sub, &[params[0], one]);
///     b.op(Opcode::Abs, &[d])
/// });
/// assert_eq!(frag.params.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CalleeFragment {
    /// The fragment graph.
    pub dfg: Dfg,
    /// Parameter placeholder nodes (live-ins of the fragment).
    pub params: Vec<OpId>,
    /// The node producing the return value.
    pub result: OpId,
}

impl CalleeFragment {
    /// Builds a fragment with `nparams` parameters using a closure that
    /// receives the builder and the parameter nodes and returns the result
    /// node.
    pub fn build(
        nparams: usize,
        f: impl FnOnce(&mut veal_ir::DfgBuilder, &[OpId]) -> OpId,
    ) -> Self {
        let mut b = veal_ir::DfgBuilder::new();
        let params: Vec<OpId> = (0..nparams).map(|_| b.live_in()).collect();
        let result = f(&mut b, &params);
        CalleeFragment {
            dfg: b.finish(),
            params,
            result,
        }
    }
}

/// Inlines `fragment` over the `Call` node `call` in `dfg`, returning the
/// rewritten graph.
///
/// The call's i-th register argument edge is rewired to the fragment's
/// i-th parameter's consumers; edges leaving the call are re-sourced from
/// the fragment's result.
///
/// # Panics
///
/// Panics if `call` is not a live `Call` node or the fragment has fewer
/// parameters than the call has argument edges.
#[must_use]
pub fn inline_call(dfg: &Dfg, call: OpId, fragment: &CalleeFragment) -> Dfg {
    assert_eq!(
        dfg.node(call).opcode(),
        Some(Opcode::Call),
        "inline target must be a call"
    );
    let mut out = dfg.clone();

    // Copy fragment nodes (skipping parameter placeholders).
    let mut map: Vec<Option<OpId>> = vec![None; fragment.dfg.len()];
    for id in fragment.dfg.live_ids() {
        if fragment.params.contains(&id) {
            continue;
        }
        let new_id = out.add_node(fragment.dfg.node(id).kind.clone());
        out.node_mut(new_id).stream = fragment.dfg.node(id).stream;
        map[id.index()] = Some(new_id);
    }

    // The call's argument producers, in edge-insertion order.
    let args: Vec<(OpId, u32)> = dfg.pred_edges(call).map(|e| (e.src, e.distance)).collect();
    assert!(
        args.len() <= fragment.params.len(),
        "fragment has too few parameters"
    );

    // Copy fragment-internal edges, routing parameter reads to arguments.
    for e in fragment.dfg.edges() {
        let dst = map[e.dst.index()].expect("fragment consumer copied");
        if let Some(p) = fragment.params.iter().position(|&x| x == e.src) {
            if let Some(&(arg, dist)) = args.get(p) {
                out.add_edge(arg, dst, e.distance + dist, e.kind);
            }
            continue;
        }
        let src = map[e.src.index()].expect("fragment producer copied");
        out.add_edge(src, dst, e.distance, e.kind);
    }

    // Re-source the call's outputs from the fragment result.
    let result = map[fragment.result.index()].expect("result copied");
    let outs: Vec<(OpId, u32, EdgeKind)> = dfg
        .succ_edges(call)
        .map(|e| (e.dst, e.distance, e.kind))
        .collect();
    for (dst, dist, kind) in outs {
        out.add_edge(result, dst, dist, kind);
    }
    if dfg.node(call).live_out {
        out.node_mut(result).live_out = true;
    }
    out.remove_nodes(&[call]);
    out
}

/// Inlines every `Call` node using `fragment_for`, returning the rewritten
/// graph and how many calls were inlined. Calls for which `fragment_for`
/// returns `None` (not visible to the compiler) are left in place.
#[must_use]
pub fn inline_all(
    dfg: &Dfg,
    mut fragment_for: impl FnMut(OpId) -> Option<CalleeFragment>,
) -> (Dfg, usize) {
    let mut out = dfg.clone();
    let mut inlined = 0;
    loop {
        let call = out
            .schedulable_ops()
            .find(|&id| out.node(id).opcode() == Some(Opcode::Call));
        let Some(call) = call else { break };
        match fragment_for(call) {
            Some(frag) => {
                out = inline_call(&out, call, &frag);
                inlined += 1;
            }
            None => break,
        }
    }
    (out, inlined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{verify_dfg, DfgBuilder, Instruction};

    fn saturate_fragment() -> CalleeFragment {
        // min(max(x, 0), 255)
        CalleeFragment::build(1, |b, p| {
            let zero = b.constant(0);
            let hi = b.constant(255);
            let lo = b.op(Opcode::Max, &[p[0], zero]);
            b.op(Opcode::Min, &[lo, hi])
        })
    }

    #[test]
    fn inline_replaces_call_with_fragment() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let call = b.op(Opcode::Call, &[x]);
        let st = b.store_stream(1, call);
        let _ = st;
        let dfg = b.finish();
        let out = inline_call(&dfg, call, &saturate_fragment());
        assert!(out.node(call).is_dead());
        assert!(verify_dfg(&out).is_ok());
        // No calls remain; min/max appear.
        let ops: Vec<Opcode> = out
            .schedulable_ops()
            .map(|id| out.node(id).opcode().unwrap())
            .collect();
        assert!(!ops.contains(&Opcode::Call));
        assert!(ops.contains(&Opcode::Min));
        assert!(ops.contains(&Opcode::Max));
    }

    #[test]
    fn inline_preserves_dataflow() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let call = b.op(Opcode::Call, &[x]);
        let y = b.op(Opcode::Add, &[call, x]);
        b.mark_live_out(y);
        let dfg = b.finish();
        let out = inline_call(&dfg, call, &saturate_fragment());
        // y now consumes the fragment's Min result.
        let y_preds: Vec<Opcode> = out
            .pred_edges(y)
            .map(|e| out.node(e.src).opcode().unwrap())
            .collect();
        assert!(y_preds.contains(&Opcode::Min));
        assert!(y_preds.contains(&Opcode::Load));
    }

    #[test]
    fn inline_propagates_live_out() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let call = b.op(Opcode::Call, &[x]);
        b.mark_live_out(call);
        let dfg = b.finish();
        let out = inline_call(&dfg, call, &saturate_fragment());
        assert_eq!(out.live_out_ids().count(), 1);
    }

    #[test]
    fn inline_all_handles_multiple_calls() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let c1 = b.op(Opcode::Call, &[x]);
        let c2 = b.op(Opcode::Call, &[c1]);
        b.store_stream(1, c2);
        let dfg = b.finish();
        let (out, n) = inline_all(&dfg, |_| Some(saturate_fragment()));
        assert_eq!(n, 2);
        assert!(out
            .schedulable_ops()
            .all(|id| out.node(id).opcode() != Some(Opcode::Call)));
    }

    #[test]
    fn invisible_callee_stays() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let c = b.op(Opcode::Call, &[x]);
        b.mark_live_out(c);
        let dfg = b.finish();
        let (out, n) = inline_all(&dfg, |_| None);
        assert_eq!(n, 0);
        assert!(out
            .schedulable_ops()
            .any(|id| out.node(id).opcode() == Some(Opcode::Call)));
    }

    #[test]
    #[should_panic(expected = "must be a call")]
    fn inlining_non_call_panics() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let dfg = b.finish();
        let _ = inline_call(&dfg, x, &saturate_fragment());
        let _ = Instruction::new(Opcode::Add, Some(veal_ir::VReg::new(0)), vec![]);
    }
}
