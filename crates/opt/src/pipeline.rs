//! The full static legalization pipeline.
//!
//! `legalize` applies, in order: aggressive inlining, aggressive
//! predication (if-conversion), unroll reduction, and stream-pressure
//! fission — the transformations paper Figure 7 shows are "critically
//! important" (75% of accelerator speedup is lost without them).

use crate::fission::fission_by_streams;
use crate::inline::{inline_all, CalleeFragment};
use crate::predicate::if_convert_guards;
use crate::reroll::reroll;
use veal_ir::LoopBody;

/// A loop as emitted by the front-end, before legalization.
#[derive(Debug, Clone)]
pub struct RawLoop {
    /// The loop body (possibly containing calls, guard branches, unrolled
    /// copies, or too many streams).
    pub body: LoopBody,
    /// The callee body for calls inside the loop, when visible to the
    /// compiler (`None` models an opaque library call that cannot be
    /// inlined — the paper's "Subroutine" category).
    pub callee: Option<CalleeFragment>,
}

impl RawLoop {
    /// A raw loop with no calls.
    #[must_use]
    pub fn plain(body: LoopBody) -> Self {
        RawLoop { body, callee: None }
    }
}

/// Target limits the static compiler legalizes toward (taken from the
/// accelerator family it expects; using a *superset* of any future
/// hardware's limits keeps binaries forward compatible, paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformLimits {
    /// Load streams per loop.
    pub max_load_streams: usize,
    /// Store streams per loop.
    pub max_store_streams: usize,
}

impl Default for TransformLimits {
    fn default() -> Self {
        // The paper design point's budgets.
        TransformLimits {
            max_load_streams: 16,
            max_store_streams: 8,
        }
    }
}

/// One legalized output loop.
#[derive(Debug, Clone)]
pub struct LegalizedLoop {
    /// The transformed body.
    pub body: LoopBody,
    /// Trip-count multiplier relative to the raw loop (from re-rolling:
    /// a loop re-rolled by 4 runs 4× the iterations).
    pub trip_multiplier: u32,
}

/// Runs the static pipeline on one raw loop. Always returns at least one
/// loop; when a transformation cannot apply the loop passes through
/// unchanged (and may later be rejected by the VM, running on the CPU).
#[must_use]
pub fn legalize(raw: &RawLoop, limits: &TransformLimits) -> Vec<LegalizedLoop> {
    // 1. Aggressive inlining.
    let (mut dfg, _inlined) = match &raw.callee {
        Some(frag) => inline_all(&raw.body.dfg, |_| Some(frag.clone())),
        None => (raw.body.dfg.clone(), 0),
    };
    // 2. Aggressive predication.
    let (converted, _guards) = if_convert_guards(&dfg);
    dfg = converted;
    // 3. Unroll reduction. Operates on compute views; a full body with
    //    control ops is a single weakly-connected component through its
    //    induction pattern only if the copies share control — try both.
    let mut trip_multiplier = 1u32;
    if let Some((rolled, k)) = reroll(&dfg) {
        dfg = rolled;
        trip_multiplier = k;
    }
    // 4. Stream-pressure fission.
    if let Some(parts) = fission_by_streams(&dfg, limits.max_load_streams, limits.max_store_streams)
    {
        return parts
            .into_iter()
            .enumerate()
            .map(|(i, part)| LegalizedLoop {
                body: LoopBody::new(format!("{}.f{}", raw.body.name, i), part),
                trip_multiplier,
            })
            .collect();
    }
    vec![LegalizedLoop {
        body: LoopBody::new(raw.body.name.clone(), dfg),
        trip_multiplier,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{classify_loop, DfgBuilder, LoopClass, Opcode};

    #[test]
    fn plain_supported_loop_passes_through() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        let raw = RawLoop::plain(LoopBody::new("p", b.finish()));
        let out = legalize(&raw, &TransformLimits::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].trip_multiplier, 1);
        assert_eq!(
            classify_loop(&out[0].body.dfg),
            LoopClass::ModuloSchedulable
        );
    }

    #[test]
    fn call_loop_becomes_schedulable_with_visible_callee() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let c = b.op(Opcode::Call, &[x]);
        b.store_stream(1, c);
        let raw = RawLoop {
            body: LoopBody::new("c", b.finish()),
            callee: Some(CalleeFragment::build(1, |fb, p| {
                fb.op(Opcode::Abs, &[p[0]])
            })),
        };
        let out = legalize(&raw, &TransformLimits::default());
        assert_eq!(out.len(), 1);
        assert_eq!(
            classify_loop(&out[0].body.dfg),
            LoopClass::ModuloSchedulable
        );
    }

    #[test]
    fn opaque_call_loop_stays_subroutine() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let c = b.op(Opcode::Call, &[x]);
        b.store_stream(1, c);
        let raw = RawLoop::plain(LoopBody::new("c", b.finish()));
        let out = legalize(&raw, &TransformLimits::default());
        assert_eq!(classify_loop(&out[0].body.dfg), LoopClass::Subroutine);
    }

    #[test]
    fn unrolled_wide_loop_rerolls_and_fissions() {
        // 24 unrolled copies of a 3-op kernel: reroll to 1 copy (no
        // fission needed afterwards).
        let mut b = DfgBuilder::new();
        for i in 0..24u16 {
            let x = b.load_stream(i * 2);
            let y = b.op(Opcode::Mul, &[x, x]);
            b.store_stream(i * 2 + 1, y);
        }
        let raw = RawLoop::plain(LoopBody::new("u", b.finish()));
        let out = legalize(&raw, &TransformLimits::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].trip_multiplier, 24);
        assert_eq!(out[0].body.dfg.schedulable_ops().count(), 3);
    }

    #[test]
    fn wide_irregular_loop_fissions() {
        // An irregular (non-rerollable) 24-load reduction.
        let mut b = DfgBuilder::new();
        let loads: Vec<_> = (0..24).map(|i| b.load_stream(i)).collect();
        let mut acc = loads[0];
        for (j, &l) in loads[1..].iter().enumerate() {
            let op = if j % 2 == 0 { Opcode::Add } else { Opcode::Xor };
            acc = b.op(op, &[acc, l]);
        }
        b.store_stream(24, acc);
        let raw = RawLoop::plain(LoopBody::new("w", b.finish()));
        let out = legalize(&raw, &TransformLimits::default());
        assert!(out.len() >= 2, "expected fission, got {} loops", out.len());
        for l in &out {
            assert_eq!(classify_loop(&l.body.dfg), LoopClass::ModuloSchedulable);
        }
    }
}
