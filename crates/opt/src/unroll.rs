//! Loop unrolling — the inverse of [`crate::reroll::reroll`].
//!
//! CPU-oriented compilers unroll inner loops to expose ILP; the workload
//! generator uses this pass to produce the "over-unrolled raw binary"
//! inputs of the Figure 7 experiment, and the property tests use the
//! `reroll(unroll(x, k)) == x` round trip to pin both passes down.

use std::collections::HashMap;
use veal_ir::dfg::Dfg;
use veal_ir::OpId;

/// Unrolls a *compute-view* graph (pre-separated: stream-annotated memory
/// ops, no control pattern) `factor` times: each copy gets fresh nodes and
/// disjoint stream ids; scalar live-ins and constants are duplicated per
/// copy (as a real unroller's rematerialization would).
///
/// Loop-carried edges stay *within* each copy with their distance
/// unchanged — modelling an unroller that kept independent accumulator
/// lanes, the common vectorization-friendly shape.
///
/// # Panics
///
/// Panics if `factor` is zero.
#[must_use]
pub fn unroll(dfg: &Dfg, factor: u16) -> Dfg {
    assert!(factor > 0, "unroll factor must be positive");
    let streams_per_copy = dfg
        .live_ids()
        .filter_map(|id| dfg.node(id).stream)
        .max()
        .map_or(0, |s| s + 1);
    let mut out = Dfg::new();
    for copy in 0..factor {
        let mut map: HashMap<OpId, OpId> = HashMap::new();
        for id in dfg.live_ids() {
            let node = dfg.node(id);
            let new = out.add_node(node.kind.clone());
            if let Some(s) = node.stream {
                out.node_mut(new).stream = Some(copy * streams_per_copy + s);
            }
            out.node_mut(new).live_out = node.live_out;
            map.insert(id, new);
        }
        for e in dfg.edges() {
            let (Some(&src), Some(&dst)) = (map.get(&e.src), map.get(&e.dst)) else {
                continue;
            };
            out.add_edge(src, dst, e.distance, e.kind);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reroll::reroll;
    use veal_ir::{verify_dfg, DfgBuilder, Opcode};

    fn kernel() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.constant(3);
        let m = b.op(Opcode::Mul, &[x, k]);
        let acc = b.op(Opcode::Add, &[m]);
        b.loop_carried(acc, acc, 1);
        b.store_stream(1, acc);
        b.mark_live_out(acc);
        b.finish()
    }

    #[test]
    fn unroll_multiplies_ops_and_streams() {
        let base = kernel();
        let u4 = unroll(&base, 4);
        assert!(verify_dfg(&u4).is_ok());
        assert_eq!(
            u4.schedulable_ops().count(),
            4 * base.schedulable_ops().count()
        );
        let streams: std::collections::HashSet<u16> = u4
            .schedulable_ops()
            .filter_map(|id| u4.node(id).stream)
            .collect();
        assert_eq!(streams.len(), 8); // 2 per copy × 4
    }

    #[test]
    fn unroll_by_one_is_isomorphic() {
        let base = kernel();
        let u1 = unroll(&base, 1);
        assert_eq!(u1.schedulable_ops().count(), base.schedulable_ops().count());
        assert_eq!(u1.edges().len(), base.edges().len());
    }

    #[test]
    fn reroll_inverts_unroll() {
        let base = kernel();
        for k in [2u16, 3, 6] {
            let unrolled = unroll(&base, k);
            let (rolled, factor) = reroll(&unrolled).expect("re-rolls");
            assert_eq!(factor, u32::from(k));
            assert_eq!(
                rolled.schedulable_ops().count(),
                base.schedulable_ops().count()
            );
            assert_eq!(rolled.recurrences().len(), base.recurrences().len());
        }
    }

    #[test]
    fn per_copy_recurrences_preserved() {
        let base = kernel();
        let u3 = unroll(&base, 3);
        // Three independent accumulator lanes.
        assert_eq!(u3.recurrences().len(), 3);
    }
}
