//! CFG-level transformations and loop extraction.
//!
//! These passes operate on [`veal_ir::cfg::Function`]s — the form in which
//! an application exists before loop bodies are isolated: function inlining
//! over single-block callees, diamond if-conversion, and extraction of a
//! single-block innermost loop into the dataflow-graph form the rest of
//! VEAL consumes.

use std::collections::HashMap;
use veal_ir::cfg::{BasicBlock, Function, Program};
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::{BlockId, Instruction, LoopBody, NaturalLoop, OpId, Opcode, Operand, VReg};

/// Inlines every call in `func` whose callee (looked up in `program`) is a
/// straight-line single-block function ending in `Ret`. Callee parameters
/// are its lowest-numbered virtual registers, in order. Returns the
/// rewritten function and the number of call sites inlined.
#[must_use]
pub fn inline_calls(program: &Program, func: &Function) -> (Function, usize) {
    let mut blocks: Vec<BasicBlock> = func.blocks().to_vec();
    let mut next_reg = func.num_vregs();
    let mut inlined = 0usize;

    for block in &mut blocks {
        let mut new_instrs: Vec<Instruction> = Vec::with_capacity(block.instrs.len());
        for instr in &block.instrs {
            let Some(callee_id) = instr.callee else {
                new_instrs.push(instr.clone());
                continue;
            };
            let Some(callee) = program.functions.get(callee_id.index()) else {
                new_instrs.push(instr.clone());
                continue;
            };
            if callee.blocks().len() != 1 {
                new_instrs.push(instr.clone()); // not straight-line: keep
                continue;
            }
            let body = &callee.blocks()[0];
            let Some(ret) = body.instrs.last().filter(|i| i.opcode == Opcode::Ret) else {
                new_instrs.push(instr.clone());
                continue;
            };
            // Rename callee registers into fresh caller registers; the
            // first `arity` callee registers are parameters bound to the
            // call's register arguments.
            let args: Vec<VReg> = instr.src_regs().collect();
            let mut rename: HashMap<VReg, VReg> = HashMap::new();
            for (i, &a) in args.iter().enumerate() {
                rename.insert(VReg::new(i), a);
            }
            let mut fresh = |r: VReg, next_reg: &mut usize| -> VReg {
                *rename.entry(r).or_insert_with(|| {
                    let nr = VReg::new(*next_reg);
                    *next_reg += 1;
                    nr
                })
            };
            for ci in &body.instrs[..body.instrs.len() - 1] {
                let srcs: Vec<Operand> = ci
                    .srcs
                    .iter()
                    .map(|&o| match o {
                        Operand::Reg(r) => Operand::Reg(fresh(r, &mut next_reg)),
                        imm => imm,
                    })
                    .collect();
                let dest = ci.dest.map(|d| fresh(d, &mut next_reg));
                let mut copy = ci.clone();
                copy.srcs = srcs;
                copy.dest = dest;
                new_instrs.push(copy);
            }
            // Bind the return value to the call's destination.
            if let (Some(dest), Some(Operand::Reg(rv))) = (instr.dest, ret.srcs.first()) {
                let mapped = fresh(*rv, &mut next_reg);
                new_instrs.push(Instruction::new(
                    Opcode::Mov,
                    Some(dest),
                    vec![mapped.into()],
                ));
            }
            inlined += 1;
        }
        block.instrs = new_instrs;
    }
    (
        Function::new(func.name().to_owned(), blocks, func.entry(), next_reg),
        inlined,
    )
}

/// If-converts one diamond: a block ending in `BrCond` whose two successor
/// blocks each fall through to a common join. Definitions that occur on
/// both arms are merged with `Select`; the branch becomes a fall-through.
/// Repeats until no diamond remains. Returns the rewritten function and
/// the number of diamonds converted.
#[must_use]
pub fn if_convert(func: &Function) -> (Function, usize) {
    let mut current = func.clone();
    let mut converted = 0usize;
    loop {
        match convert_one_diamond(&current) {
            Some(next) => {
                current = next;
                converted += 1;
            }
            None => return (current, converted),
        }
    }
}

fn convert_one_diamond(func: &Function) -> Option<Function> {
    let preds = func.predecessors();
    for (i, block) in func.blocks().iter().enumerate() {
        let x = BlockId::new(i);
        if block.succs.len() != 2 {
            continue;
        }
        let (t, e) = (block.succs[0], block.succs[1]);
        if t == e || t == x || e == x {
            continue;
        }
        let tb = func.block(t);
        let eb = func.block(e);
        let single =
            |b: &BasicBlock, id: BlockId| b.succs.len() == 1 && preds[id.index()].len() == 1;
        if !single(tb, t) || !single(eb, e) || tb.succs[0] != eb.succs[0] {
            continue;
        }
        let join = tb.succs[0];
        if join == x {
            continue;
        }
        // Found X -> {T, E} -> J. Build the converted block.
        let cond = match block.instrs.last() {
            Some(br) if br.opcode == Opcode::BrCond => br.src_regs().next()?,
            _ => continue,
        };
        let mut blocks = func.blocks().to_vec();
        let mut next_reg = func.num_vregs();
        let mut merged: Vec<Instruction> = block.instrs[..block.instrs.len() - 1].to_vec();
        // Taken arm executes unchanged; else-arm defs are renamed.
        let mut t_defs: HashMap<VReg, VReg> = HashMap::new();
        for instr in &tb.instrs {
            if instr.opcode == Opcode::Br {
                continue;
            }
            merged.push(instr.clone());
            if let Some(d) = instr.dest {
                t_defs.insert(d, d);
            }
        }
        let mut e_rename: HashMap<VReg, VReg> = HashMap::new();
        let mut both_defs: Vec<(VReg, VReg)> = Vec::new(); // (orig, else-copy)
        for instr in &eb.instrs {
            if instr.opcode == Opcode::Br {
                continue;
            }
            let mut copy = instr.clone();
            copy.srcs = copy
                .srcs
                .iter()
                .map(|&o| match o {
                    Operand::Reg(r) => Operand::Reg(*e_rename.get(&r).unwrap_or(&r)),
                    imm => imm,
                })
                .collect();
            if let Some(d) = copy.dest {
                if t_defs.contains_key(&d) {
                    let fresh = VReg::new(next_reg);
                    next_reg += 1;
                    e_rename.insert(d, fresh);
                    copy.dest = Some(fresh);
                    both_defs.push((d, fresh));
                }
            }
            merged.push(copy);
        }
        for (orig, alt) in both_defs {
            merged.push(Instruction::new(
                Opcode::Select,
                Some(orig),
                vec![cond.into(), orig.into(), alt.into()],
            ));
        }
        merged.push(Instruction::new(Opcode::Br, None, Vec::new()));
        blocks[i] = BasicBlock {
            instrs: merged,
            succs: vec![join],
        };
        // Empty the absorbed arms (unreachable).
        blocks[t.index()] = BasicBlock::default();
        blocks[e.index()] = BasicBlock::default();
        return Some(Function::new(
            func.name().to_owned(),
            blocks,
            func.entry(),
            next_reg,
        ));
    }
    None
}

/// Merges straight-line block chains: whenever a block's single successor
/// has that block as its single predecessor, the two become one (the
/// unconditional branch between them disappears). Run after
/// [`if_convert`] so single-block loops emerge for extraction.
/// Returns the rewritten function and the number of merges.
#[must_use]
pub fn merge_straightline(func: &Function) -> (Function, usize) {
    let mut blocks: Vec<BasicBlock> = func.blocks().to_vec();
    let mut merges = 0usize;
    loop {
        let preds = Function::new(
            func.name().to_owned(),
            blocks.clone(),
            func.entry(),
            func.num_vregs(),
        )
        .predecessors();
        let mut target: Option<(usize, usize)> = None;
        for (i, b) in blocks.iter().enumerate() {
            if b.succs.len() != 1 {
                continue;
            }
            let s = b.succs[0];
            if s.index() == i || s == func.entry() {
                continue;
            }
            if preds[s.index()].len() == 1 && !blocks[s.index()].instrs.is_empty() {
                target = Some((i, s.index()));
                break;
            }
        }
        let Some((x, y)) = target else { break };
        // Drop X's trailing unconditional branch, splice Y in.
        let mut merged = blocks[x].instrs.clone();
        if merged.last().map(|i| i.opcode) == Some(Opcode::Br) {
            merged.pop();
        }
        merged.extend(blocks[y].instrs.iter().cloned());
        let succs = blocks[y].succs.clone();
        blocks[x] = BasicBlock {
            instrs: merged,
            succs,
        };
        blocks[y] = BasicBlock::default();
        // Redirect any successor references to Y onto X (none should exist
        // for a single-pred Y, but keep the CFG total).
        for b in &mut blocks {
            for s in &mut b.succs {
                if s.index() == y {
                    *s = BlockId::new(x);
                }
            }
        }
        merges += 1;
    }
    (
        Function::new(
            func.name().to_owned(),
            blocks,
            func.entry(),
            func.num_vregs(),
        ),
        merges,
    )
}

/// Why a loop could not be extracted to dataflow form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The loop spans more than one basic block (if-convert it first).
    MultiBlock,
    /// The loop block does not end in a conditional branch.
    NoBackBranch,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::MultiBlock => write!(f, "loop spans multiple blocks"),
            ExtractError::NoBackBranch => write!(f, "loop block lacks a back branch"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts a single-block innermost loop into a full loop-body dataflow
/// graph: intra-block def-use becomes distance-0 edges, uses of registers
/// defined *later* in the block (or live around the back edge) become
/// distance-1 loop-carried edges, registers never defined in the block
/// become live-ins, and immediates become constants. Registers in
/// `live_outs` are marked live after the loop.
///
/// Memory streams are assumed mutually independent (paper §2.1: "input and
/// output memory streams can optionally be assumed mutually exclusive"),
/// so no memory-ordering edges are added.
pub fn extract_loop_dfg(
    func: &Function,
    lp: &NaturalLoop,
    live_outs: &[VReg],
) -> Result<LoopBody, ExtractError> {
    if lp.blocks.len() != 1 {
        return Err(ExtractError::MultiBlock);
    }
    let block = func.block(lp.header);
    if block
        .instrs
        .last()
        .map(|i| i.opcode)
        .filter(|&op| op == Opcode::BrCond)
        .is_none()
    {
        return Err(ExtractError::NoBackBranch);
    }

    let mut dfg = Dfg::new();
    // Final def of each register in the block (for loop-carried edges).
    let mut final_def: HashMap<VReg, usize> = HashMap::new();
    for (idx, instr) in block.instrs.iter().enumerate() {
        if let Some(d) = instr.dest {
            final_def.insert(d, idx);
        }
    }
    let mut nodes: Vec<OpId> = Vec::with_capacity(block.instrs.len());
    for instr in &block.instrs {
        nodes.push(dfg.add_node(NodeKind::Op(instr.opcode)));
    }
    let mut live_ins: HashMap<VReg, OpId> = HashMap::new();
    let mut consts: HashMap<i64, OpId> = HashMap::new();
    let mut cur_def: HashMap<VReg, usize> = HashMap::new();
    for (idx, instr) in block.instrs.iter().enumerate() {
        for src in &instr.srcs {
            match *src {
                Operand::Reg(r) => {
                    if let Some(&d) = cur_def.get(&r) {
                        dfg.add_edge(nodes[d], nodes[idx], 0, EdgeKind::Data);
                    } else if let Some(&d) = final_def.get(&r) {
                        // Defined later in the block: value from the
                        // previous iteration.
                        dfg.add_edge(nodes[d], nodes[idx], 1, EdgeKind::Data);
                    } else {
                        let li = *live_ins
                            .entry(r)
                            .or_insert_with(|| dfg.add_node(NodeKind::LiveIn));
                        dfg.add_edge(li, nodes[idx], 0, EdgeKind::Data);
                    }
                }
                Operand::Imm(v) => {
                    let k = *consts
                        .entry(v)
                        .or_insert_with(|| dfg.add_node(NodeKind::Const(v)));
                    dfg.add_edge(k, nodes[idx], 0, EdgeKind::Data);
                }
            }
        }
        if let Some(d) = instr.dest {
            cur_def.insert(d, idx);
        }
    }
    for r in live_outs {
        if let Some(&d) = final_def.get(r) {
            dfg.node_mut(nodes[d]).live_out = true;
        }
    }
    Ok(LoopBody::new(format!("{}.{}", func.name(), lp.header), dfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{classify_loop, FunctionBuilder, LoopClass};

    /// A single-block counted loop: i += 1; a += s*i-ish body.
    fn counted_loop_fn() -> (Function, NaturalLoop) {
        let mut fb = FunctionBuilder::new("k");
        let entry = fb.block();
        let body = fb.block();
        let exit = fb.block();
        fb.set_entry(entry);
        fb.branch(entry, body);
        let i = fb.fresh_reg();
        let n = fb.fresh_reg();
        let acc = fb.fresh_reg();
        let c = fb.fresh_reg();
        fb.push(body, Opcode::Add, Some(i), vec![i.into(), 1i64.into()]);
        fb.push(body, Opcode::Add, Some(acc), vec![acc.into(), i.into()]);
        fb.push(body, Opcode::CmpLt, Some(c), vec![i.into(), n.into()]);
        fb.cond_branch(body, c, body, exit);
        fb.ret(exit, Some(acc));
        let f = fb.finish();
        let lp = f.natural_loops().into_iter().next().expect("loop found");
        (f, lp)
    }

    #[test]
    fn extract_builds_recurrences() {
        let (f, lp) = counted_loop_fn();
        let body = extract_loop_dfg(&f, &lp, &[VReg::new(2)]).expect("extracts");
        // i and acc are both self-recurrences.
        assert_eq!(body.dfg.recurrences().len(), 2);
        assert_eq!(body.dfg.live_out_ids().count(), 1);
        assert_eq!(body.dfg.live_in_ids().count(), 1); // n
    }

    #[test]
    fn extracted_counted_loop_is_schedulable() {
        let (f, lp) = counted_loop_fn();
        let body = extract_loop_dfg(&f, &lp, &[]).expect("extracts");
        // The shape matches the separator's counted-loop pattern... the
        // accumulator also reads i, so i stays in the compute graph.
        assert_eq!(classify_loop(&body.dfg), LoopClass::ModuloSchedulable);
    }

    #[test]
    fn multiblock_loop_rejected() {
        let mut fb = FunctionBuilder::new("m");
        let entry = fb.block();
        let h = fb.block();
        let b2 = fb.block();
        let exit = fb.block();
        fb.set_entry(entry);
        fb.branch(entry, h);
        let c = fb.fresh_reg();
        fb.cond_branch(h, c, b2, exit);
        fb.branch(b2, h);
        fb.ret(exit, None);
        let f = fb.finish();
        let lp = f.natural_loops().into_iter().next().unwrap();
        assert_eq!(
            extract_loop_dfg(&f, &lp, &[]).unwrap_err(),
            ExtractError::MultiBlock
        );
    }

    #[test]
    fn inline_single_block_callee() {
        // callee: f(a) = a * 3 (params are v0..)
        let mut cb = FunctionBuilder::new("times3");
        let b0 = cb.block();
        cb.set_entry(b0);
        let a = cb.fresh_reg(); // v0: parameter
        let r = cb.fresh_reg();
        cb.push(b0, Opcode::Mul, Some(r), vec![a.into(), 3i64.into()]);
        cb.ret(b0, Some(r));
        let callee = cb.finish();

        let mut fb = FunctionBuilder::new("caller");
        let e = fb.block();
        fb.set_entry(e);
        let x = fb.fresh_reg();
        let y = fb.fresh_reg();
        fb.push_instr(
            e,
            Instruction::call(y, veal_ir::FuncId::new(1), vec![x.into()]),
        );
        fb.ret(e, Some(y));
        let caller = fb.finish();

        let program = Program {
            functions: vec![caller.clone(), callee],
        };
        let (out, n) = inline_calls(&program, &caller);
        assert_eq!(n, 1);
        let ops: Vec<Opcode> = out.blocks()[0].instrs.iter().map(|i| i.opcode).collect();
        assert!(ops.contains(&Opcode::Mul));
        assert!(!ops.contains(&Opcode::Call));
    }

    #[test]
    fn if_convert_merges_diamond() {
        // x: c = cmp; brc -> t / e; t: y = add; e: y = sub; join: ret y
        let mut fb = FunctionBuilder::new("d");
        let x = fb.block();
        let t = fb.block();
        let e = fb.block();
        let j = fb.block();
        fb.set_entry(x);
        let v = fb.fresh_reg();
        let c = fb.fresh_reg();
        let y = fb.fresh_reg();
        fb.push(x, Opcode::CmpLt, Some(c), vec![v.into(), 0i64.into()]);
        fb.cond_branch(x, c, t, e);
        fb.push(t, Opcode::Add, Some(y), vec![v.into(), 1i64.into()]);
        fb.branch(t, j);
        fb.push(e, Opcode::Sub, Some(y), vec![v.into(), 1i64.into()]);
        fb.branch(e, j);
        fb.ret(j, Some(y));
        let f = fb.finish();
        let (out, n) = if_convert(&f);
        assert_eq!(n, 1);
        let ops: Vec<Opcode> = out.blocks()[0].instrs.iter().map(|i| i.opcode).collect();
        assert!(ops.contains(&Opcode::Select));
        assert!(!ops.contains(&Opcode::BrCond));
        // Straight-line now: one loopless CFG path.
        assert!(out.natural_loops().is_empty());
    }

    #[test]
    fn if_convert_leaves_loops_alone() {
        let (f, _) = counted_loop_fn();
        let (out, n) = if_convert(&f);
        assert_eq!(n, 0);
        assert_eq!(out.natural_loops().len(), 1);
    }
}
