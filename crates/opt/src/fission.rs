//! Loop fission driven by memory-stream pressure.
//!
//! Paper §3.1: "Another potential solution is to break the large loops up
//! into smaller loops using a technique such as loop fissioning. This would
//! reduce the required number of streams for each individual loop but
//! increase memory traffic, as dividing the loop up typically creates
//! communication streams between the smaller loops."
//!
//! The pass operates on the *compute view* (after control/address
//! separation): the ops are split along a dependence-closed topological
//! cut, values crossing the cut are stored to a scratch stream by the first
//! loop and re-loaded by the second, and each half is emitted as a
//! pre-separated loop body with compacted stream ids.

use std::collections::HashMap;
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::streams::separate;
use veal_ir::{CostMeter, OpId, Opcode};

/// Splits `body` (a full or pre-separated loop) into loops each needing at
/// most `max_loads` load streams and `max_stores` store streams.
///
/// Returns `None` when the loop already fits, cannot be separated, or
/// cannot be legally cut (a loop-carried dependence would cross the cut
/// backwards). On success the returned loops are in execution order.
#[must_use]
pub fn fission_by_streams(body: &Dfg, max_loads: usize, max_stores: usize) -> Option<Vec<Dfg>> {
    let mut scratch = CostMeter::new();
    let sep = separate(body, &mut scratch).ok()?;
    let summary = sep.summary();
    if summary.loads <= max_loads && summary.stores <= max_stores {
        return None;
    }
    let mut result = Vec::new();
    if !fission_rec(sep.dfg, max_loads, max_stores, 6, &mut result) {
        return None;
    }
    (result.len() >= 2).then_some(result)
}

/// Recursively splits until each part fits, emitting parts in execution
/// order. Returns `false` when a part cannot be split further.
fn fission_rec(
    dfg: Dfg,
    max_loads: usize,
    max_stores: usize,
    depth: u32,
    out: &mut Vec<Dfg>,
) -> bool {
    let (loads, stores) = stream_counts(&dfg);
    if loads <= max_loads && stores <= max_stores {
        out.push(compact_streams(&dfg));
        return true;
    }
    if depth == 0 {
        return false;
    }
    let Some((prefix, suffix)) = split_once(&dfg) else {
        return false;
    };
    fission_rec(prefix, max_loads, max_stores, depth - 1, out)
        && fission_rec(suffix, max_loads, max_stores, depth - 1, out)
}

fn stream_counts(dfg: &Dfg) -> (usize, usize) {
    let mut loads = std::collections::HashSet::new();
    let mut stores = std::collections::HashSet::new();
    for id in dfg.schedulable_ops() {
        if let (Some(op), Some(s)) = (dfg.node(id).opcode(), dfg.node(id).stream) {
            match op {
                Opcode::Load => {
                    loads.insert(s);
                }
                Opcode::Store => {
                    stores.insert(s);
                }
                _ => {}
            }
        }
    }
    (loads.len(), stores.len())
}

/// Splits a compute-view graph at the midpoint of its topological order.
/// Returns `None` if every candidate cut is crossed backwards by a
/// loop-carried edge.
fn split_once(dfg: &Dfg) -> Option<(Dfg, Dfg)> {
    let order = dfg.topo_order().ok()?;
    // Sorting by descending height (unit-latency longest path to a sink
    // over distance-0 edges) is itself a topological order, and it
    // interleaves each producer right before its consumers — so a prefix
    // cut crosses few values instead of bridging every input stream.
    let mut height: HashMap<OpId, u32> = HashMap::new();
    for &v in order.iter().rev() {
        let h = dfg
            .succ_edges(v)
            .filter(|e| e.distance == 0)
            .map(|e| height.get(&e.dst).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        height.insert(v, h);
    }
    let mut ops: Vec<OpId> = order
        .into_iter()
        .filter(|&v| dfg.node(v).is_schedulable())
        .collect();
    ops.sort_by_key(|&v| (std::cmp::Reverse(height[&v]), v));
    if ops.len() < 2 {
        return None;
    }
    let mid = ops.len() / 2;
    // Try cut points outward from the middle.
    let mut candidates: Vec<usize> = Vec::new();
    for delta in 0..ops.len() {
        if mid + delta < ops.len() {
            candidates.push(mid + delta);
        }
        if delta > 0 && mid >= delta {
            candidates.push(mid - delta);
        }
    }
    for cut in candidates {
        if cut == 0 || cut >= ops.len() {
            continue;
        }
        let prefix: std::collections::HashSet<OpId> = ops[..cut].iter().copied().collect();
        let legal = dfg.edges().iter().all(|e| {
            let src_in = prefix.contains(&e.src);
            let dst_in = prefix.contains(&e.dst);
            // A backward edge (suffix -> prefix) of any distance makes the
            // cut illegal: the first loop would need the second's values.
            !(dst_in && !src_in && dfg.node(e.src).is_schedulable())
        });
        if legal {
            return Some(extract_parts(dfg, &prefix));
        }
    }
    None
}

fn extract_parts(dfg: &Dfg, prefix: &std::collections::HashSet<OpId>) -> (Dfg, Dfg) {
    let mut a = Dfg::new();
    let mut b = Dfg::new();
    let mut map_a: HashMap<OpId, OpId> = HashMap::new();
    let mut map_b: HashMap<OpId, OpId> = HashMap::new();

    // Copy schedulable ops to their side; pseudo nodes are copied lazily to
    // whichever side consumes them.
    for id in dfg.live_ids() {
        let node = dfg.node(id);
        match &node.kind {
            NodeKind::Op(_) if node.is_schedulable() => {
                let (graph, map) = if prefix.contains(&id) {
                    (&mut a, &mut map_a)
                } else {
                    (&mut b, &mut map_b)
                };
                let new = graph.add_node(node.kind.clone());
                graph.node_mut(new).stream = node.stream;
                graph.node_mut(new).live_out = node.live_out;
                map.insert(id, new);
            }
            _ => {}
        }
    }
    let copy_pseudo = |id: OpId,
                       into_a: bool,
                       a: &mut Dfg,
                       b: &mut Dfg,
                       map_a: &mut HashMap<OpId, OpId>,
                       map_b: &mut HashMap<OpId, OpId>| {
        let (graph, map) = if into_a { (a, map_a) } else { (b, map_b) };
        if let Some(&n) = map.get(&id) {
            return n;
        }
        let n = graph.add_node(dfg.node(id).kind.clone());
        map.insert(id, n);
        n
    };

    // Scratch streams for cut values: use fresh high stream ids (compacted
    // later). Each crossing value gets one store in A and one load in B.
    let mut next_stream: u16 = dfg
        .live_ids()
        .filter_map(|id| dfg.node(id).stream)
        .max()
        .map_or(0, |s| s + 1);
    let mut bridges: HashMap<OpId, OpId> = HashMap::new(); // old src -> load in B

    for e in dfg.edges() {
        let src_sched = dfg.node(e.src).is_schedulable();
        let src_in_a = src_sched && prefix.contains(&e.src);
        let dst_in_a = prefix.contains(&e.dst);
        if !dfg.node(e.dst).is_schedulable() {
            continue;
        }
        if !src_sched {
            // Pseudo producer: copy into the consumer's side.
            let p = copy_pseudo(e.src, dst_in_a, &mut a, &mut b, &mut map_a, &mut map_b);
            let (graph, map) = if dst_in_a {
                (&mut a, &map_a)
            } else {
                (&mut b, &map_b)
            };
            graph.add_edge(p, map[&e.dst], e.distance, e.kind);
        } else if src_in_a == dst_in_a {
            let (graph, map) = if src_in_a {
                (&mut a, &map_a)
            } else {
                (&mut b, &map_b)
            };
            graph.add_edge(map[&e.src], map[&e.dst], e.distance, e.kind);
        } else {
            // Crossing edge A -> B: bridge through a scratch stream.
            debug_assert!(src_in_a, "backward cuts were rejected");
            let load = *bridges.entry(e.src).or_insert_with(|| {
                let stream = next_stream;
                next_stream += 1;
                // Store in A.
                let st = a.add_node(NodeKind::Op(Opcode::Store));
                a.node_mut(st).stream = Some(stream);
                a.add_edge(map_a[&e.src], st, 0, EdgeKind::Data);
                // Load in B.
                let ld = b.add_node(NodeKind::Op(Opcode::Load));
                b.node_mut(ld).stream = Some(stream);
                ld
            });
            b.add_edge(load, map_b[&e.dst], e.distance, e.kind);
        }
    }
    (a, b)
}

/// Renumbers stream annotations densely from 0.
fn compact_streams(dfg: &Dfg) -> Dfg {
    let mut out = dfg.clone();
    let mut map: HashMap<u16, u16> = HashMap::new();
    let ids: Vec<OpId> = out.schedulable_ops().collect();
    for id in ids {
        if let Some(s) = out.node(id).stream {
            let next = map.len() as u16;
            let new = *map.entry(s).or_insert(next);
            out.node_mut(id).stream = Some(new);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{verify_dfg, DfgBuilder};

    /// A wide reduction: n loads summed pairwise then chained.
    fn wide_loop(n: u16) -> Dfg {
        let mut b = DfgBuilder::new();
        let loads: Vec<OpId> = (0..n).map(|i| b.load_stream(i)).collect();
        let mut acc = loads[0];
        for &l in &loads[1..] {
            acc = b.op(Opcode::Add, &[acc, l]);
        }
        b.store_stream(n, acc);
        b.finish()
    }

    #[test]
    fn small_loop_not_fissioned() {
        assert!(fission_by_streams(&wide_loop(3), 16, 8).is_none());
    }

    #[test]
    fn wide_loop_fissions_under_budget() {
        let parts = fission_by_streams(&wide_loop(12), 8, 8).expect("fissions");
        assert!(parts.len() >= 2);
        for p in &parts {
            let (l, s) = stream_counts(p);
            assert!(l <= 8, "part uses {l} load streams");
            assert!(s <= 8, "part uses {s} store streams");
            assert!(verify_dfg(p).is_ok());
        }
    }

    #[test]
    fn fission_creates_communication_streams() {
        let total_mem_before: usize = {
            let d = wide_loop(12);
            d.schedulable_ops()
                .filter(|&id| d.node(id).opcode().is_some_and(Opcode::is_mem))
                .count()
        };
        let parts = fission_by_streams(&wide_loop(12), 8, 8).unwrap();
        let total_mem_after: usize = parts
            .iter()
            .map(|p| {
                p.schedulable_ops()
                    .filter(|&id| p.node(id).opcode().is_some_and(Opcode::is_mem))
                    .count()
            })
            .sum();
        // Increased memory traffic, exactly as the paper warns.
        assert!(total_mem_after > total_mem_before);
    }

    #[test]
    fn loop_carried_across_cut_blocks_fission() {
        // A single recurrence threading through every op: no legal cut.
        let mut b = DfgBuilder::new();
        let loads: Vec<OpId> = (0..12).map(|i| b.load_stream(i)).collect();
        let mut acc = b.op(Opcode::Add, &[loads[0]]);
        let first = acc;
        for &l in &loads[1..] {
            acc = b.op(Opcode::Add, &[acc, l]);
        }
        b.loop_carried(acc, first, 1);
        b.store_stream(12, acc);
        let dfg = b.finish();
        assert!(fission_by_streams(&dfg, 8, 8).is_none());
    }

    #[test]
    fn compact_streams_renumbers_densely() {
        let parts = fission_by_streams(&wide_loop(12), 8, 8).unwrap();
        for p in &parts {
            let mut seen: Vec<u16> = p
                .schedulable_ops()
                .filter_map(|id| p.node(id).stream)
                .collect();
            seen.sort_unstable();
            seen.dedup();
            for (i, &s) in seen.iter().enumerate() {
                assert_eq!(s as usize, i, "streams must be dense");
            }
        }
    }
}
