//! Aggressive predication (if-conversion) at the dataflow level.
//!
//! The accelerator fully predicates branches inside the loop body
//! (paper §2.1); a loop whose binary encoding still contains side-exit
//! guard branches looks like it "needs speculation" to the dynamic
//! translator and is rejected. The static compiler if-converts such
//! guards: the guarded values are computed unconditionally and merged with
//! `Select`, and the guard branch disappears. Only the loop's back branch
//! (the counted-induction compare pattern) remains.

use veal_ir::dfg::{Dfg, NodeKind};
use veal_ir::{OpId, Opcode};

/// Whether `id` matches the induction-pattern address generator (an
/// `Add`/`Sub` with a distance-1 self edge and const/live-in inputs) —
/// duplicated from the stream separator's pattern so this pass can identify
/// the real back branch.
fn is_induction(dfg: &Dfg, id: OpId) -> bool {
    let Some(op) = dfg.node(id).opcode() else {
        return false;
    };
    if !matches!(op, Opcode::Add | Opcode::Sub) {
        return false;
    }
    let mut has_self = false;
    for e in dfg.pred_edges(id) {
        if e.src == id {
            if e.distance != 1 {
                return false;
            }
            has_self = true;
        } else if !matches!(dfg.node(e.src).kind, NodeKind::Const(_) | NodeKind::LiveIn) {
            return false;
        }
    }
    has_self
}

/// Whether a `BrCond` is the loop's counted back branch: its condition is a
/// compare of an induction variable against a constant or live-in bound.
fn is_back_branch(dfg: &Dfg, br: OpId) -> bool {
    let mut preds = dfg.pred_edges(br);
    let Some(first) = preds.next() else {
        return false;
    };
    if preds.next().is_some() {
        return false;
    }
    let cmp = first.src;
    if !matches!(
        dfg.node(cmp).opcode(),
        Some(Opcode::CmpEq | Opcode::CmpNe | Opcode::CmpLt | Opcode::CmpLe)
    ) {
        return false;
    }
    let mut saw_induction = false;
    for e in dfg.pred_edges(cmp) {
        match &dfg.node(e.src).kind {
            NodeKind::Const(_) | NodeKind::LiveIn => {}
            NodeKind::Op(_) if is_induction(dfg, e.src) => saw_induction = true,
            NodeKind::Op(_) => return false,
        }
    }
    saw_induction
}

/// If-converts side-exit guard branches: every `BrCond` that is *not* the
/// counted back branch is deleted (its condition value remains available to
/// the `Select`s that consume it). Returns the rewritten graph and the
/// number of guards removed.
///
/// The pass is a no-op when there is nothing to convert; it never removes
/// the loop's back branch.
///
/// # Example
///
/// ```
/// use veal_ir::{classify_loop, DfgBuilder, LoopClass, Opcode};
/// use veal_opt::if_convert_guards;
///
/// let mut b = DfgBuilder::new();
/// // Guarded update: if (x < k) y = x; else y = k  — encoded with a
/// // branchy guard *and* redundantly with a select.
/// let x = b.load_stream(0);
/// let k = b.live_in();
/// let c = b.op(Opcode::CmpLt, &[x, k]);
/// b.op(Opcode::BrCond, &[c]); // the guard (side exit in the binary)
/// let y = b.op(Opcode::Select, &[c, x, k]);
/// b.store_stream(1, y);
/// // Counted control.
/// let one = b.constant(1);
/// let i = b.op(Opcode::Add, &[one]);
/// b.loop_carried(i, i, 1);
/// let n = b.live_in();
/// let cc = b.op(Opcode::CmpLt, &[i, n]);
/// b.op(Opcode::BrCond, &[cc]);
/// let raw = b.finish();
///
/// assert_eq!(classify_loop(&raw), LoopClass::NeedsSpeculation);
/// let (converted, removed) = if_convert_guards(&raw);
/// assert_eq!(removed, 1);
/// assert_eq!(classify_loop(&converted), LoopClass::ModuloSchedulable);
/// ```
#[must_use]
pub fn if_convert_guards(dfg: &Dfg) -> (Dfg, usize) {
    let branches: Vec<OpId> = dfg
        .schedulable_ops()
        .filter(|&id| dfg.node(id).opcode() == Some(Opcode::BrCond))
        .collect();
    if branches.len() <= 1 {
        return (dfg.clone(), 0);
    }
    let guards: Vec<OpId> = branches
        .iter()
        .copied()
        .filter(|&br| !is_back_branch(dfg, br))
        .collect();
    if guards.is_empty() || guards.len() == branches.len() {
        // Either nothing to convert or no recognizable back branch (a
        // while-loop): leave untouched.
        return (dfg.clone(), 0);
    }
    let mut out = dfg.clone();
    out.remove_nodes(&guards);
    // Conditions that fed only the removed guards are dead too.
    let dead_conds: Vec<OpId> = out
        .schedulable_ops()
        .filter(|&id| {
            out.node(id).opcode().is_some_and(|op| {
                matches!(
                    op,
                    Opcode::CmpEq | Opcode::CmpNe | Opcode::CmpLt | Opcode::CmpLe
                )
            }) && out.succ_edges(id).next().is_none()
                && !out.node(id).live_out
        })
        .collect();
    if !dead_conds.is_empty() {
        out.remove_nodes(&dead_conds);
    }
    (out, guards.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{classify_loop, DfgBuilder, LoopClass};

    fn counted_control(b: &mut veal_ir::DfgBuilder) {
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
    }

    #[test]
    fn single_branch_loop_untouched() {
        let mut b = DfgBuilder::new();
        counted_control(&mut b);
        let dfg = b.finish();
        let (out, n) = if_convert_guards(&dfg);
        assert_eq!(n, 0);
        assert_eq!(out.schedulable_ops().count(), dfg.schedulable_ops().count());
    }

    #[test]
    fn guard_with_select_converted() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let zero = b.constant(0);
        let c = b.op(Opcode::CmpLt, &[x, zero]);
        b.op(Opcode::BrCond, &[c]);
        let neg = b.op(Opcode::Neg, &[x]);
        let y = b.op(Opcode::Select, &[c, neg, x]);
        b.store_stream(1, y);
        counted_control(&mut b);
        let dfg = b.finish();
        assert_eq!(classify_loop(&dfg), LoopClass::NeedsSpeculation);
        let (out, n) = if_convert_guards(&dfg);
        assert_eq!(n, 1);
        assert_eq!(classify_loop(&out), LoopClass::ModuloSchedulable);
        // The select and its condition survive.
        assert!(out
            .schedulable_ops()
            .any(|id| out.node(id).opcode() == Some(Opcode::Select)));
    }

    #[test]
    fn dead_guard_condition_removed() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let zero = b.constant(0);
        // Condition used only by the guard, no select: after conversion the
        // compare is dead and disappears.
        let c = b.op(Opcode::CmpEq, &[x, zero]);
        b.op(Opcode::BrCond, &[c]);
        b.store_stream(1, x);
        counted_control(&mut b);
        let dfg = b.finish();
        let (out, n) = if_convert_guards(&dfg);
        assert_eq!(n, 1);
        assert!(!out
            .schedulable_ops()
            .any(|id| out.node(id).opcode() == Some(Opcode::CmpEq)));
    }

    #[test]
    fn while_loop_not_converted() {
        // Two branches, neither a counted back branch: leave alone.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let zero = b.constant(0);
        let c1 = b.op(Opcode::CmpNe, &[x, zero]);
        b.op(Opcode::BrCond, &[c1]);
        let c2 = b.op(Opcode::CmpLt, &[x, zero]);
        b.op(Opcode::BrCond, &[c2]);
        let dfg = b.finish();
        let (out, n) = if_convert_guards(&dfg);
        assert_eq!(n, 0);
        assert_eq!(out.schedulable_ops().count(), dfg.schedulable_ops().count());
    }
}
