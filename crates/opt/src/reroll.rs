//! Unroll reduction ("reduced unrolling", paper §4.2).
//!
//! Compilers targeting wide CPUs often unroll innermost loops; on the loop
//! accelerator the unrolled copies inflate the stream count and II for no
//! benefit — modulo scheduling already overlaps iterations. This pass
//! detects a body made of `k` disjoint isomorphic copies of one kernel and
//! keeps a single copy (the caller multiplies the loop's trip count by
//! `k`).

use std::collections::HashMap;
use veal_ir::dfg::{Dfg, NodeKind};
use veal_ir::OpId;

/// Attempts to re-roll `dfg` (a compute-view graph). On success returns the
/// single-kernel graph and the unroll factor `k ≥ 2`.
///
/// Detection is conservative: the schedulable ops must form `k ≥ 2` weakly
/// connected components with identical opcode multisets and edge counts.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, Opcode};
/// use veal_opt::reroll;
///
/// let mut b = DfgBuilder::new();
/// for copy in 0..4u16 {
///     let x = b.load_stream(copy * 2);
///     let y = b.op(Opcode::Mul, &[x, x]);
///     b.store_stream(copy * 2 + 1, y);
/// }
/// let (rolled, k) = reroll(&b.finish()).expect("re-rolls");
/// assert_eq!(k, 4);
/// assert_eq!(rolled.schedulable_ops().count(), 3);
/// ```
#[must_use]
pub fn reroll(dfg: &Dfg) -> Option<(Dfg, u32)> {
    let comps = components(dfg);
    if comps.len() < 2 {
        return None;
    }
    let signature = |c: &Vec<OpId>| -> (Vec<veal_ir::Opcode>, usize) {
        let mut ops: Vec<veal_ir::Opcode> = c
            .iter()
            .map(|&v| dfg.node(v).opcode().expect("component op"))
            .collect();
        ops.sort();
        let set: std::collections::HashSet<OpId> = c.iter().copied().collect();
        let edges = dfg
            .edges()
            .iter()
            .filter(|e| set.contains(&e.src) && set.contains(&e.dst))
            .count();
        (ops, edges)
    };
    let sig0 = signature(&comps[0]);
    if !comps.iter().all(|c| signature(c) == sig0) {
        return None;
    }

    // Copy the first component (plus the pseudo nodes it reads) into a
    // fresh graph with dense stream ids.
    let keep: std::collections::HashSet<OpId> = comps[0].iter().copied().collect();
    let mut out = Dfg::new();
    let mut map: HashMap<OpId, OpId> = HashMap::new();
    let mut streams: HashMap<u16, u16> = HashMap::new();
    for &v in &comps[0] {
        let node = dfg.node(v);
        let new = out.add_node(node.kind.clone());
        if let Some(s) = node.stream {
            let next = streams.len() as u16;
            out.node_mut(new).stream = Some(*streams.entry(s).or_insert(next));
        }
        out.node_mut(new).live_out = node.live_out;
        map.insert(v, new);
    }
    let factor = comps.len() as u32;
    for e in dfg.edges() {
        if keep.contains(&e.dst) && keep.contains(&e.src) {
            // The rolled loop interleaves the copies' lanes round-robin, so
            // a copy-local dependence of distance d spans factor·d rolled
            // iterations.
            out.add_edge(map[&e.src], map[&e.dst], e.distance * factor, e.kind);
        } else if keep.contains(&e.dst) {
            // Pseudo input (live-in / constant): copy on demand.
            if matches!(dfg.node(e.src).kind, NodeKind::LiveIn | NodeKind::Const(_)) {
                let p = *map
                    .entry(e.src)
                    .or_insert_with(|| out.add_node(dfg.node(e.src).kind.clone()));
                out.add_edge(p, map[&e.dst], e.distance, e.kind);
            }
        }
    }
    Some((out, factor))
}

/// Weakly connected components over the schedulable ops (pseudo nodes do
/// not connect components: shared constants are expected across copies).
fn components(dfg: &Dfg) -> Vec<Vec<OpId>> {
    let ids: Vec<OpId> = dfg.schedulable_ops().collect();
    let set: std::collections::HashSet<OpId> = ids.iter().copied().collect();
    let mut seen: std::collections::HashSet<OpId> = std::collections::HashSet::new();
    let mut comps = Vec::new();
    for &start in &ids {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut work = vec![start];
        seen.insert(start);
        while let Some(v) = work.pop() {
            comp.push(v);
            for e in dfg.succ_edges(v) {
                if set.contains(&e.dst) && seen.insert(e.dst) {
                    work.push(e.dst);
                }
            }
            for e in dfg.pred_edges(v) {
                if set.contains(&e.src) && seen.insert(e.src) {
                    work.push(e.src);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{verify_dfg, DfgBuilder, Opcode};

    #[test]
    fn connected_graph_not_rerolled() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        assert!(reroll(&b.finish()).is_none());
    }

    #[test]
    fn dissimilar_components_not_rerolled() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        b.store_stream(1, x);
        let y = b.load_stream(2);
        let z = b.op(Opcode::Mul, &[y, y]);
        b.store_stream(3, z);
        assert!(reroll(&b.finish()).is_none());
    }

    #[test]
    fn two_copies_rerolled_with_shared_constant() {
        let mut b = DfgBuilder::new();
        let k = b.constant(3);
        for copy in 0..2u16 {
            let x = b.load_stream(copy * 2);
            let y = b.op(Opcode::Mul, &[x, k]);
            b.store_stream(copy * 2 + 1, y);
        }
        let (rolled, factor) = reroll(&b.finish()).expect("re-rolls");
        assert_eq!(factor, 2);
        assert!(verify_dfg(&rolled).is_ok());
        assert_eq!(rolled.schedulable_ops().count(), 3);
        assert_eq!(rolled.const_ids().count(), 1);
        // Streams renumbered densely.
        let s: Vec<u16> = rolled
            .schedulable_ops()
            .filter_map(|id| rolled.node(id).stream)
            .collect();
        assert!(s.iter().all(|&x| x < 2));
    }

    #[test]
    fn reroll_preserves_recurrences() {
        let mut b = DfgBuilder::new();
        for copy in 0..3u16 {
            let x = b.load_stream(copy);
            let acc = b.op(Opcode::Add, &[x]);
            b.loop_carried(acc, acc, 1);
            b.mark_live_out(acc);
        }
        let (rolled, factor) = reroll(&b.finish()).expect("re-rolls");
        assert_eq!(factor, 3);
        assert_eq!(rolled.recurrences().len(), 1);
        assert_eq!(rolled.live_out_ids().count(), 1);
    }
}
