//! Semantic-equivalence tests for the transformation passes, using the
//! IR's functional interpreter: a transformed loop must compute exactly
//! the same values as the original.

use veal_ir::interp::{interpret, Inputs, Value};
use veal_ir::{DfgBuilder, Opcode};
use veal_opt::{inline_call, reroll, unroll, CalleeFragment};

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

/// A small kernel with a multiply, a clamp, an accumulator, and one store:
/// streams 0 (load) and 1 (store), both dense and in first-use order.
fn base_kernel() -> (veal_ir::Dfg, veal_ir::OpId) {
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let k = b.constant(3);
    let m = b.op(Opcode::Mul, &[x, k]);
    let hi = b.constant(100);
    let c = b.op(Opcode::Min, &[m, hi]);
    let acc = b.op(Opcode::Add, &[c]);
    b.loop_carried(acc, acc, 1);
    b.mark_live_out(acc);
    b.store_stream(1, c);
    (b.finish(), acc)
}

#[test]
fn unroll_then_reroll_preserves_semantics() {
    let (base, _) = base_kernel();
    let factor = 3u16;
    let unrolled = unroll(&base, factor);
    let (rolled, k) = reroll(&unrolled).expect("re-rolls");
    assert_eq!(k, u32::from(factor));

    // Ground truth: run the unrolled loop with per-copy lane data.
    let lanes: [Vec<i64>; 3] = [vec![1, 4, 7, 50], vec![2, 5, 8, 60], vec![3, 6, 9, 70]];
    let iters = lanes[0].len() as u64;
    let mut unrolled_inputs = Inputs::default();
    for (copy, lane) in lanes.iter().enumerate() {
        // unroll() gives copy j streams j*2 + {0, 1}.
        unrolled_inputs.streams.insert(copy as u16 * 2, ints(lane));
    }
    let truth = interpret(&unrolled, iters, &unrolled_inputs).expect("runs");

    // The rolled loop interleaves the lanes round-robin and runs k× the
    // iterations.
    let mut interleaved = Vec::new();
    for i in 0..lanes[0].len() {
        for lane in &lanes {
            interleaved.push(lane[i]);
        }
    }
    let mut rolled_inputs = Inputs::default();
    rolled_inputs.streams.insert(0, ints(&interleaved));
    let rolled_out = interpret(&rolled, iters * u64::from(k), &rolled_inputs).expect("runs");

    // The rolled store stream, de-interleaved, matches each copy's store
    // stream.
    let rolled_stores = &rolled_out.stores[&1];
    for copy in 0..factor as usize {
        let expected = &truth.stores[&(copy as u16 * 2 + 1)];
        let got: Vec<Value> = rolled_stores
            .iter()
            .copied()
            .skip(copy)
            .step_by(factor as usize)
            .collect();
        assert_eq!(&got, expected, "lane {copy}");
    }
    // The accumulators also agree: the rolled accumulator (distance k)
    // keeps per-lane partial sums; its final value is lane k-1's.
    let truth_sum: i64 = truth.live_outs.values().map(|v| v.as_int()).sum();
    let rolled_final: i64 = rolled_out.live_outs.values().map(|v| v.as_int()).sum();
    // Lane sums differ per lane; the rolled graph exposes one live-out (the
    // last lane executed). Check it equals SOME lane's sum.
    assert!(
        truth.live_outs.values().any(|v| v.as_int() == rolled_final),
        "rolled live-out {rolled_final} not among lane sums ({truth_sum} total)"
    );
}

#[test]
fn inline_preserves_semantics() {
    // Reference: y = min(max(x, 0), 100) computed directly.
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let zero = b.constant(0);
    let hi = b.constant(100);
    let lo = b.op(Opcode::Max, &[x, zero]);
    let clamped = b.op(Opcode::Min, &[lo, hi]);
    b.store_stream(1, clamped);
    let reference = b.finish();

    // Same loop, but the clamp is an opaque call that the inliner expands.
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let call = b.op(Opcode::Call, &[x]);
    b.store_stream(1, call);
    let with_call = b.finish();
    let frag = CalleeFragment::build(1, |fb, p| {
        let zero = fb.constant(0);
        let hi = fb.constant(100);
        let lo = fb.op(Opcode::Max, &[p[0], zero]);
        fb.op(Opcode::Min, &[lo, hi])
    });
    let call_id = with_call
        .schedulable_ops()
        .find(|&id| with_call.node(id).opcode() == Some(Opcode::Call))
        .unwrap();
    let inlined = inline_call(&with_call, call_id, &frag);

    let data = ints(&[-5, 3, 250, 100, 0]);
    let mut inputs = Inputs::default();
    inputs.streams.insert(0, data);
    let iters = 5;
    let a = interpret(&reference, iters, &inputs).expect("reference runs");
    let b2 = interpret(&inlined, iters, &inputs).expect("inlined runs");
    assert_eq!(a.stores, b2.stores);
}

#[test]
fn fission_parts_compose_to_the_original() {
    // A wide reduction split by fission: feeding part A's bridge stores
    // into part B's bridge loads reproduces the original outputs.
    use veal_opt::fission_by_streams;
    let mut b = DfgBuilder::new();
    let loads: Vec<_> = (0..12).map(|i| b.load_stream(i)).collect();
    let mut acc = loads[0];
    for &l in &loads[1..] {
        acc = b.op(Opcode::Add, &[acc, l]);
    }
    b.store_stream(12, acc);
    let original = b.finish();
    let parts = fission_by_streams(&original, 8, 8).expect("fissions");
    assert!(parts.len() >= 2, "wide loop must split");

    // Inputs: stream i carries [i+1, 2(i+1), 3(i+1)].
    let iters = 3u64;
    let mut original_inputs = Inputs::default();
    for i in 0..12u16 {
        let base = i64::from(i) + 1;
        original_inputs
            .streams
            .insert(i, ints(&[base, 2 * base, 3 * base]));
    }
    let truth = interpret(&original, iters, &original_inputs).expect("original runs");
    let expected = truth.stores[&12].clone();

    // Run the parts in order. Each part's streams were renumbered densely;
    // identify each load stream's data by matching against the original
    // loads is impossible positionally, so exploit that fission preserves
    // stream *content* mapping through bridges: run part 0 with the first
    // k original lanes, feed its bridge stores into part 1, etc. Stream
    // renumbering in each part follows first-use order, which for this
    // left-leaning reduction is the original order — original loads first,
    // then bridge loads.
    let mut bridge_values: Vec<Vec<Value>> = Vec::new();
    let mut next_original: u16 = 0;
    let mut final_store: Option<Vec<Value>> = None;
    for part in &parts {
        let loads: Vec<u16> = {
            let mut s: Vec<u16> = part
                .schedulable_ops()
                .filter(|&id| part.node(id).opcode() == Some(Opcode::Load))
                .filter_map(|id| part.node(id).stream)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let stores: Vec<u16> = {
            let mut s: Vec<u16> = part
                .schedulable_ops()
                .filter(|&id| part.node(id).opcode() == Some(Opcode::Store))
                .filter_map(|id| part.node(id).stream)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let n_bridge_in = bridge_values.len().min(loads.len());
        let mut inputs = Inputs::default();
        // Bridge inputs occupy the part's *later* load streams (bridge
        // loads are created after the original ops are copied).
        let n_orig = loads.len() - n_bridge_in;
        for (j, &s) in loads[..n_orig].iter().enumerate() {
            let orig = i64::from(next_original + j as u16) + 1;
            inputs.streams.insert(s, ints(&[orig, 2 * orig, 3 * orig]));
        }
        next_original += n_orig as u16;
        for (vals, &s) in bridge_values.drain(..).zip(&loads[n_orig..]) {
            inputs.streams.insert(s, vals);
        }
        let out = interpret(part, iters, &inputs).expect("part runs");
        // The last store stream of the final part is the original output;
        // intermediate stores become the next part's bridges.
        let mut produced: Vec<(u16, Vec<Value>)> = stores
            .iter()
            .map(|&s| (s, out.stores[&s].clone()))
            .collect();
        produced.sort_by_key(|&(s, _)| s);
        final_store = produced.last().map(|(_, v)| v.clone());
        bridge_values = produced.into_iter().map(|(_, v)| v).collect();
    }
    assert_eq!(final_store.expect("stores produced"), expected);
}
