//! Deterministic data parallelism for the sweep engine.
//!
//! The design-space exploration fans out over (application × configuration)
//! points; each point is pure CPU work with no shared mutable state beyond
//! the translation memo. This crate provides the minimal rayon-like surface
//! that workload needs — a parallel indexed map over a slice — built on
//! `std::thread::scope`, so the workspace carries no external dependency.
//!
//! Determinism contract: [`par_map`] returns results in input order, and the
//! caller performs any floating-point reduction sequentially over that
//! ordered output. Parallel and serial execution therefore produce
//! bit-identical results for pure functions.
//!
//! Thread-count policy: `VEAL_THREADS` overrides, otherwise
//! [`std::thread::available_parallelism`]. `VEAL_THREADS=1` forces the
//! serial path (no threads are spawned at all).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads sweeps should use: the `VEAL_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism (1 if that cannot be determined).
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var("VEAL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order.
///
/// Work distribution is dynamic (an atomic cursor), so uneven item costs —
/// one huge application next to many small ones — still load-balance; the
/// output order is fixed by index, so callers that reduce sequentially get
/// results independent of scheduling.
///
/// With `threads <= 1` or fewer than two items the closure runs inline on
/// the calling thread.
///
/// # Panics
///
/// Propagates the first panic raised by `f`. A panicking worker raises a
/// shared abort flag before unwinding, so the surviving workers stop
/// pulling items instead of burning through the rest of the sweep —
/// remaining items are skipped, not evaluated.
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Armed until the pull loop exits normally: if `f`
                    // panics, the drop runs during unwinding and raises the
                    // abort flag for the other workers.
                    struct AbortOnPanic<'a>(&'a AtomicBool, bool);
                    impl Drop for AbortOnPanic<'_> {
                        fn drop(&mut self) {
                            if self.1 {
                                self.0.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let mut sentinel = AbortOnPanic(&abort, true);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    sentinel.1 = false;
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// [`par_map_with`] at the default [`thread_count`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, thread_count(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_with(&items, 8, |i, &x| x * 2 + i as u64);
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<f64> = (0..57).map(|i| f64::from(i) * 0.37 + 1.0).collect();
        let serial = par_map_with(&items, 1, |_, &x| x.sqrt().ln());
        let parallel = par_map_with(&items, 7, |_, &x| x.sqrt().ln());
        // Bit-identical, not approximately equal.
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map_with(&none, 4, |_, &x| x).is_empty());
        assert_eq!(par_map_with(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(&[1u32, 2, 3], 64, |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn a_panicking_worker_aborts_the_sweep() {
        // One poisoned item panics immediately; the others spin briefly so
        // the sweep takes long enough for the abort flag to be observed.
        // Without the flag the surviving workers burn all 10k items before
        // the panic propagates.
        let items: Vec<u64> = (0..10_000).collect();
        let processed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_with(&items, 4, |i, &x| {
                if i == 0 {
                    panic!("poisoned item");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                let mut acc = x;
                for _ in 0..2_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
        }));
        assert!(result.is_err(), "the panic must still propagate");
        assert!(
            processed.load(Ordering::Relaxed) < items.len() - 1,
            "all {} surviving items were processed despite the abort flag",
            items.len() - 1
        );
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Early items cost far more than late ones; order must be unaffected.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_with(&items, 4, |_, &x| {
            let mut acc = x;
            for _ in 0..(32 - x) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }
}
