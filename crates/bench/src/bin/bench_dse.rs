//! Benchmarks the design-space-exploration sweep engine: the Figure 3(a)
//! integer-unit sweep evaluated through the pre-sweep serial API
//! (`veal::sim::dse::fraction_of_infinite`, which recomputes the
//! infinite-resource baseline at every point and memoizes nothing) against
//! [`veal::SweepContext`] (parallel across points, shared translation memo,
//! baseline computed once), asserting the two produce bit-identical
//! fractions. A third pass re-runs the sweep on the warm context to show
//! the memo's steady-state cost (what `all_figures` pays when several
//! figures share a suite).
//!
//! Results are printed and written to `BENCH_dse.json` in the current
//! directory: wall-clock per arm, the suite's abstract-instruction
//! translation totals, memo hit/miss counters, and the speedup ratios.
//!
//! Knobs for the CI smoke job: `VEAL_BENCH_APPS` truncates the suite and
//! `VEAL_BENCH_POINTS` truncates the unit-count sweep (both default to the
//! full set; the committed `BENCH_dse.json` must come from a full run).
//!
//! `--trace-out <path>` attaches a [`veal::JsonlSink`] to the sweep-engine
//! arms and writes the structured event stream (validated by `vealc
//! stats`). Tracing never changes the reported numbers; the bit-identity
//! asserts below run either way.

use std::sync::Arc;
use std::time::Instant;
use veal::{AcceleratorConfig, CcaSpec, CpuModel, JsonlSink, SweepContext, Trace};

/// The Figure 3(a) x-axis: integer-unit budgets swept over the suite.
const UNIT_COUNTS: [usize; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];

fn point_config(n: usize) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::infinite();
    cfg.int_units = n;
    cfg.cca_units = 1;
    cfg
}

/// Abstract translation instructions simulated across one suite evaluation.
fn abstract_instructions(ctx: &SweepContext, config: &AcceleratorConfig) -> u64 {
    ctx.run_suite(&ctx.setup(config, Some(&CcaSpec::paper())))
        .iter()
        .map(|r| r.breakdown.total())
        .sum()
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--trace-out <path>` from argv; `None` when absent.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => return Some(p.into()),
                None => {
                    eprintln!("bench_dse: --trace-out requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    let trace = match trace_out_arg() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                println!("tracing to {}", path.display());
                Trace::new(Arc::new(sink))
            }
            Err(e) => {
                eprintln!("bench_dse: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Trace::null(),
    };
    let mut apps = veal::workloads::media_fp_suite();
    apps.truncate(env_usize("VEAL_BENCH_APPS", usize::MAX).max(1));
    let mut unit_counts = UNIT_COUNTS.to_vec();
    unit_counts.truncate(env_usize("VEAL_BENCH_POINTS", usize::MAX).max(1));
    let cpu = CpuModel::arm11();
    let threads = veal_par::thread_count();
    println!(
        "bench_dse: Figure 3(a) integer-unit sweep, {} apps x {} points, {} thread(s)",
        apps.len(),
        unit_counts.len(),
        threads
    );

    // Arm 1: the pre-sweep serial API. Every point re-runs the
    // infinite-resource baseline and re-translates every loop.
    let t0 = Instant::now();
    let serial: Vec<f64> = unit_counts
        .iter()
        .map(|&n| {
            veal::sim::dse::fraction_of_infinite(
                &apps,
                &cpu,
                &point_config(n),
                Some(&CcaSpec::paper()),
            )
        })
        .collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Arm 2: the sweep engine — points fan out across the thread budget,
    // translations land in the shared memo, the baseline is computed once.
    let ctx = SweepContext::new(apps.clone(), cpu.clone()).with_trace(trace.clone());
    let t0 = Instant::now();
    let _ = ctx.infinite_mean();
    let swept = ctx.eval_points(&unit_counts, |c, &n| {
        c.fraction_of_infinite(&point_config(n), Some(&CcaSpec::paper()))
    });
    let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = ctx.memo_stats();

    // The whole point: identical numbers, or the speed means nothing.
    assert_eq!(serial.len(), swept.len());
    for (i, (a, b)) in serial.iter().zip(&swept).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "point {} diverged: serial {a} vs sweep {b}",
            unit_counts[i]
        );
    }

    // Arm 3: the same sweep again on the warm context — every translation
    // is a memo hit, which is what repeated figures over one suite pay.
    let t0 = Instant::now();
    let again = ctx.eval_points(&unit_counts, |c, &n| {
        c.fraction_of_infinite(&point_config(n), Some(&CcaSpec::paper()))
    });
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm = ctx.memo_stats();
    for (a, b) in swept.iter().zip(&again) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm re-sweep diverged");
    }

    // Abstract-instruction totals are a property of the simulated VM, not
    // the host: the memo replays them, so one point's total characterizes
    // the per-evaluation translation work the serial arm repeats.
    let abstract_per_eval = abstract_instructions(&ctx, &point_config(4));

    let speedup = serial_ms / sweep_ms.max(1e-9);
    let warm_speedup = serial_ms / warm_ms.max(1e-9);
    println!("serial / no memo : {serial_ms:>10.1} ms  (baseline recomputed per point)");
    println!("sweep engine     : {sweep_ms:>10.1} ms  ({speedup:.2}x, cold memo)");
    println!("warm re-sweep    : {warm_ms:>10.1} ms  ({warm_speedup:.2}x, all memo hits)");
    println!(
        "memo             : cold {}/{} hit/miss, warm {}/{}; {} entries",
        cold.hits, cold.misses, warm.hits, warm.misses, warm.entries
    );
    println!("abstract instrs  : {abstract_per_eval} per suite evaluation");
    println!("outputs          : bit-identical across all three arms");

    let json = format!(
        "{{\n  \"sweep\": \"fig3a_int_units\",\n  \"apps\": {},\n  \"points\": {},\n  \
         \"threads\": {},\n  \"serial_no_memo_ms\": {:.3},\n  \"sweep_engine_ms\": {:.3},\n  \
         \"warm_resweep_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"warm_speedup\": {:.3},\n  \
         \"memo_hits\": {},\n  \"memo_misses\": {},\n  \"memo_entries\": {},\n  \
         \"abstract_instructions_per_eval\": {},\n  \"bit_identical\": true\n}}\n",
        apps.len(),
        unit_counts.len(),
        threads,
        serial_ms,
        sweep_ms,
        warm_ms,
        speedup,
        warm_speedup,
        warm.hits,
        warm.misses,
        warm.entries,
        abstract_per_eval,
    );
    if let Err(e) = std::fs::write("BENCH_dse.json", json) {
        eprintln!("bench_dse: failed to write BENCH_dse.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_dse.json");
    if let Err(e) = trace.flush() {
        eprintln!("bench_dse: failed to flush trace: {e}");
        std::process::exit(1);
    }
}
