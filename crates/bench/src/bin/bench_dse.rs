//! Benchmarks the design-space-exploration sweep engine: the Figure 3(a)
//! integer-unit sweep evaluated through the pre-sweep serial API
//! (`veal::sim::dse::fraction_of_infinite`, which recomputes the
//! infinite-resource baseline at every point and memoizes nothing) against
//! [`veal::SweepContext`] in **symbolic family mode** (parallel across
//! points, one family-keyed symbolic translation per loop concretized per
//! point, baseline computed once), asserting the two produce bit-identical
//! fractions — the serial arm is the differential reference for the
//! symbolic path. A third pass re-runs the sweep on the warm context to
//! show the memo's steady-state cost (what `all_figures` pays when several
//! figures share a suite).
//!
//! Results are printed and written to `BENCH_dse.json` in the current
//! directory: wall-clock per arm, the suite's abstract-instruction
//! translation totals, memo/family counters (`family_entries`,
//! `family_hits`, `concretizations`, `concretize_ms`), and the speedup
//! ratios.
//!
//! Knobs for the CI smoke job: `VEAL_BENCH_APPS` truncates the suite,
//! `VEAL_BENCH_POINTS` truncates the unit-count sweep (both default to the
//! full set; the committed `BENCH_dse.json` must come from a full run),
//! and `VEAL_BENCH_MIN_FAMILY_HIT_RATE` (a float in `[0, 1]`) makes the
//! run fail unless the warm family-memo hit rate reaches the floor.
//!
//! `--trace-out <path>` attaches a [`veal::JsonlSink`] to the sweep-engine
//! arms and writes the structured event stream (validated by `vealc
//! stats`). Tracing never changes the reported numbers; the bit-identity
//! asserts below run either way.

use std::sync::Arc;
use std::time::Instant;
use veal::{
    AcceleratorConfig, AcceleratorFamily, CcaSpec, CpuModel, JsonlSink, NullSink, SweepContext,
    Trace,
};

/// The Figure 3(a) x-axis: integer-unit budgets swept over the suite.
const UNIT_COUNTS: [usize; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];

fn point_config(n: usize) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::infinite();
    cfg.int_units = n;
    cfg.cca_units = 1;
    cfg
}

/// Abstract translation instructions simulated across one suite evaluation.
fn abstract_instructions(ctx: &SweepContext, config: &AcceleratorConfig) -> u64 {
    ctx.run_suite(&ctx.setup(config, Some(&CcaSpec::paper())))
        .iter()
        .map(|r| r.breakdown.total())
        .sum()
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--trace-out <path>` from argv; `None` when absent.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => return Some(p.into()),
                None => {
                    eprintln!("bench_dse: --trace-out requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    let trace = match trace_out_arg() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                println!("tracing to {}", path.display());
                Trace::new(Arc::new(sink))
            }
            Err(e) => {
                eprintln!("bench_dse: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Trace::null(),
    };
    let mut apps = veal::workloads::media_fp_suite();
    apps.truncate(env_usize("VEAL_BENCH_APPS", usize::MAX).max(1));
    let mut unit_counts = UNIT_COUNTS.to_vec();
    unit_counts.truncate(env_usize("VEAL_BENCH_POINTS", usize::MAX).max(1));
    let cpu = CpuModel::arm11();
    let threads = veal_par::thread_count();
    println!(
        "bench_dse: Figure 3(a) integer-unit sweep, {} apps x {} points, {} thread(s)",
        apps.len(),
        unit_counts.len(),
        threads
    );

    // Arm 1: the pre-sweep serial API. Every point re-runs the
    // infinite-resource baseline and re-translates every loop.
    let t0 = Instant::now();
    let serial: Vec<f64> = unit_counts
        .iter()
        .map(|&n| {
            veal::sim::dse::fraction_of_infinite(
                &apps,
                &cpu,
                &point_config(n),
                Some(&CcaSpec::paper()),
            )
        })
        .collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Arm 2: the sweep engine in symbolic family mode — points fan out
    // across the thread budget, each loop is translated symbolically ONCE
    // under the family fingerprint and concretized per point, and the
    // baseline is computed once. The family spans every swept point plus
    // the infinite-resource baseline, so all evaluations share entries.
    let family_points: Vec<AcceleratorConfig> = unit_counts
        .iter()
        .map(|&n| point_config(n))
        .chain([AcceleratorConfig::infinite()])
        .collect();
    let family =
        Arc::new(AcceleratorFamily::spanning(&family_points).expect("uniform latencies and CCA"));
    let concretize_calls = veal::obs::metrics::counter("vm.translate.concretizations");
    let concretize_wall = veal::obs::metrics::histogram("vm.concretize.wall_ns");
    let calls_before = concretize_calls.get();
    let ctx = SweepContext::new(apps.clone(), cpu.clone())
        .with_family(Arc::clone(&family))
        .with_trace(trace.clone());
    let t0 = Instant::now();
    let _ = ctx.infinite_mean();
    let swept = ctx.eval_points(&unit_counts, |c, &n| {
        c.fraction_of_infinite(&point_config(n), Some(&CcaSpec::paper()))
    });
    let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = ctx.memo_stats();

    // The whole point: identical numbers, or the speed means nothing.
    assert_eq!(serial.len(), swept.len());
    for (i, (a, b)) in serial.iter().zip(&swept).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "point {} diverged: serial {a} vs sweep {b}",
            unit_counts[i]
        );
    }

    // Arm 3: the same sweep again on the warm context — every translation
    // is a memo hit, which is what repeated figures over one suite pay.
    let t0 = Instant::now();
    let again = ctx.eval_points(&unit_counts, |c, &n| {
        c.fraction_of_infinite(&point_config(n), Some(&CcaSpec::paper()))
    });
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm = ctx.memo_stats();
    for (a, b) in swept.iter().zip(&again) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm re-sweep diverged");
    }
    let concretizations = concretize_calls.get() - calls_before;

    // Telemetry pass: re-run the sweep with an enabled (discarding) trace
    // so the per-call concretize wall timer records, and read the
    // histogram delta. Runs outside the timed arms; numbers stay
    // bit-identical (asserted above for the same closure).
    let telem_ctx = ctx.clone().with_trace(Trace::new(Arc::new(NullSink)));
    let wall_before = concretize_wall.sum();
    let _ = telem_ctx.eval_points(&unit_counts, |c, &n| {
        c.fraction_of_infinite(&point_config(n), Some(&CcaSpec::paper()))
    });
    let concretize_ms = (concretize_wall.sum() - wall_before) as f64 / 1e6;

    // Abstract-instruction totals are a property of the simulated VM, not
    // the host: the memo replays them, so one point's total characterizes
    // the per-evaluation translation work the serial arm repeats.
    let abstract_per_eval = abstract_instructions(&ctx, &point_config(4));

    let speedup = serial_ms / sweep_ms.max(1e-9);
    let warm_speedup = serial_ms / warm_ms.max(1e-9);
    let family_hit_rate = warm.hits as f64 / (warm.hits + warm.misses).max(1) as f64;
    println!("serial / no memo : {serial_ms:>10.1} ms  (baseline recomputed per point)");
    println!("sweep engine     : {sweep_ms:>10.1} ms  ({speedup:.2}x, cold family memo)");
    println!("warm re-sweep    : {warm_ms:>10.1} ms  ({warm_speedup:.2}x, all family hits)");
    println!(
        "family memo      : cold {}/{} hit/miss, warm {}/{}; {} entries ({:.3} hit rate)",
        cold.hits, cold.misses, warm.hits, warm.misses, warm.entries, family_hit_rate
    );
    println!("concretize       : {concretizations} concretizations, {concretize_ms:.1} ms/sweep");
    println!("abstract instrs  : {abstract_per_eval} per suite evaluation");
    println!("outputs          : bit-identical across all three arms");

    if let Ok(v) = std::env::var("VEAL_BENCH_MIN_FAMILY_HIT_RATE") {
        let floor: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("bench_dse: VEAL_BENCH_MIN_FAMILY_HIT_RATE must be a float, got {v:?}");
            std::process::exit(2);
        });
        if family_hit_rate < floor {
            eprintln!("bench_dse: family hit rate {family_hit_rate:.3} below floor {floor:.3}");
            std::process::exit(1);
        }
        println!("family hit rate  : {family_hit_rate:.3} >= floor {floor:.3}");
    }

    let json = format!(
        "{{\n  \"sweep\": \"fig3a_int_units\",\n  \"apps\": {},\n  \"points\": {},\n  \
         \"threads\": {},\n  \"serial_no_memo_ms\": {:.3},\n  \"sweep_engine_ms\": {:.3},\n  \
         \"warm_resweep_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"warm_speedup\": {:.3},\n  \
         \"memo_hits\": {},\n  \"memo_misses\": {},\n  \"memo_entries\": {},\n  \
         \"family_entries\": {},\n  \"family_hits\": {},\n  \"family_hit_rate\": {:.4},\n  \
         \"concretizations\": {},\n  \"concretize_ms\": {:.3},\n  \
         \"abstract_instructions_per_eval\": {},\n  \"bit_identical\": true\n}}\n",
        apps.len(),
        unit_counts.len(),
        threads,
        serial_ms,
        sweep_ms,
        warm_ms,
        speedup,
        warm_speedup,
        warm.hits,
        warm.misses,
        warm.entries,
        warm.entries,
        warm.hits,
        family_hit_rate,
        concretizations,
        concretize_ms,
        abstract_per_eval,
    );
    if let Err(e) = std::fs::write("BENCH_dse.json", json) {
        eprintln!("bench_dse: failed to write BENCH_dse.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_dse.json");
    if let Err(e) = trace.flush() {
        eprintln!("bench_dse: failed to flush trace: {e}");
        std::process::exit(1);
    }
}
