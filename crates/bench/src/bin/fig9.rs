//! Regenerates the paper's Figure 9 static encodings (see DESIGN.md).
fn main() {
    veal_bench::figures::fig9::run();
}
