//! Regenerates the paper's Figure 6 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig6::run();
}
