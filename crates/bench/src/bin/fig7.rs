//! Regenerates the paper's Figure 7 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig7::run();
}
