//! Regenerates the paper's Section 3.2 design-point table (see DESIGN.md).
fn main() {
    veal_bench::figures::table_design::run();
}
