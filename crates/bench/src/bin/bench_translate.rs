//! Benchmarks the translation hot kernel, old vs new, over every loop of
//! the full workload suite.
//!
//! The **old kernel** is the pre-optimization implementation, retained
//! verbatim in `veal::sched::reference`: hash-set based Swing
//! ordering over the naive Θ(n³) Floyd–Warshall MinDist
//! ([`veal::sched::MinDist::compute_naive`]) and the hash-map based modulo
//! list scheduler. The **new kernel** is the current pipeline: the
//! SCC-structured, II-parametric MinDist envelope with its cross-invocation
//! cache, bitset Swing ordering, and the dense-array list scheduler.
//!
//! Three measurements per loop:
//!
//! * **priority + scheduling** — `swing_order` followed by
//!   `list_schedule` on the separated, CCA-mapped body (the paper's 69% +
//!   9% of translation cost, Figure 8), old kernels vs new kernels. Each
//!   loop is run at `VEAL_BENCH_IIS` consecutive IIs starting at its MII —
//!   the pattern the design-space sweep and II escalation actually
//!   generate (same graph, shifting II), where the old kernel pays a full
//!   Θ(n³) Floyd–Warshall per point and the new one evaluates the cached
//!   Pareto frontiers in O(n²·k).
//! * **per-phase breakdown** — one old-vs-new wall-clock entry for each
//!   [`veal::ir::Phase`], timing that phase's kernel in isolation: DFG
//!   analyses (`RefDfg` push-adjacency vs CSR), stream separation, CCA
//!   mapping, MIIs, priority/scheduling (from the section above), register
//!   assignment, and hint decoding. Phases whose implementation did not
//!   change in the data-oriented sweep time the same code under both arms
//!   and report ≈1.0x. The `concretize` row is the symbolic-translation
//!   differential: "old" is a direct point `translate`, "new" is
//!   `Translator::concretize` of a prebuilt symbolic translation — the
//!   work a family-memo hit pays instead of a full retranslation — with
//!   the outcomes asserted bit-identical first.
//! * **end-to-end translate** — the whole `Translator::translate`
//!   pipeline on the raw loop body. The old arm disables *both* runtime
//!   toggles (`set_parametric_enabled(false)` +
//!   `veal::ir::set_data_oriented(false)`): naive Floyd–Warshall MinDist
//!   over the retained reference analysis kernels. The new arm enables
//!   both: parametric MinDist over the struct-of-arrays kernels.
//!
//! Every order, schedule, and per-phase abstract-instruction breakdown is
//! asserted identical between the two kernels — the abstract cost model
//! is the paper's result and must not move.
//!
//! Results are printed and written to `BENCH_translate.json`. Environment
//! knobs for the CI smoke job: `VEAL_BENCH_APPS` truncates the suite,
//! `VEAL_BENCH_REPS` sets the timed repetitions per loop (default 5),
//! and `VEAL_BENCH_MIN_SPEEDUP` (a float) makes the run exit non-zero
//! when `translate_speedup` lands below the floor.
//!
//! `--trace-out <path>` records one `translate_start`/`translate_end`
//! event pair per suite loop from the end-to-end validation pass (this
//! bin drives the `Translator` directly, so the events are constructed
//! here rather than by a `VmSession`). Tracing never changes the timed
//! numbers or the bit-identity asserts.

use std::sync::Arc;
use std::time::Instant;
use veal::ir::meter::ALL_PHASES;
use veal::ir::streams::{separate, StreamSummary};
use veal::ir::{set_data_oriented, CostMeter, Dfg, OpId, Phase, PhaseBreakdown, RefDfg};
use veal::obs::TranslateStatus;
use veal::sched::{
    assign_registers, list_schedule, rec_mii, res_mii, set_parametric_enabled, swing_order,
    ModuloSchedule, ScheduleError,
};
use veal::vm::verify::verify_and_apply_cca;
use veal::vm::{StaticHints, TranslationPolicy, Translator};
use veal::{AcceleratorConfig, CcaSpec, Event, JsonlSink, Trace};

/// The pre-optimization translation kernels (hash-set Swing ordering over
/// a fresh naive Floyd–Warshall, hash-map list scheduler), retained
/// verbatim in `veal::sched::reference` so the benchmark compares real old
/// code against real new code on the same build — and so the end-to-end
/// old arm (`set_data_oriented(false)`) routes `translate` through them.
use veal::sched::reference;

/// One loop readied for the scheduling kernel: separated, CCA-mapped, MII
/// computed — exactly the state `modulo_schedule` sees inside `translate`.
struct Prepped {
    name: String,
    /// The raw loop body before stream separation — input to the
    /// loop-identification and stream-separation phase kernels.
    raw: Dfg,
    /// Separated but not yet CCA-mapped — input to the CCA-mapping and
    /// hint-decode phase kernels.
    sep: Dfg,
    dfg: Dfg,
    summary: StreamSummary,
    mii: u32,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Minimum wall-clock nanos over `passes` runs of `f`. Taking the best of N
/// passes filters scheduler/frequency noise out of each sample; it is applied
/// identically to both arms so the speedup ratio stays unbiased.
fn min_ns(passes: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..passes {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// Parses `--trace-out <path>` from argv; `None` when absent.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => return Some(p.into()),
                None => {
                    eprintln!("bench_translate: --trace-out requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn prep_suite(apps: &[veal::workloads::Application], config: &AcceleratorConfig) -> Vec<Prepped> {
    let spec = CcaSpec::paper();
    let mut out = Vec::new();
    for app in apps {
        for (i, l) in app.loops.iter().enumerate() {
            let mut meter = CostMeter::new();
            let Ok(sep) = separate(&l.raw.body.dfg, &mut meter) else {
                continue;
            };
            let summary = sep.summary();
            if config.check_streams(summary).is_err() {
                continue;
            }
            let sep_dfg = sep.dfg.clone();
            let mut dfg = sep.dfg;
            veal::cca::map_cca(&mut dfg, &spec, &mut meter);
            let mii = res_mii(&dfg, config, summary, &mut meter).max(rec_mii(
                &dfg,
                &config.latencies,
                &mut meter,
            ));
            if mii > config.max_ii {
                continue;
            }
            out.push(Prepped {
                name: format!("{}#{i}", app.name),
                raw: l.raw.body.dfg.clone(),
                sep: sep_dfg,
                dfg,
                summary,
                mii,
            });
        }
    }
    out
}

/// Old kernels: hash-based Swing order over a fresh naive Floyd–Warshall,
/// then the hash-map list scheduler.
fn old_prio_and_sched(
    p: &Prepped,
    config: &AcceleratorConfig,
    ii: u32,
) -> (
    Vec<OpId>,
    Result<ModuloSchedule, ScheduleError>,
    PhaseBreakdown,
) {
    let mut meter = CostMeter::new();
    let order = reference::swing_order(&p.dfg, &config.latencies, ii, &mut meter);
    let sched = reference::list_schedule(&p.dfg, config, &order, ii, p.summary, &mut meter);
    (order, sched, *meter.breakdown())
}

/// New kernels: bitset Swing order over the II-parametric MinDist
/// envelope, then the dense-array list scheduler.
fn new_prio_and_sched(
    p: &Prepped,
    config: &AcceleratorConfig,
    ii: u32,
) -> (
    Vec<OpId>,
    Result<ModuloSchedule, ScheduleError>,
    PhaseBreakdown,
) {
    let mut meter = CostMeter::new();
    let order = swing_order(&p.dfg, &config.latencies, ii, &mut meter);
    let sched = list_schedule(&p.dfg, config, &order, ii, p.summary, &mut meter);
    (order, sched, *meter.breakdown())
}

/// Asserts the old and new schedulers produced the same schedule (or the
/// same failure): same II, same op→time map, same op→unit map.
fn assert_same_schedule(
    name: &str,
    old: &Result<ModuloSchedule, ScheduleError>,
    new: &Result<ModuloSchedule, ScheduleError>,
) {
    match (old, new) {
        (Err(eo), Err(en)) => assert_eq!(eo, en, "{name}: errors diverged"),
        (Ok(so), Ok(sn)) => {
            assert_eq!(so.ii, sn.ii, "{name}: II diverged");
            assert_eq!(so.entries(), sn.entries(), "{name}: times diverged");
            for (op, _) in so.entries() {
                assert_eq!(so.unit(op), sn.unit(op), "{name}: unit of {op} diverged");
            }
        }
        (o, n) => panic!(
            "{name}: outcome diverged (old ok={}, new ok={})",
            o.is_ok(),
            n.is_ok()
        ),
    }
}

fn main() {
    let trace = match trace_out_arg() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                println!("tracing to {}", path.display());
                Trace::new(Arc::new(sink))
            }
            Err(e) => {
                eprintln!("bench_translate: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Trace::null(),
    };
    let mut apps = veal::workloads::full_suite();
    let max_apps = env_usize("VEAL_BENCH_APPS", usize::MAX);
    apps.truncate(max_apps);
    let reps = env_usize("VEAL_BENCH_REPS", 5).max(1) as u32;
    let passes = env_usize("VEAL_BENCH_PASSES", 3).max(1);
    let config = AcceleratorConfig::paper_design();
    let prepped = prep_suite(&apps, &config);
    println!(
        "bench_translate: {} apps, {} schedulable loops, {} reps/loop, best of {} passes",
        apps.len(),
        prepped.len(),
        reps,
        passes
    );

    // --- priority + scheduling, old vs new kernel ------------------------
    // Each loop is visited at a small range of IIs starting at its MII:
    // exactly what the DSE sweep (one MII per machine configuration) and
    // the scheduler's own II escalation generate.
    set_parametric_enabled(true);
    let iis = env_usize("VEAL_BENCH_IIS", 8).max(1) as u32;
    let mut points = 0usize;
    let mut old_prio_ns = 0u128;
    let mut old_sched_ns = 0u128;
    let mut new_prio_ns = 0u128;
    let mut new_sched_ns = 0u128;
    for p in &prepped {
        for ii in p.mii..=(p.mii + iis - 1).min(config.max_ii) {
            points += 1;
            // Warm both kernels once and assert bit-identity: same order,
            // same schedule (or same failure), same per-phase charges.
            let (order_o, sched_o, bd_o) = old_prio_and_sched(p, &config, ii);
            let (order_n, sched_n, bd_n) = new_prio_and_sched(p, &config, ii);
            assert_eq!(order_o, order_n, "{}@{ii}: swing order diverged", p.name);
            assert_same_schedule(&p.name, &sched_o, &sched_n);
            assert_eq!(bd_o, bd_n, "{}@{ii}: phase breakdown diverged", p.name);

            old_prio_ns += min_ns(passes, || {
                for _ in 0..reps {
                    let mut meter = CostMeter::new();
                    std::hint::black_box(reference::swing_order(
                        &p.dfg,
                        &config.latencies,
                        ii,
                        &mut meter,
                    ));
                }
            });
            old_sched_ns += min_ns(passes, || {
                for _ in 0..reps {
                    let mut meter = CostMeter::new();
                    let _ = std::hint::black_box(reference::list_schedule(
                        &p.dfg, &config, &order_n, ii, p.summary, &mut meter,
                    ));
                }
            });

            new_prio_ns += min_ns(passes, || {
                for _ in 0..reps {
                    let mut meter = CostMeter::new();
                    std::hint::black_box(swing_order(&p.dfg, &config.latencies, ii, &mut meter));
                }
            });
            new_sched_ns += min_ns(passes, || {
                for _ in 0..reps {
                    let mut meter = CostMeter::new();
                    let _ = std::hint::black_box(list_schedule(
                        &p.dfg, &config, &order_n, ii, p.summary, &mut meter,
                    ));
                }
            });
        }
    }

    // --- per-phase breakdown, old vs new ---------------------------------
    // One wall-clock entry per `Phase`, timing that phase's kernel in
    // isolation over every schedulable loop. Phases whose kernels dispatch
    // on the data-oriented toggle are timed under both arms and asserted
    // bit-identical; phases untouched by the sweep run the same code twice.
    let spec = CcaSpec::paper();
    let mut ph_old = [0u128; 10];
    let mut ph_new = [0u128; 10];
    assert_eq!(ALL_PHASES.len(), 10);
    let fold_ref = |r: &RefDfg| {
        let ok = r.verify().is_ok();
        let n_sccs = r.sccs().len();
        r.content_hash() ^ u64::from(ok) ^ (n_sccs as u64) << 1
    };
    for p in &prepped {
        // loop-ident: re-derive every structural analysis (adjacency,
        // verification, SCCs, content hash) from the raw node/edge lists —
        // push-built `Vec<Vec<u32>>` adjacency vs the CSR arena build.
        {
            let r = RefDfg::from_dfg(&p.raw);
            assert_eq!(
                fold_ref(&r),
                p.raw.reanalyze(),
                "{}: loop-ident analyses diverged",
                p.name
            );
            let i = Phase::LoopIdent as usize;
            ph_old[i] += min_ns(passes, || {
                for _ in 0..reps {
                    let r = RefDfg::from_dfg(&p.raw);
                    std::hint::black_box(fold_ref(&r));
                }
            });
            ph_new[i] += min_ns(passes, || {
                for _ in 0..reps {
                    std::hint::black_box(p.raw.reanalyze());
                }
            });
        }

        // stream-sep: the full separation pass, reference vs single-pass.
        {
            set_data_oriented(false);
            let mut m_o = CostMeter::new();
            let out_o = separate(&p.raw, &mut m_o).expect("prepped loop separates");
            set_data_oriented(true);
            let mut m_n = CostMeter::new();
            let out_n = separate(&p.raw, &mut m_n).expect("prepped loop separates");
            assert_eq!(
                out_o.dfg.content_hash(),
                out_n.dfg.content_hash(),
                "{}: separation diverged",
                p.name
            );
            assert_eq!(
                m_o.breakdown(),
                m_n.breakdown(),
                "{}: separation charges diverged",
                p.name
            );
            let i = Phase::StreamSep as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        let _ = std::hint::black_box(separate(&p.raw, &mut meter));
                    }
                });
            }
        }

        // cca-mapping: the greedy seed-and-grow mapper plus group commit.
        {
            set_data_oriented(false);
            let mut m_o = CostMeter::new();
            let mut d_o = p.sep.clone();
            let g_o = veal::cca::map_cca(&mut d_o, &spec, &mut m_o);
            set_data_oriented(true);
            let mut m_n = CostMeter::new();
            let mut d_n = p.sep.clone();
            let g_n = veal::cca::map_cca(&mut d_n, &spec, &mut m_n);
            assert_eq!(g_o, g_n, "{}: CCA groups diverged", p.name);
            assert_eq!(
                d_o.content_hash(),
                d_n.content_hash(),
                "{}: CCA-mapped graph diverged",
                p.name
            );
            assert_eq!(
                m_o.breakdown(),
                m_n.breakdown(),
                "{}: CCA charges diverged",
                p.name
            );
            let i = Phase::CcaMapping as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        let mut d = p.sep.clone();
                        std::hint::black_box(veal::cca::map_cca(&mut d, &spec, &mut meter));
                    }
                });
            }
        }

        // res-mii / rec-mii: unchanged kernels, same code under both arms.
        {
            let i = Phase::ResMii as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        std::hint::black_box(res_mii(&p.dfg, &config, p.summary, &mut meter));
                    }
                });
            }
        }
        {
            let i = Phase::RecMii as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        std::hint::black_box(rec_mii(&p.dfg, &config.latencies, &mut meter));
                    }
                });
            }
        }

        // reg-assign: unchanged kernel over the new scheduler's output.
        set_data_oriented(true);
        if let (_, Ok(sched), _) = new_prio_and_sched(p, &config, p.mii) {
            let i = Phase::RegAssign as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        let _ = std::hint::black_box(assign_registers(
                            &p.dfg, &sched, &config, &mut meter,
                        ));
                    }
                });
            }
        }

        // hint-decode: re-verify and re-apply the mapper's groups as if
        // they had arrived as static hints.
        {
            set_data_oriented(true);
            let mut meter = CostMeter::new();
            let groups: Vec<Vec<OpId>> = veal::cca::identify_groups(&p.sep, &spec, &mut meter)
                .into_iter()
                .map(|g| g.members)
                .collect();
            let i = Phase::HintDecode as usize;
            for (arm, acc) in [(false, &mut ph_old[i]), (true, &mut ph_new[i])] {
                set_data_oriented(arm);
                *acc += min_ns(passes, || {
                    for _ in 0..reps {
                        let mut meter = CostMeter::new();
                        let mut d = p.sep.clone();
                        let _ = std::hint::black_box(verify_and_apply_cca(
                            &mut d, &spec, &groups, &mut meter,
                        ));
                    }
                });
            }
        }
    }
    set_data_oriented(true);
    // priority / scheduling: measured by the (loop, II) section above.
    ph_old[Phase::Priority as usize] = old_prio_ns;
    ph_new[Phase::Priority as usize] = new_prio_ns;
    ph_old[Phase::Scheduling as usize] = old_sched_ns;
    ph_new[Phase::Scheduling as usize] = new_sched_ns;

    // --- end-to-end translate, old arm vs new arm ------------------------
    let translator = Translator::new(
        config.clone(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let hints = StaticHints::none();
    let bodies: Vec<_> = apps
        .iter()
        .flat_map(|a| a.loops.iter().map(|l| &l.raw.body))
        .collect();
    let mut old_e2e_ns = 0u128;
    let mut new_e2e_ns = 0u128;
    for (key, body) in bodies.iter().enumerate() {
        let key = key as u64;
        set_parametric_enabled(false);
        set_data_oriented(false);
        let out_n = translator.translate(body, &hints);
        set_parametric_enabled(true);
        set_data_oriented(true);
        trace.emit(|| Event::TranslateStart {
            key,
            loop_hash: body.content_hash(),
        });
        let out_p = translator.translate(body, &hints);
        trace.emit(|| Event::TranslateEnd {
            key,
            status: if out_p.result.is_ok() {
                TranslateStatus::Mapped
            } else {
                TranslateStatus::Failed
            },
            units: out_p.breakdown.total(),
            checks: 0,
            degraded: false,
            breakdown: out_p.breakdown,
        });
        assert_eq!(
            out_n.breakdown, out_p.breakdown,
            "{}: translate breakdown diverged",
            body.name
        );
        let sig = |r: &Result<veal::vm::TranslatedLoop, veal::vm::TranslationError>| match r {
            Ok(t) => format!(
                "{}|{}|{}|{}",
                t.scheduled.schedule, t.control_words, t.cca_groups, t.accel_ops
            ),
            Err(e) => format!("ERR {e}"),
        };
        assert_eq!(
            sig(&out_n.result),
            sig(&out_p.result),
            "{}: translate result diverged",
            body.name
        );
        for (new_arm, e2e_ns) in [(false, &mut old_e2e_ns), (true, &mut new_e2e_ns)] {
            set_parametric_enabled(new_arm);
            set_data_oriented(new_arm);
            *e2e_ns += min_ns(passes, || {
                for _ in 0..reps {
                    std::hint::black_box(translator.translate(body, &hints));
                }
            });
        }
    }
    set_parametric_enabled(true);
    set_data_oriented(true);

    // --- symbolic concretize vs direct translate -------------------------
    // The family-memoization differential: one symbolic translation per
    // loop, concretized at the design point, must be bit-identical to a
    // direct point translation — result, per-phase charges, verdict. The
    // timing pair fills the `concretize` phase row: "old" pays the full
    // pipeline (what a family hit would otherwise recompute), "new" pays
    // only concretization.
    for body in &bodies {
        let sym = translator.translate_symbolic(body, &hints);
        let direct = translator.translate(body, &hints);
        let mut cm = CostMeter::new();
        let conc = translator.concretize(&sym, &mut cm);
        assert_eq!(
            direct.breakdown, conc.breakdown,
            "{}: concretize breakdown diverged",
            body.name
        );
        assert_eq!(
            direct.verdict, conc.verdict,
            "{}: concretize verdict diverged",
            body.name
        );
        let sig = |r: &Result<veal::vm::TranslatedLoop, veal::vm::TranslationError>| match r {
            Ok(t) => format!(
                "{}|{}|{}|{}",
                t.scheduled.schedule, t.control_words, t.cca_groups, t.accel_ops
            ),
            Err(e) => format!("ERR {e}"),
        };
        assert_eq!(
            sig(&direct.result),
            sig(&conc.result),
            "{}: concretize result diverged",
            body.name
        );
        let i = Phase::Concretize as usize;
        ph_old[i] += min_ns(passes, || {
            for _ in 0..reps {
                std::hint::black_box(translator.translate(body, &hints));
            }
        });
        ph_new[i] += min_ns(passes, || {
            for _ in 0..reps {
                let mut cm = CostMeter::new();
                std::hint::black_box(translator.concretize(&sym, &mut cm));
            }
        });
    }
    let concretize_speedup = ph_old[Phase::Concretize as usize] as f64
        / ph_new[Phase::Concretize as usize].max(1) as f64;

    let ms = |ns: u128| ns as f64 / 1e6;
    println!("priority+sched measured over {points} (loop, II) points");
    let old_ps = ms(old_prio_ns + old_sched_ns);
    let new_ps = ms(new_prio_ns + new_sched_ns);
    let prio_speedup = ms(old_prio_ns) / ms(new_prio_ns).max(1e-9);
    let sched_speedup = ms(old_sched_ns) / ms(new_sched_ns).max(1e-9);
    let ps_speedup = old_ps / new_ps.max(1e-9);
    let e2e_speedup = ms(old_e2e_ns) / ms(new_e2e_ns).max(1e-9);
    println!("per-phase kernels (old vs new):");
    for &p in ALL_PHASES {
        let i = p as usize;
        let (o, n) = (ms(ph_old[i]), ms(ph_new[i]));
        println!(
            "  {:<12} : old {o:>9.1} ms  new {n:>9.1} ms  ({:.2}x)",
            p.name(),
            o / n.max(1e-9)
        );
    }
    println!(
        "translate e2e    : old {:>9.1} ms  new {:>9.1} ms  ({e2e_speedup:.2}x)",
        ms(old_e2e_ns),
        ms(new_e2e_ns)
    );
    println!("outputs          : bit-identical across both kernels");

    let mut phases_json = String::new();
    for (k, &p) in ALL_PHASES.iter().enumerate() {
        let i = p as usize;
        let (o, n) = (ms(ph_old[i]), ms(ph_new[i]));
        phases_json.push_str(&format!(
            "    \"{}\": {{ \"old_ms\": {o:.3}, \"new_ms\": {n:.3}, \"speedup\": {:.3} }}{}\n",
            p.name(),
            o / n.max(1e-9),
            if k + 1 < ALL_PHASES.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"full\",\n  \"apps\": {},\n  \"loops_schedulable\": {},\n  \
         \"ii_points\": {},\n  \"reps_per_point\": {},\n  \"old_priority_ms\": {:.3},\n  \
         \"new_priority_ms\": {:.3},\n  \"old_scheduling_ms\": {:.3},\n  \
         \"new_scheduling_ms\": {:.3},\n  \"priority_speedup\": {:.3},\n  \
         \"scheduling_speedup\": {:.3},\n  \"priority_scheduling_speedup\": {:.3},\n  \
         \"phases\": {{\n{}  }},\n  \
         \"old_translate_ms\": {:.3},\n  \"new_translate_ms\": {:.3},\n  \
         \"translate_speedup\": {:.3},\n  \"symbolic_concretize_speedup\": {:.3},\n  \
         \"bit_identical\": true\n}}\n",
        apps.len(),
        prepped.len(),
        points,
        reps,
        ms(old_prio_ns),
        ms(new_prio_ns),
        ms(old_sched_ns),
        ms(new_sched_ns),
        prio_speedup,
        sched_speedup,
        ps_speedup,
        phases_json,
        ms(old_e2e_ns),
        ms(new_e2e_ns),
        e2e_speedup,
        concretize_speedup,
    );
    if let Err(e) = std::fs::write("BENCH_translate.json", json) {
        eprintln!("bench_translate: failed to write BENCH_translate.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_translate.json");
    if let Err(e) = trace.flush() {
        eprintln!("bench_translate: failed to flush trace: {e}");
        std::process::exit(1);
    }
    if let Some(floor) = std::env::var("VEAL_BENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if e2e_speedup < floor {
            eprintln!("bench_translate: translate_speedup {e2e_speedup:.3} below floor {floor:.3}");
            std::process::exit(1);
        }
        println!("translate_speedup {e2e_speedup:.3} >= floor {floor:.3}");
    }
}
