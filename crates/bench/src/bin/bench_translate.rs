//! Benchmarks the translation hot kernel, old vs new, over every loop of
//! the full workload suite.
//!
//! The **old kernel** is the pre-optimization implementation, retained
//! verbatim in the [`reference`] module below: hash-set based Swing
//! ordering over the naive Θ(n³) Floyd–Warshall MinDist
//! ([`veal::sched::MinDist::compute_naive`]) and the hash-map based modulo
//! list scheduler. The **new kernel** is the current pipeline: the
//! SCC-structured, II-parametric MinDist envelope with its cross-invocation
//! cache, bitset Swing ordering, and the dense-array list scheduler.
//!
//! Two measurements per loop:
//!
//! * **priority + scheduling** — `swing_order` followed by
//!   `list_schedule` on the separated, CCA-mapped body (the paper's 69% +
//!   9% of translation cost, Figure 8), old kernels vs new kernels. Each
//!   loop is run at `VEAL_BENCH_IIS` consecutive IIs starting at its MII —
//!   the pattern the design-space sweep and II escalation actually
//!   generate (same graph, shifting II), where the old kernel pays a full
//!   Θ(n³) Floyd–Warshall per point and the new one evaluates the cached
//!   Pareto frontiers in O(n²·k).
//! * **end-to-end translate** — the whole `Translator::translate`
//!   pipeline on the raw loop body, naive-MinDist vs parametric-MinDist
//!   (the scheduler inside `translate` is always the current one).
//!
//! Every order, schedule, and per-phase abstract-instruction breakdown is
//! asserted identical between the two kernels — the abstract cost model
//! is the paper's result and must not move.
//!
//! Results are printed and written to `BENCH_translate.json`. Environment
//! knobs for the CI smoke job: `VEAL_BENCH_APPS` truncates the suite,
//! `VEAL_BENCH_REPS` sets the timed repetitions per loop (default 5).
//!
//! `--trace-out <path>` records one `translate_start`/`translate_end`
//! event pair per suite loop from the end-to-end validation pass (this
//! bin drives the `Translator` directly, so the events are constructed
//! here rather than by a `VmSession`). Tracing never changes the timed
//! numbers or the bit-identity asserts.

use std::sync::Arc;
use std::time::Instant;
use veal::ir::streams::{separate, StreamSummary};
use veal::ir::{CostMeter, Dfg, OpId, PhaseBreakdown};
use veal::obs::TranslateStatus;
use veal::sched::{
    list_schedule, rec_mii, res_mii, set_parametric_enabled, swing_order, ModuloSchedule,
    ScheduleError,
};
use veal::vm::{StaticHints, TranslationPolicy, Translator};
use veal::{AcceleratorConfig, CcaSpec, Event, JsonlSink, Trace};

/// The pre-optimization translation kernels, retained verbatim so the
/// benchmark compares real old code against real new code on the same
/// build. Every `CostMeter` charge matches the current kernels' charges —
/// the abstract cost model describes the *algorithmic* work of the paper's
/// translator, not the host-side data structures — so the phase breakdowns
/// of both arms are asserted bit-identical in `main`.
mod reference {
    use std::collections::{HashMap, HashSet, VecDeque};
    use veal::accel::ResourceKind;
    use veal::ir::streams::StreamSummary;
    use veal::ir::{CostMeter, Dfg, OpId, Phase};
    use veal::sched::priority::{depths, heights};
    use veal::sched::{MinDist, ModuloReservationTable, ScheduleError};
    use veal::{AcceleratorConfig, LatencyModel};

    /// The old per-SCC criticality: the SCC's own RecMII recomputed from
    /// MinDist self distances.
    fn scc_criticality(md: &MinDist, scc: &[OpId]) -> i64 {
        scc.iter()
            .filter_map(|&v| md.get(v, v))
            .max()
            .unwrap_or(i64::MIN)
    }

    /// The old Swing ordering: a full naive Floyd–Warshall per call, hash
    /// sets for the pending/placed bookkeeping.
    #[must_use]
    pub fn swing_order(dfg: &Dfg, lat: &LatencyModel, ii: u32, meter: &mut CostMeter) -> Vec<OpId> {
        let md = MinDist::compute_naive(dfg, lat, ii.max(1), meter);
        let d = depths(dfg, lat, meter, Phase::Priority);
        let h = heights(dfg, lat, meter, Phase::Priority);

        let sccs = dfg.sccs();
        meter.charge(Phase::Priority, (dfg.len() as u64) * 2);
        let mut rec_sets: Vec<&Vec<OpId>> = sccs
            .iter()
            .filter(|scc| {
                scc.iter().all(|&v| dfg.node(v).is_schedulable())
                    && (scc.len() > 1 || dfg.succ_edges(scc[0]).any(|e| e.dst == scc[0]))
            })
            .collect();
        rec_sets.sort_by_key(|scc| {
            (
                std::cmp::Reverse(scc_criticality(&md, scc)),
                std::cmp::Reverse(scc.len()),
                scc[0],
            )
        });

        let mut order: Vec<OpId> = Vec::new();
        let mut placed: HashSet<OpId> = HashSet::new();

        let mut emit_set = |set: Vec<OpId>, order: &mut Vec<OpId>, placed: &mut HashSet<OpId>| {
            let pending: Vec<OpId> = set
                .iter()
                .copied()
                .filter(|v| !placed.contains(v))
                .collect();
            if pending.is_empty() {
                return;
            }
            let mut remaining: HashSet<OpId> = pending.iter().copied().collect();
            while !remaining.is_empty() {
                meter.charge(Phase::Priority, remaining.len() as u64);
                let mut candidates: Vec<OpId> = remaining
                    .iter()
                    .copied()
                    .filter(|&v| {
                        dfg.pred_edges(v).any(|e| placed.contains(&e.src))
                            || dfg.succ_edges(v).any(|e| placed.contains(&e.dst))
                    })
                    .collect();
                if candidates.is_empty() {
                    candidates = remaining.iter().copied().collect();
                }
                candidates.sort_by_key(|&v| {
                    (
                        std::cmp::Reverse(d[v.index()] + h[v.index()]),
                        d[v.index()],
                        v,
                    )
                });
                let chosen = candidates[0];
                remaining.remove(&chosen);
                placed.insert(chosen);
                order.push(chosen);
            }
        };

        for scc in rec_sets {
            emit_set(scc.clone(), &mut order, &mut placed);
        }
        let rest: Vec<OpId> = dfg
            .schedulable_ops()
            .filter(|v| !placed.contains(v))
            .collect();
        emit_set(rest, &mut order, &mut placed);
        order
    }

    /// The old schedule representation: hash maps keyed by op id.
    #[derive(Debug, Clone)]
    pub struct RefSchedule {
        pub ii: u32,
        times: HashMap<OpId, i64>,
        units: HashMap<OpId, (ResourceKind, usize)>,
    }

    impl RefSchedule {
        pub fn unit(&self, op: OpId) -> Option<(ResourceKind, usize)> {
            self.units.get(&op).copied()
        }

        pub fn entries(&self) -> Vec<(OpId, i64)> {
            let mut v: Vec<(OpId, i64)> = self.times.iter().map(|(&k, &t)| (k, t)).collect();
            v.sort_by_key(|&(k, t)| (t, k));
            v
        }
    }

    struct RefScratch {
        mrt: ModuloReservationTable,
        times: HashMap<OpId, i64>,
        units: HashMap<OpId, (ResourceKind, usize)>,
        queue: VecDeque<OpId>,
    }

    impl RefScratch {
        fn new(ii: u32, config: &AcceleratorConfig, ops: usize) -> Self {
            RefScratch {
                mrt: ModuloReservationTable::with_unit_cap(ii, config, ops.max(1)),
                times: HashMap::with_capacity(ops),
                units: HashMap::with_capacity(ops),
                queue: VecDeque::with_capacity(ops),
            }
        }

        fn reset(&mut self, ii: u32, config: &AcceleratorConfig, ops: usize) {
            self.mrt.reset(ii, config, ops.max(1));
            self.times.clear();
            self.units.clear();
            self.queue.clear();
        }
    }

    /// The old modulo list scheduler: identical window/ejection logic to
    /// the current one, but all per-op state lives in hash maps.
    pub fn list_schedule(
        dfg: &Dfg,
        config: &AcceleratorConfig,
        order: &[OpId],
        mii: u32,
        streams: StreamSummary,
        meter: &mut CostMeter,
    ) -> Result<RefSchedule, ScheduleError> {
        let lat = &config.latencies;
        let d = depths(dfg, lat, meter, Phase::Scheduling);
        let start_ii = mii.max(config.min_ii_for_streams(streams)).max(1);
        let last_ii = config.max_ii.min(start_ii.saturating_add(63));
        let mut scratch = RefScratch::new(start_ii, config, order.len());
        for ii in start_ii..=last_ii {
            meter.charge(Phase::Scheduling, 4);
            if let Some(schedule) = try_schedule(dfg, config, order, ii, &d, &mut scratch, meter) {
                return Ok(schedule);
            }
        }
        Err(ScheduleError::NoSchedule {
            tried_up_to: last_ii,
        })
    }

    fn try_schedule(
        dfg: &Dfg,
        config: &AcceleratorConfig,
        order: &[OpId],
        ii: u32,
        depth: &[u32],
        scratch: &mut RefScratch,
        meter: &mut CostMeter,
    ) -> Option<RefSchedule> {
        let lat = &config.latencies;
        scratch.reset(ii, config, order.len());
        let RefScratch {
            mrt,
            times,
            units,
            queue,
        } = scratch;

        queue.extend(order.iter().copied());
        let mut ejections = 32 * order.len() as u64 + 64;

        while let Some(v) = queue.pop_front() {
            let op = dfg.node(v).opcode().expect("order contains only ops");
            let span = if op.pipelined() { 1 } else { lat.latency(op) };

            let mut early: Option<i64> = None;
            let mut late: Option<i64> = None;
            for e in dfg.pred_edges(v) {
                meter.charge(Phase::Scheduling, 1);
                if e.src == v {
                    continue;
                }
                if let Some(&tp) = times.get(&e.src) {
                    let lp = i64::from(dfg.node(e.src).opcode().map_or(0, |o| lat.latency(o)));
                    let bound = tp + lp - i64::from(ii) * i64::from(e.distance);
                    early = Some(early.map_or(bound, |b: i64| b.max(bound)));
                }
            }
            for e in dfg.succ_edges(v) {
                meter.charge(Phase::Scheduling, 1);
                if e.dst == v {
                    continue;
                }
                if let Some(&ts) = times.get(&e.dst) {
                    let lv = i64::from(lat.latency(op));
                    let bound = ts - lv + i64::from(ii) * i64::from(e.distance);
                    late = Some(late.map_or(bound, |b: i64| b.min(bound)));
                }
            }

            let slot = match (early, late) {
                (Some(e0), Some(l0)) if e0 > l0 => None,
                (Some(e0), Some(l0)) => scan_up(
                    mrt,
                    resource(op),
                    e0,
                    l0.min(e0 + i64::from(ii) - 1),
                    span,
                    meter,
                ),
                (Some(e0), None) => {
                    scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter)
                }
                (None, Some(l0)) => {
                    scan_down(mrt, resource(op), l0, l0 - i64::from(ii) + 1, span, meter)
                }
                (None, None) => {
                    let e0 = i64::from(depth[v.index()]);
                    scan_up(mrt, resource(op), e0, e0 + i64::from(ii) - 1, span, meter)
                }
            };
            let slot = match slot {
                Some(s) => s,
                None => {
                    if late.is_none() || ejections == 0 {
                        return None;
                    }
                    ejections -= 1;
                    meter.charge(Phase::Scheduling, 4);
                    let victims: Vec<OpId> = dfg
                        .succ_edges(v)
                        .filter(|e| e.dst != v && times.contains_key(&e.dst))
                        .map(|e| e.dst)
                        .collect();
                    if victims.is_empty() {
                        return None;
                    }
                    for w in victims {
                        if let Some(tw) = times.remove(&w) {
                            if let Some((kind, u)) = units.remove(&w) {
                                let wop = dfg.node(w).opcode().expect("scheduled op");
                                let wspan = if wop.pipelined() { 1 } else { lat.latency(wop) };
                                mrt.release(kind, u, tw, wspan);
                            }
                            queue.push_back(w);
                        }
                    }
                    queue.push_front(v);
                    continue;
                }
            };
            let (t, unit_choice) = slot;
            if let Some((kind, u)) = unit_choice {
                mrt.reserve(kind, u, t, span);
                units.insert(v, (kind, u));
            }
            times.insert(v, t);
        }

        let min_t = times.values().copied().min().unwrap_or(0);
        let shift = min_t.rem_euclid(i64::from(ii)) - min_t;
        for t in times.values_mut() {
            *t += shift;
        }
        for &v in order {
            units.entry(v).or_insert((ResourceKind::Int, usize::MAX));
        }
        Some(RefSchedule {
            ii,
            times: std::mem::take(times),
            units: std::mem::take(units),
        })
    }

    fn resource(op: veal::ir::Opcode) -> ResourceKind {
        ResourceKind::for_opcode(op).unwrap_or(ResourceKind::Int)
    }

    type Slot = (i64, Option<(ResourceKind, usize)>);

    fn scan_up(
        mrt: &ModuloReservationTable,
        kind: ResourceKind,
        from: i64,
        to: i64,
        span: u32,
        meter: &mut CostMeter,
    ) -> Option<Slot> {
        let mut t = from;
        while t <= to {
            meter.charge(Phase::Scheduling, 1);
            if let Some(u) = mrt.find_unit(kind, t, span) {
                return Some((t, Some((kind, u))));
            }
            t += 1;
        }
        None
    }

    fn scan_down(
        mrt: &ModuloReservationTable,
        kind: ResourceKind,
        from: i64,
        to: i64,
        span: u32,
        meter: &mut CostMeter,
    ) -> Option<Slot> {
        let mut t = from;
        while t >= to {
            meter.charge(Phase::Scheduling, 1);
            if let Some(u) = mrt.find_unit(kind, t, span) {
                return Some((t, Some((kind, u))));
            }
            t -= 1;
        }
        None
    }
}

/// One loop readied for the scheduling kernel: separated, CCA-mapped, MII
/// computed — exactly the state `modulo_schedule` sees inside `translate`.
struct Prepped {
    name: String,
    dfg: Dfg,
    summary: StreamSummary,
    mii: u32,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--trace-out <path>` from argv; `None` when absent.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => return Some(p.into()),
                None => {
                    eprintln!("bench_translate: --trace-out requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn prep_suite(apps: &[veal::workloads::Application], config: &AcceleratorConfig) -> Vec<Prepped> {
    let spec = CcaSpec::paper();
    let mut out = Vec::new();
    for app in apps {
        for (i, l) in app.loops.iter().enumerate() {
            let mut meter = CostMeter::new();
            let Ok(sep) = separate(&l.raw.body.dfg, &mut meter) else {
                continue;
            };
            let summary = sep.summary();
            if config.check_streams(summary).is_err() {
                continue;
            }
            let mut dfg = sep.dfg;
            veal::cca::map_cca(&mut dfg, &spec, &mut meter);
            let mii = res_mii(&dfg, config, summary, &mut meter).max(rec_mii(
                &dfg,
                &config.latencies,
                &mut meter,
            ));
            if mii > config.max_ii {
                continue;
            }
            out.push(Prepped {
                name: format!("{}#{i}", app.name),
                dfg,
                summary,
                mii,
            });
        }
    }
    out
}

/// Old kernels: hash-based Swing order over a fresh naive Floyd–Warshall,
/// then the hash-map list scheduler.
fn old_prio_and_sched(
    p: &Prepped,
    config: &AcceleratorConfig,
    ii: u32,
) -> (
    Vec<OpId>,
    Result<reference::RefSchedule, ScheduleError>,
    PhaseBreakdown,
) {
    let mut meter = CostMeter::new();
    let order = reference::swing_order(&p.dfg, &config.latencies, ii, &mut meter);
    let sched = reference::list_schedule(&p.dfg, config, &order, ii, p.summary, &mut meter);
    (order, sched, *meter.breakdown())
}

/// New kernels: bitset Swing order over the II-parametric MinDist
/// envelope, then the dense-array list scheduler.
fn new_prio_and_sched(
    p: &Prepped,
    config: &AcceleratorConfig,
    ii: u32,
) -> (
    Vec<OpId>,
    Result<ModuloSchedule, ScheduleError>,
    PhaseBreakdown,
) {
    let mut meter = CostMeter::new();
    let order = swing_order(&p.dfg, &config.latencies, ii, &mut meter);
    let sched = list_schedule(&p.dfg, config, &order, ii, p.summary, &mut meter);
    (order, sched, *meter.breakdown())
}

/// Asserts the old and new schedulers produced the same schedule (or the
/// same failure): same II, same op→time map, same op→unit map.
fn assert_same_schedule(
    name: &str,
    old: &Result<reference::RefSchedule, ScheduleError>,
    new: &Result<ModuloSchedule, ScheduleError>,
) {
    match (old, new) {
        (Err(eo), Err(en)) => assert_eq!(eo, en, "{name}: errors diverged"),
        (Ok(so), Ok(sn)) => {
            assert_eq!(so.ii, sn.ii, "{name}: II diverged");
            assert_eq!(so.entries(), sn.entries(), "{name}: times diverged");
            for (op, _) in so.entries() {
                assert_eq!(so.unit(op), sn.unit(op), "{name}: unit of {op} diverged");
            }
        }
        (o, n) => panic!(
            "{name}: outcome diverged (old ok={}, new ok={})",
            o.is_ok(),
            n.is_ok()
        ),
    }
}

fn main() {
    let trace = match trace_out_arg() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                println!("tracing to {}", path.display());
                Trace::new(Arc::new(sink))
            }
            Err(e) => {
                eprintln!("bench_translate: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Trace::null(),
    };
    let mut apps = veal::workloads::full_suite();
    let max_apps = env_usize("VEAL_BENCH_APPS", usize::MAX);
    apps.truncate(max_apps);
    let reps = env_usize("VEAL_BENCH_REPS", 5).max(1) as u32;
    let config = AcceleratorConfig::paper_design();
    let prepped = prep_suite(&apps, &config);
    println!(
        "bench_translate: {} apps, {} schedulable loops, {} reps/loop",
        apps.len(),
        prepped.len(),
        reps
    );

    // --- priority + scheduling, old vs new kernel ------------------------
    // Each loop is visited at a small range of IIs starting at its MII:
    // exactly what the DSE sweep (one MII per machine configuration) and
    // the scheduler's own II escalation generate.
    set_parametric_enabled(true);
    let iis = env_usize("VEAL_BENCH_IIS", 8).max(1) as u32;
    let mut points = 0usize;
    let mut old_prio_ns = 0u128;
    let mut old_sched_ns = 0u128;
    let mut new_prio_ns = 0u128;
    let mut new_sched_ns = 0u128;
    for p in &prepped {
        for ii in p.mii..=(p.mii + iis - 1).min(config.max_ii) {
            points += 1;
            // Warm both kernels once and assert bit-identity: same order,
            // same schedule (or same failure), same per-phase charges.
            let (order_o, sched_o, bd_o) = old_prio_and_sched(p, &config, ii);
            let (order_n, sched_n, bd_n) = new_prio_and_sched(p, &config, ii);
            assert_eq!(order_o, order_n, "{}@{ii}: swing order diverged", p.name);
            assert_same_schedule(&p.name, &sched_o, &sched_n);
            assert_eq!(bd_o, bd_n, "{}@{ii}: phase breakdown diverged", p.name);

            let t = Instant::now();
            for _ in 0..reps {
                let mut meter = CostMeter::new();
                std::hint::black_box(reference::swing_order(
                    &p.dfg,
                    &config.latencies,
                    ii,
                    &mut meter,
                ));
            }
            old_prio_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            for _ in 0..reps {
                let mut meter = CostMeter::new();
                let _ = std::hint::black_box(reference::list_schedule(
                    &p.dfg, &config, &order_n, ii, p.summary, &mut meter,
                ));
            }
            old_sched_ns += t.elapsed().as_nanos();

            let t = Instant::now();
            for _ in 0..reps {
                let mut meter = CostMeter::new();
                std::hint::black_box(swing_order(&p.dfg, &config.latencies, ii, &mut meter));
            }
            new_prio_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            for _ in 0..reps {
                let mut meter = CostMeter::new();
                let _ = std::hint::black_box(list_schedule(
                    &p.dfg, &config, &order_n, ii, p.summary, &mut meter,
                ));
            }
            new_sched_ns += t.elapsed().as_nanos();
        }
    }

    // --- end-to-end translate, naive vs parametric MinDist ---------------
    let translator = Translator::new(
        config.clone(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let hints = StaticHints::none();
    let bodies: Vec<_> = apps
        .iter()
        .flat_map(|a| a.loops.iter().map(|l| &l.raw.body))
        .collect();
    let mut naive_e2e_ns = 0u128;
    let mut param_e2e_ns = 0u128;
    for (key, body) in bodies.iter().enumerate() {
        let key = key as u64;
        set_parametric_enabled(false);
        let out_n = translator.translate(body, &hints);
        set_parametric_enabled(true);
        trace.emit(|| Event::TranslateStart {
            key,
            loop_hash: body.content_hash(),
        });
        let out_p = translator.translate(body, &hints);
        trace.emit(|| Event::TranslateEnd {
            key,
            status: if out_p.result.is_ok() {
                TranslateStatus::Mapped
            } else {
                TranslateStatus::Failed
            },
            units: out_p.breakdown.total(),
            checks: 0,
            degraded: false,
            breakdown: out_p.breakdown,
        });
        assert_eq!(
            out_n.breakdown, out_p.breakdown,
            "{}: translate breakdown diverged",
            body.name
        );
        let sig = |r: &Result<veal::vm::TranslatedLoop, veal::vm::TranslationError>| match r {
            Ok(t) => format!(
                "{}|{}|{}|{}",
                t.scheduled.schedule, t.control_words, t.cca_groups, t.accel_ops
            ),
            Err(e) => format!("ERR {e}"),
        };
        assert_eq!(
            sig(&out_n.result),
            sig(&out_p.result),
            "{}: translate result diverged",
            body.name
        );
        for (parametric, e2e_ns) in [(false, &mut naive_e2e_ns), (true, &mut param_e2e_ns)] {
            set_parametric_enabled(parametric);
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(translator.translate(body, &hints));
            }
            *e2e_ns += t.elapsed().as_nanos();
        }
    }
    set_parametric_enabled(true);

    let ms = |ns: u128| ns as f64 / 1e6;
    println!("priority+sched measured over {points} (loop, II) points");
    let old_ps = ms(old_prio_ns + old_sched_ns);
    let new_ps = ms(new_prio_ns + new_sched_ns);
    let prio_speedup = ms(old_prio_ns) / ms(new_prio_ns).max(1e-9);
    let sched_speedup = ms(old_sched_ns) / ms(new_sched_ns).max(1e-9);
    let ps_speedup = old_ps / new_ps.max(1e-9);
    let e2e_speedup = ms(naive_e2e_ns) / ms(param_e2e_ns).max(1e-9);
    println!(
        "priority         : old {:>9.1} ms  new {:>9.1} ms  ({prio_speedup:.2}x)",
        ms(old_prio_ns),
        ms(new_prio_ns)
    );
    println!(
        "scheduling       : old {:>9.1} ms  new {:>9.1} ms  ({sched_speedup:.2}x)",
        ms(old_sched_ns),
        ms(new_sched_ns)
    );
    println!("priority+sched   : old {old_ps:>9.1} ms  new {new_ps:>9.1} ms  ({ps_speedup:.2}x)");
    println!(
        "translate e2e    : naive-mindist {:>9.1} ms  parametric {:>9.1} ms  ({e2e_speedup:.2}x)",
        ms(naive_e2e_ns),
        ms(param_e2e_ns)
    );
    println!("outputs          : bit-identical across both kernels");

    let json = format!(
        "{{\n  \"suite\": \"full\",\n  \"apps\": {},\n  \"loops_schedulable\": {},\n  \
         \"ii_points\": {},\n  \"reps_per_point\": {},\n  \"old_priority_ms\": {:.3},\n  \
         \"new_priority_ms\": {:.3},\n  \"old_scheduling_ms\": {:.3},\n  \
         \"new_scheduling_ms\": {:.3},\n  \"priority_speedup\": {:.3},\n  \
         \"scheduling_speedup\": {:.3},\n  \"priority_scheduling_speedup\": {:.3},\n  \
         \"naive_translate_ms\": {:.3},\n  \"param_translate_ms\": {:.3},\n  \
         \"translate_speedup\": {:.3},\n  \"bit_identical\": true\n}}\n",
        apps.len(),
        prepped.len(),
        points,
        reps,
        ms(old_prio_ns),
        ms(new_prio_ns),
        ms(old_sched_ns),
        ms(new_sched_ns),
        prio_speedup,
        sched_speedup,
        ps_speedup,
        ms(naive_e2e_ns),
        ms(param_e2e_ns),
        e2e_speedup,
    );
    if let Err(e) = std::fs::write("BENCH_translate.json", json) {
        eprintln!("bench_translate: failed to write BENCH_translate.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_translate.json");
    if let Err(e) = trace.flush() {
        eprintln!("bench_translate: failed to flush trace: {e}");
        std::process::exit(1);
    }
}
