//! Regenerates every table and figure of the paper's evaluation in order.
fn main() {
    let sections: &[(&str, fn())] = &[
        ("Figure 2", veal_bench::figures::fig2::run),
        ("Figure 3", veal_bench::figures::fig3::run),
        ("Figure 4", veal_bench::figures::fig4::run),
        (
            "Design point (Section 3.2)",
            veal_bench::figures::table_design::run,
        ),
        ("Figure 5", veal_bench::figures::fig5::run),
        ("Figure 6", veal_bench::figures::fig6::run),
        ("Figure 7", veal_bench::figures::fig7::run),
        ("Figure 8", veal_bench::figures::fig8::run),
        ("Figure 9", veal_bench::figures::fig9::run),
        ("Figure 10", veal_bench::figures::fig10::run),
        ("Ablations", veal_bench::figures::ablation::run),
    ];
    for (name, f) in sections {
        println!("\n{}", "=".repeat(72));
        println!("== {name}");
        println!("{}", "=".repeat(72));
        f();
    }
}
