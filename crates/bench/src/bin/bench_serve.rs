//! Benchmarks the multi-tenant translation service (`veal::serve`): one
//! seeded request stream served at 1/2/4/8 worker threads, cold and warm,
//! asserting the serving invariant along the way — per-tenant statistics
//! are **bit-identical** at every thread count (concurrency reorders work
//! across tenants, never results within one).
//!
//! Two kinds of numbers, deliberately separated:
//!
//! * **wall-clock** — honest host measurements, tagged with `host_cores`;
//!   on a one-core CI box these do not scale and are not expected to;
//! * **lane model** — the deterministic abstract-cycle simulation of the
//!   same dispatch policy ([`veal::serve::simulate_lanes`]), which is the
//!   paper-style figure: identical on any machine. The `sim_speedup_4l`
//!   field (4 lanes vs 1) is the scaling claim CI checks.
//!
//! Results go to `BENCH_serve.json`. Knobs for the CI smoke job:
//! `VEAL_SERVE_REQUESTS`, `VEAL_SERVE_TENANTS`, `VEAL_SERVE_MAX_THREADS`.
//! `--trace-out <path>` attaches a [`veal::JsonlSink`] to every tenant
//! session (the file is validated by `vealc stats`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use veal::serve::{generate, percentile, LaneReport, LoadSpec};
use veal::{
    AcceleratorFamily, JsonlSink, NullSink, ServeConfig, ServeReport, Trace, TranslationService,
    VmStats,
};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--trace-out <path>` from argv; `None` when absent.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => return Some(p.into()),
                None => {
                    eprintln!("bench_serve: --trace-out requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// One thread count's wall-clock arm.
struct WallArm {
    threads: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_rps: f64,
    warm_rps: f64,
    p50_ns: u64,
    p99_ns: u64,
}

fn throughput_rps(completed: u64, wall_ns: u64) -> f64 {
    completed as f64 / (wall_ns.max(1) as f64 / 1e9)
}

fn main() {
    let trace = match trace_out_arg() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                println!("tracing to {}", path.display());
                Trace::new(Arc::new(sink))
            }
            Err(e) => {
                eprintln!("bench_serve: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Trace::null(),
    };

    let spec = LoadSpec {
        requests: env_usize("VEAL_SERVE_REQUESTS", 600),
        tenants: env_usize("VEAL_SERVE_TENANTS", 4).max(1),
        ..LoadSpec::default()
    };
    let max_threads = env_usize("VEAL_SERVE_MAX_THREADS", 8).max(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Symbolic serving: the fleet shares family-keyed symbolic entries and
    // every tenant concretizes locally — the memoized artifact is now
    // reusable across any design point the family covers.
    let mut base = ServeConfig::paper();
    base.family = Some(Arc::new(AcceleratorFamily::point(&base.config)));
    let stream = generate(&spec, &base.config, base.cca.as_ref());
    println!(
        "bench_serve: {} requests, {} tenants, threads {:?}, {} host core(s)",
        stream.len(),
        spec.tenants,
        thread_counts,
        host_cores
    );

    // Reference run: one thread, cold memo. Everything else is compared
    // against these per-tenant stats, and its per-request simulated costs
    // feed the lane model.
    let mut reference: Option<Vec<VmStats>> = None;
    let mut lane_costs: Vec<Vec<u64>> = Vec::new();
    let mut arms: Vec<WallArm> = Vec::new();
    let mut last_report: Option<ServeReport> = None;

    for &threads in &thread_counts {
        let cfg = ServeConfig {
            threads,
            ..base.clone()
        };
        // Closed loop: admit a queue-bound's worth per window so the
        // bench measures serving, not shedding.
        let window = spec.tenants * base.queue_capacity;
        let service = TranslationService::new(cfg).with_trace(trace.clone());
        let t0 = Instant::now();
        let cold = service.run_windowed(&stream, window);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let warm = service.run_windowed(&stream, window);
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(cold.stats.shed, 0, "bench stream must not shed");
        assert_eq!(
            warm.stats.computes, 0,
            "warm run recomputed a memoized translation"
        );
        assert_eq!(
            cold.stats.duplicate_translations, 0,
            "single-flight admitted duplicate work at {threads} thread(s)"
        );

        let stats: Vec<VmStats> = cold.tenants.iter().map(|t| t.stats.clone()).collect();
        match &reference {
            None => {
                lane_costs = cold
                    .tenants
                    .iter()
                    .map(|t| t.outcomes.iter().map(|o| o.translation_cycles).collect())
                    .collect();
                reference = Some(stats);
            }
            Some(reference) => {
                // The serving invariant: thread count must be invisible in
                // every tenant's stats, or the concurrency is unsound.
                assert_eq!(
                    reference, &stats,
                    "per-tenant stats diverged at {threads} thread(s)"
                );
            }
        }

        let lat = cold.sorted_latencies_ns();
        arms.push(WallArm {
            threads,
            cold_ms,
            warm_ms,
            cold_rps: throughput_rps(cold.stats.completed, cold.stats.wall_ns),
            warm_rps: throughput_rps(warm.stats.completed, warm.stats.wall_ns),
            p50_ns: percentile(&lat, 0.50),
            p99_ns: percentile(&lat, 0.99),
        });
        last_report = Some(cold);
    }

    let report = last_report.expect("at least one thread count");
    let duplicates = report.stats.duplicate_translations;

    // Telemetry run (untimed): an enabled discarding trace lets the
    // per-call concretize wall timer record; read the histogram delta.
    let concretize_wall = veal::obs::metrics::histogram("vm.concretize.wall_ns");
    let wall_before = concretize_wall.sum();
    let telem = TranslationService::new(ServeConfig {
        threads: 1,
        ..base.clone()
    })
    .with_trace(Trace::new(Arc::new(NullSink)))
    .run_windowed(&stream, spec.tenants * base.queue_capacity);
    let concretize_ms = (concretize_wall.sum() - wall_before) as f64 / 1e6;
    assert!(
        telem.stats.concretizations >= telem.stats.completed.min(1),
        "family-mode serving must concretize"
    );

    // Restart arm: warm a service, snapshot it, "crash" (drop it), revive
    // a fresh one from the snapshot, and serve the same stream — the
    // cold-start tax a deployment avoids by persisting warm state
    // (DESIGN.md §14). The revived run must compute nothing and stay
    // bit-identical to the cold reference per tenant.
    let window = spec.tenants * base.queue_capacity;
    let restart_cfg = ServeConfig {
        threads: 1,
        ..base.clone()
    };
    let origin = TranslationService::new(restart_cfg.clone());
    let t0 = Instant::now();
    let restart_cold = origin.run_windowed(&stream, window);
    let restart_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot = origin.save_snapshot().expect("warm state encodes");
    drop(origin);

    let revived = TranslationService::new(restart_cfg);
    let t0 = Instant::now();
    let restore = revived.restore_snapshot(&snapshot);
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let restart_warm = revived.run_windowed(&stream, window);
    let restart_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        restore.salvaged + restore.rejected,
        0,
        "a pristine snapshot must restore in full"
    );
    assert_eq!(
        restart_warm.stats.computes, 0,
        "restored memo must absorb every translation"
    );
    for (c, w) in restart_cold.tenants.iter().zip(&restart_warm.tenants) {
        assert_eq!(
            c.stats, w.stats,
            "restored tenant {} diverged from the cold run",
            c.tenant
        );
    }

    // Network arm: the same stream over a loopback socket (DESIGN.md §15).
    // One connection per tenant, driven lock-step — wire framing, frame
    // checksums, the module decode gauntlet, and client-side schedule
    // re-verification are all on the measured path. Per-tenant statistics
    // must still be bit-identical to the in-process cold run.
    let net_cfg = ServeConfig {
        threads: 1,
        ..base.clone()
    };
    let net_accel = net_cfg.config.clone();
    let net_family_fp = net_cfg.family.as_ref().map(|f| f.fingerprint());
    let net_service = TranslationService::new(net_cfg);
    let server = veal::NetServer::bind(net_service, veal::NetConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr().expect("bound address").to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let t0 = Instant::now();
    let mut clients: Vec<Option<veal::WireClient>> = (0..spec.tenants).map(|_| None).collect();
    for req in &stream {
        let c = clients[req.tenant].get_or_insert_with(|| {
            veal::WireClient::connect(
                &addr,
                u32::try_from(req.tenant).expect("small tenant index"),
                net_family_fp,
                net_accel.clone(),
            )
            .expect("connect to loopback server")
        });
        let outcome = c
            .request(req.key, &req.body, &req.hints)
            .expect("network request");
        assert!(outcome.error.is_none(), "calm stream must not be refused");
    }
    let network_ms = t0.elapsed().as_secs_f64() * 1e3;
    clients
        .into_iter()
        .flatten()
        .next()
        .expect("at least one connection")
        .shutdown()
        .expect("graceful shutdown");
    let net_report = server_thread.join().expect("server thread");
    assert_eq!(
        net_report.stats.completed,
        stream.len() as u64,
        "every request must complete over the wire"
    );
    for (c, n) in restart_cold.tenants.iter().zip(&net_report.tenants) {
        assert_eq!(
            c.stats, n.stats,
            "network tenant {} diverged from the in-process run",
            c.tenant
        );
    }
    let network_rps = stream.len() as f64 / (network_ms.max(1e-9) / 1e3);

    // The paper-style figure: the same dispatch policy in abstract
    // cycles. Simulated lanes cost nothing, so the sweep is fixed —
    // shrinking the wall-clock arms for CI never hides the 4-lane check.
    let sims: Vec<LaneReport> = [1usize, 2, 4, 8]
        .iter()
        .map(|&l| veal::serve::simulate_lanes(&lane_costs, l, base.batch_size))
        .collect();
    let sim_1l = sims.first().expect("one lane point");
    let sim_speedup_4l = sims
        .iter()
        .find(|s| s.lanes == 4)
        .map(|s| s.throughput_rpmc / sim_1l.throughput_rpmc);
    if let Some(speedup) = sim_speedup_4l {
        assert!(
            speedup >= 2.0,
            "lane model must scale ≥2x at 4 lanes, got {speedup:.2}x"
        );
    }

    let cache_hits: u64 = report.tenants.iter().map(|t| t.cache.hits).sum();
    let cache_misses: u64 = report.tenants.iter().map(|t| t.cache.misses).sum();
    for a in &arms {
        println!(
            "{} thread(s): cold {:>8.1} ms ({:>9.0} req/s), warm {:>8.1} ms ({:>9.0} req/s), p50 {} ns, p99 {} ns",
            a.threads, a.cold_ms, a.cold_rps, a.warm_ms, a.warm_rps, a.p50_ns, a.p99_ns
        );
    }
    for s in &sims {
        println!(
            "lane model {}: makespan {} cycles, {:.2} req/Mcycle, p50 {} p99 {}",
            s.lanes, s.makespan_cycles, s.throughput_rpmc, s.p50_cycles, s.p99_cycles
        );
    }
    println!(
        "memo: {} hits / {} misses, {} entries; {} computes, {} coalesced, {} duplicates",
        report.stats.memo.hits,
        report.stats.memo.misses,
        report.stats.memo.entries,
        report.stats.computes,
        report.stats.coalesced,
        duplicates
    );
    println!(
        "family: {} entries, {} concretizations ({} units), {:.2} ms/run",
        report.stats.memo.entries,
        report.stats.concretizations,
        report.stats.concretize_units,
        concretize_ms
    );
    println!("code caches: {cache_hits} hits / {cache_misses} misses");
    println!(
        "restart: cold {:.1} ms, restore {:.3} ms ({} bytes, {} entries), warm {:.1} ms",
        restart_cold_ms,
        restore_ms,
        snapshot.len(),
        restore.restored(),
        restart_warm_ms
    );
    println!(
        "network: {:.1} ms ({:.0} req/s) over {} connection(s), {} frame(s), {} reject(s)",
        network_ms, network_rps, net_report.accepted, net_report.frames, net_report.decode_rejects
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"requests\": {},", stream.len());
    let _ = writeln!(json, "  \"tenants\": {},", spec.tenants);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"wall\": [\n");
    for (i, a) in arms.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"cold_rps\": {:.1}, \"warm_rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            a.threads, a.cold_ms, a.warm_ms, a.cold_rps, a.warm_rps, a.p50_ns, a.p99_ns
        );
        json.push_str(if i + 1 < arms.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"sim\": [\n");
    for (i, s) in sims.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"lanes\": {}, \"makespan_cycles\": {}, \"throughput_rpmc\": {:.3}, \
             \"p50_cycles\": {}, \"p99_cycles\": {}}}",
            s.lanes, s.makespan_cycles, s.throughput_rpmc, s.p50_cycles, s.p99_cycles
        );
        json.push_str(if i + 1 < sims.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    if let Some(speedup) = sim_speedup_4l {
        let _ = writeln!(json, "  \"sim_speedup_4l\": {speedup:.3},");
    }
    let _ = writeln!(json, "  \"memo_hits\": {},", report.stats.memo.hits);
    let _ = writeln!(json, "  \"memo_misses\": {},", report.stats.memo.misses);
    let _ = writeln!(json, "  \"memo_entries\": {},", report.stats.memo.entries);
    let _ = writeln!(json, "  \"computes\": {},", report.stats.computes);
    let _ = writeln!(json, "  \"coalesced\": {},", report.stats.coalesced);
    let _ = writeln!(json, "  \"duplicate_translations\": {duplicates},");
    let _ = writeln!(json, "  \"family_entries\": {},", report.stats.memo.entries);
    let _ = writeln!(json, "  \"family_hits\": {},", report.stats.memo.hits);
    let _ = writeln!(
        json,
        "  \"concretizations\": {},",
        report.stats.concretizations
    );
    let _ = writeln!(
        json,
        "  \"concretize_units\": {},",
        report.stats.concretize_units
    );
    let _ = writeln!(json, "  \"concretize_ms\": {concretize_ms:.3},");
    let _ = writeln!(json, "  \"cache_hits\": {cache_hits},");
    let _ = writeln!(json, "  \"cache_misses\": {cache_misses},");
    let _ = writeln!(
        json,
        "  \"restart\": {{\"snapshot_bytes\": {}, \"cold_ms\": {:.3}, \"restore_ms\": {:.3}, \
         \"warm_ms\": {:.3}, \"restored\": {}, \"salvaged\": {}, \"rejected\": {}}},",
        snapshot.len(),
        restart_cold_ms,
        restore_ms,
        restart_warm_ms,
        restore.restored(),
        restore.salvaged,
        restore.rejected
    );
    let _ = writeln!(
        json,
        "  \"network\": {{\"wall_ms\": {:.3}, \"rps\": {:.1}, \"connections\": {}, \
         \"frames\": {}, \"decode_rejects\": {}, \"completed\": {}}},",
        network_ms,
        network_rps,
        net_report.accepted,
        net_report.frames,
        net_report.decode_rejects,
        net_report.stats.completed
    );
    let _ = writeln!(json, "  \"shed\": {},", report.stats.shed);
    json.push_str("  \"bit_identical\": true\n}\n");

    if let Err(e) = std::fs::write("BENCH_serve.json", json) {
        eprintln!("bench_serve: failed to write BENCH_serve.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_serve.json");
    if let Err(e) = trace.flush() {
        eprintln!("bench_serve: failed to flush trace: {e}");
        std::process::exit(1);
    }
}
