//! Regenerates the paper's Figure 5 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig5::run();
}
