//! Regenerates the paper's Figure 3 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig3::run();
}
