//! Regenerates the paper's Figure 2 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig2::run();
}
