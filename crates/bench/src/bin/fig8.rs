//! Regenerates the paper's Figure 8 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig8::run();
}
