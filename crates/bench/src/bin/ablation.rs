//! Ablation studies for the design choices (see DESIGN.md).
fn main() {
    veal_bench::figures::ablation::run();
}
