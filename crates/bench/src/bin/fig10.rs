//! Regenerates the paper's Figure 10 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig10::run();
}
