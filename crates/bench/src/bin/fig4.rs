//! Regenerates the paper's Figure 4 (see DESIGN.md's experiment index).
fn main() {
    veal_bench::figures::fig4::run();
}
