//! Prints the workload suite's loop-population statistics — the data
//! behind DESIGN.md's claim that the synthetic suite matches the paper's
//! benchmark *shapes* (sizes, recurrences, streams, defects).

use veal::ir::streams::separate;
use veal::{classify_loop, legalize, CostMeter, LoopClass, TransformLimits};

fn main() {
    println!(
        "{:<14} {:>5} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "app", "loops", "ops", "max", "streams", "defects", "parts", "iters"
    );
    veal_bench::rule(72);
    let limits = TransformLimits::default();
    for app in veal::workloads::full_suite() {
        let mut total_ops = 0usize;
        let mut max_ops = 0usize;
        let mut streams = 0usize;
        let mut defects = 0usize;
        let mut parts = 0usize;
        for l in &app.loops {
            let n = l.raw.body.len();
            total_ops += n;
            max_ops = max_ops.max(n);
            if let Ok(sep) = separate(&l.raw.body.dfg, &mut CostMeter::new()) {
                let s = sep.summary();
                streams += s.loads + s.stores;
                if s.loads > 16 || s.stores > 8 {
                    defects += 1;
                }
            }
            if l.raw.callee.is_some()
                || classify_loop(&l.raw.body.dfg) != LoopClass::ModuloSchedulable
            {
                defects += 1;
            }
            parts += legalize(&l.raw, &limits).len();
        }
        println!(
            "{:<14} {:>5} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8.1e}",
            app.name,
            app.loops.len(),
            total_ops / app.loops.len().max(1),
            max_ops,
            streams,
            defects,
            parts,
            app.total_iterations() as f64,
        );
    }
    println!(
        "\n(ops = mean full-body size; defects = raw loops needing a static\n\
         transform before the accelerator can take them — Figure 7's input)"
    );
}
