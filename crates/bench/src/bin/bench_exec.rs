//! Benchmarks native loop execution: the [`veal::ir::interp`] reference
//! interpreter vs the LoopVM bytecode backend ([`veal::exec`]), scalar and
//! lane-vectorized, over every loop of the full workload suite.
//!
//! Each raw suite loop is legalized exactly as the system simulator does
//! (`legalize` + `TransformLimits::default()`), given its static hints,
//! and compiled through [`veal::vm::Translator::compile_executable`] — so
//! a mapped loop executes in modulo-schedule order and a rejected one in
//! topological order, the same artifacts a `VmSession` caches. Three arms
//! per loop, all driven by the shared deterministic fixture inputs:
//!
//! * **interp** — `veal::ir::interp::interpret`, the golden semantics.
//! * **loopvm** — `ExecutableLoop::run`, the scalar bytecode dispatch.
//! * **lanes**  — `ExecutableLoop::run_lanes` at `DEFAULT_LANES` (8)
//!   iterations per inner step with a masked tail.
//!
//! Correctness is gated differentially before anything is timed: the
//! FNV-folded checksum ([`veal::workloads::fold_checksum`]) of each arm's
//! full `ExecResult` must be bit-identical, and a body the interpreter
//! refuses (opaque calls) must be refused by the compiler at the same
//! node. Any divergence fails the run.
//!
//! Results are printed and written to `BENCH_exec.json`. Environment
//! knobs for the CI smoke job: `VEAL_BENCH_APPS` truncates the suite,
//! `VEAL_BENCH_TRIPS` sets iterations per timed run (default 4096),
//! `VEAL_BENCH_REPS` the repetitions per pass (default 3),
//! `VEAL_BENCH_PASSES` the best-of pass count (default 3), and
//! `VEAL_BENCH_MIN_EXEC_SPEEDUP` (a float) makes the run exit non-zero
//! when the lane-mode speedup lands below the floor.

use std::time::Instant;
use veal::exec::CompileError;
use veal::ir::interp::{interpret, Inputs, InterpError};
use veal::workloads::{fixture_inputs, fold_checksum};
use veal::{
    compute_hints, legalize, AcceleratorConfig, CcaSpec, ExecutableLoop, LoopBody, TransformLimits,
    TranslationPolicy, Translator, DEFAULT_LANES,
};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Minimum wall-clock nanos over `passes` runs of `f`. Best-of-N filters
/// scheduler/frequency noise; applied identically to every arm so the
/// speedup ratios stay unbiased.
fn min_ns(passes: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..passes {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// One legalized loop readied for the executors: body, fixture inputs,
/// compiled artifact, and whether translation mapped it (schedule order)
/// or it fell back to topological order.
struct Prepped {
    body: LoopBody,
    inputs: Inputs,
    exe: ExecutableLoop,
    mapped: bool,
}

fn main() {
    let mut apps = veal::workloads::full_suite();
    let max_apps = env_usize("VEAL_BENCH_APPS", usize::MAX);
    apps.truncate(max_apps);
    let trips = env_usize("VEAL_BENCH_TRIPS", 4096).max(1) as u64;
    let reps = env_usize("VEAL_BENCH_REPS", 3).max(1);
    let passes = env_usize("VEAL_BENCH_PASSES", 3).max(1);
    let lanes = env_usize("VEAL_BENCH_LANES", DEFAULT_LANES).max(1);

    let config = AcceleratorConfig::paper_design();
    let spec = CcaSpec::paper();
    let translator = Translator::new(
        config.clone(),
        Some(spec.clone()),
        TranslationPolicy::static_hints(),
    );
    let limits = TransformLimits::default();

    // --- legalize, compile, and differentially verify every loop ---------
    let mut prepped = Vec::new();
    let mut loops_total = 0usize;
    let mut refused = 0usize;
    for app in &apps {
        for (i, l) in app.loops.iter().enumerate() {
            for part in legalize(&l.raw, &limits) {
                loops_total += 1;
                let name = format!("{}#{i} {}", app.name, part.body.name);
                let hints = compute_hints(&part.body, &config, Some(&spec));
                let inputs = fixture_inputs(&part.body);
                let exe = translator.compile_executable(&part.body, &hints);
                match interpret(&part.body.dfg, trips, &inputs) {
                    Ok(golden) => {
                        let exe = match exe {
                            Ok(exe) => exe,
                            Err(e) => {
                                eprintln!(
                                    "bench_exec: {name}: interp runs but LoopVM refused: {e}"
                                );
                                std::process::exit(1);
                            }
                        };
                        // Differential gate: full-result checksums must be
                        // bit-identical across all three arms before any
                        // arm is timed.
                        let want = fold_checksum(&golden);
                        let scalar = fold_checksum(&exe.run(trips, &inputs));
                        let lane = fold_checksum(&exe.run_lanes(trips, &inputs, lanes));
                        if scalar != want || lane != want {
                            eprintln!(
                                "bench_exec: {name}: checksum mismatch \
                                 (interp {want:#018x} loopvm {scalar:#018x} lanes {lane:#018x})"
                            );
                            std::process::exit(1);
                        }
                        let mapped = translator.translate(&part.body, &hints).result.is_ok();
                        prepped.push(Prepped {
                            body: part.body,
                            inputs,
                            exe,
                            mapped,
                        });
                    }
                    Err(InterpError::Opaque(op)) => {
                        // The interpreter refuses opaque bodies; LoopVM
                        // must refuse identically, at the same node.
                        refused += 1;
                        match exe {
                            Err(CompileError::Opaque(o)) if o == op => {}
                            other => {
                                eprintln!(
                                    "bench_exec: {name}: interp refused at {op} but LoopVM \
                                     returned {other:?}"
                                );
                                std::process::exit(1);
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("bench_exec: {name}: interpreter error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    let mapped = prepped.iter().filter(|p| p.mapped).count();
    let (serial, vector) = prepped
        .iter()
        .map(|p| p.exe.lane_stats())
        .fold((0, 0), |(s, v), (ps, pv)| (s + ps, v + pv));
    println!(
        "bench_exec: {} apps, {loops_total} legalized loops ({} executable, {refused} opaque, \
         {mapped} mapped), {trips} trips, {reps} reps, best of {passes} passes, W={lanes}, \
         lane plan {vector} vector / {serial} serial instrs",
        apps.len(),
        prepped.len(),
    );

    // --- timed arms ------------------------------------------------------
    let mut interp_ns = 0u128;
    let mut loopvm_ns = 0u128;
    let mut lanes_ns = 0u128;
    for p in &prepped {
        interp_ns += min_ns(passes, || {
            for _ in 0..reps {
                std::hint::black_box(interpret(&p.body.dfg, trips, &p.inputs).unwrap());
            }
        });
        loopvm_ns += min_ns(passes, || {
            for _ in 0..reps {
                std::hint::black_box(p.exe.run(trips, &p.inputs));
            }
        });
        lanes_ns += min_ns(passes, || {
            for _ in 0..reps {
                std::hint::black_box(p.exe.run_lanes(trips, &p.inputs, lanes));
            }
        });
    }

    let ms = |ns: u128| ns as f64 / 1e6;
    let loopvm_speedup = ms(interp_ns) / ms(loopvm_ns).max(1e-9);
    let lanes_speedup = ms(interp_ns) / ms(lanes_ns).max(1e-9);
    println!(
        "interp  : {:>9.1} ms\nloopvm  : {:>9.1} ms  ({loopvm_speedup:.2}x)\n\
         lanes(W={lanes}): {:>9.1} ms  ({lanes_speedup:.2}x)",
        ms(interp_ns),
        ms(loopvm_ns),
        ms(lanes_ns)
    );
    println!("outputs : checksums bit-identical across all three arms");

    let json = format!(
        "{{\n  \"suite\": \"full\",\n  \"apps\": {},\n  \"loops_legalized\": {loops_total},\n  \
         \"loops_executable\": {},\n  \"loops_opaque\": {refused},\n  \"loops_mapped\": {mapped},\n  \
         \"trips\": {trips},\n  \"reps\": {reps},\n  \"passes\": {passes},\n  \
         \"lane_width\": {lanes},\n  \"interp_ms\": {:.3},\n  \"loopvm_ms\": {:.3},\n  \
         \"lanes_ms\": {:.3},\n  \"loopvm_speedup\": {loopvm_speedup:.3},\n  \
         \"lanes_speedup\": {lanes_speedup:.3},\n  \"checksums_identical\": true\n}}\n",
        apps.len(),
        prepped.len(),
        ms(interp_ns),
        ms(loopvm_ns),
        ms(lanes_ns),
    );
    if let Err(e) = std::fs::write("BENCH_exec.json", json) {
        eprintln!("bench_exec: failed to write BENCH_exec.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_exec.json");
    if let Some(floor) = std::env::var("VEAL_BENCH_MIN_EXEC_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if lanes_speedup < floor {
            eprintln!("bench_exec: lanes_speedup {lanes_speedup:.3} below floor {floor:.3}");
            std::process::exit(1);
        }
        println!("lanes_speedup {lanes_speedup:.3} >= floor {floor:.3}");
    }
}
