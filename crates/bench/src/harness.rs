//! Minimal wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! Each bench target is a plain `fn main()` (`harness = false`) that calls
//! [`bench`] per case. The harness warms the case up, auto-scales the batch
//! size to a ~25 ms measurement window, repeats a few batches, and reports
//! the best (least-noisy) per-iteration time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target duration of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(25);
/// Number of measured batches; the minimum is reported.
const BATCHES: usize = 5;

/// Times `f`, printing `label` and the best observed per-iteration time.
///
/// The closure's result is passed through [`black_box`] so the work is not
/// optimized away. Returns the best per-iteration time in nanoseconds.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm up and size the batch.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_BATCH || iters >= 1 << 24 {
            break;
        }
        // Grow toward the target window without overshooting wildly.
        let grow = if elapsed < TARGET_BATCH / 16 { 8 } else { 2 };
        iters = iters.saturating_mul(grow);
    }

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    println!(
        "{label:<40} {:>12} /iter  ({iters} iters/batch)",
        fmt_ns(best)
    );
    best
}

/// Formats a nanosecond count with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_returns_finite_time() {
        let t = bench("noop", || 1 + 1);
        assert!(t.is_finite() && t >= 0.0);
    }
}
