//! Figure 10: static/dynamic and algorithm tradeoffs for the key mapping
//! stages.

use veal::sim::speedup::cpu_only_cycles;
use veal::{run_application, AccelSetup, CpuModel, TranslationPolicy};

/// Prints the Figure 10 table: whole-application speedup over the 1-issue
/// baseline for six systems — the LA with no translation penalty
/// (statically compiled), fully dynamic translation with the Swing
/// priority, fully dynamic with the height-based priority, static
/// CCA + priority hints, and plain 2-issue / 4-issue CPUs.
pub fn run() {
    let apps = veal::workloads::media_fp_suite();
    let arm = CpuModel::arm11();
    let a8 = CpuModel::cortex_a8();
    let q4 = CpuModel::quad_issue();

    println!("Figure 10: whole-application speedup over the 1-issue baseline");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "no-cost", "dynamic", "height", "static", "2-issue", "4-issue"
    );
    crate::rule(72);
    let mut sums = [0.0f64; 6];
    for app in &apps {
        let native = run_application(app, &arm, &AccelSetup::native());
        let dynamic = run_application(
            app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        let height = run_application(
            app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic_height()),
        );
        let hinted = run_application(
            app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::static_hints()),
        );
        let base = native.cpu_only_cycles as f64;
        let vals = [
            native.speedup(),
            dynamic.speedup(),
            height.speedup(),
            hinted.speedup(),
            base / cpu_only_cycles(app, &a8) as f64,
            base / cpu_only_cycles(app, &q4) as f64,
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            app.name, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
        );
    }
    crate::rule(72);
    let n = apps.len() as f64;
    println!(
        "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "MEAN",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n
    );
    println!(
        "\n(paper means: 2.76 no-cost / 2.27 fully dynamic / 2.41 height /\n\
         2.66 static hints; wider CPUs trail far behind the LA at greater\n\
         area. Anchors: mpeg2dec and pegwit collapse under fully dynamic\n\
         translation; rawcaudio is insensitive — one hot loop amortizes\n\
         everything; static hints recover nearly all of the native speedup.)"
    );
    let la_area = veal::AcceleratorConfig::paper_design().area().total();
    println!(
        "\narea: ARM11+LA = {:.2} mm2 vs 2-issue {:.1} mm2 vs 4-issue {:.1} mm2",
        arm.area_mm2 + la_area,
        a8.area_mm2,
        q4.area_mm2
    );
}
