//! Figure 5: the worked scheduling example.

use veal::ir::pretty::render_dfg;
use veal::ir::streams::separate;
use veal::sched::{rec_mii, res_mii};
use veal::{AcceleratorConfig, CcaSpec, CostMeter, StaticHints, System, TranslationPolicy};

/// Reproduces the paper's Figure 5 walkthrough: the 15-op loop, stream
/// separation, CCA grouping (ops 5-6-8 → op 16), MII calculation
/// (RecMII 4, ResMII 3), and the modulo reservation table at II 4.
pub fn run() {
    let (body, ids) = veal::figure5_loop();
    println!("Figure 5: scheduling the example loop body");
    println!("(multiplies 3 cycles, CCA 2 cycles, all other ops 1 cycle)\n");
    println!("loop body (op ids are the paper's numbers minus one):");
    print!("{}", render_dfg(&body.dfg));

    let mut meter = CostMeter::new();
    let sep = separate(&body.dfg, &mut meter).expect("figure 5 separates");
    let summary = sep.summary();
    println!(
        "\nseparation: {} load stream(s), {} store stream(s); control slice {:?}",
        summary.loads,
        summary.stores,
        sep.control_ops
            .iter()
            .map(|o| format!("{}", o.index() + 1))
            .collect::<Vec<_>>()
    );

    let mut dfg = sep.dfg;
    let groups = veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
    for g in &groups {
        println!(
            "CCA group (the paper's op 16): ops {:?}",
            g.members.iter().map(|m| m.index() + 1).collect::<Vec<_>>()
        );
    }
    println!("ops 7 and 10 stay out: merging op 7 would lengthen the 4-7 recurrence");

    let la = AcceleratorConfig::paper_design();
    let res = res_mii(&dfg, &la, summary, &mut meter);
    let rec = rec_mii(&dfg, &la.latencies, &mut meter);
    println!(
        "\nResMII = {res} (5 integer ops / 2 units), RecMII = {rec} -> MII = {}",
        res.max(rec)
    );

    let sys = System::paper(TranslationPolicy::fully_dynamic());
    let out = sys.translate_loop(&body, &StaticHints::none());
    let cost = out.cost();
    let t = out.result.expect("figure 5 maps");
    println!("\nmodulo schedule (II = {}):", t.scheduled.schedule.ii);
    println!("{}", t.scheduled.schedule);
    println!(
        "op 10 is scheduled in stage {} (the paper shades it gray: one stage\n\
         later than the rest of the kernel)",
        t.scheduled
            .schedule
            .stage(ids.add10)
            .expect("op 10 scheduled")
    );
    println!("translation cost: {cost} abstract instructions");
}
