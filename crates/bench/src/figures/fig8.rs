//! Figure 8: the measured translation penalty per loop.

use veal::{run_application, AccelSetup, CpuModel, Phase, TranslationPolicy};
use veal_ir::PhaseBreakdown;

/// Prints the Figure 8 table: per benchmark, the average abstract
/// instructions needed to translate one loop under the fully dynamic
/// policy, split by translation phase.
pub fn run() {
    let apps = veal::workloads::media_fp_suite();
    let cpu = CpuModel::arm11();
    let setup = AccelSetup::paper(TranslationPolicy::fully_dynamic());

    println!("Figure 8: translation penalty per loop (abstract instructions)");
    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "avg/loop", "prio", "cca", "sched", "mii", "other"
    );
    crate::rule(66);
    let mut total = PhaseBreakdown::default();
    let mut translations = 0u64;
    for app in &apps {
        let run = run_application(app, &cpu, &setup);
        let b = run.breakdown;
        let avg = b.total() as f64 / run.translations.max(1) as f64;
        let f = |p: Phase| format!("{:5.1}%", 100.0 * b.fraction(p));
        let mii = b.fraction(Phase::ResMii) + b.fraction(Phase::RecMii);
        let other = b.fraction(Phase::LoopIdent)
            + b.fraction(Phase::StreamSep)
            + b.fraction(Phase::RegAssign)
            + b.fraction(Phase::HintDecode);
        println!(
            "{:<14} {:>9.0} {:>7} {:>7} {:>7} {:>6.1}% {:>6.1}%",
            app.name,
            avg,
            f(Phase::Priority),
            f(Phase::CcaMapping),
            f(Phase::Scheduling),
            100.0 * mii,
            100.0 * other
        );
        total.merge(&b);
        translations += run.translations;
    }
    crate::rule(66);
    let avg = total.total() as f64 / translations.max(1) as f64;
    println!(
        "{:<14} {:>9.0} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
        "SUITE",
        avg,
        100.0 * total.fraction(Phase::Priority),
        100.0 * total.fraction(Phase::CcaMapping),
        100.0 * total.fraction(Phase::Scheduling),
        100.0 * (total.fraction(Phase::ResMii) + total.fraction(Phase::RecMii)),
        100.0
            * (total.fraction(Phase::LoopIdent)
                + total.fraction(Phase::StreamSep)
                + total.fraction(Phase::RegAssign)
                + total.fraction(Phase::HintDecode))
    );
    println!(
        "\n(paper: ~99.7k instructions per loop on average, 69% in priority\n\
         computation and 20% in CCA mapping — the two phases VEAL therefore\n\
         moves into the static compiler; this reproduction lands at ~90k\n\
         with priority even more dominant because its loop population\n\
         collapses more work into the CCA)"
    );

    // Per-benchmark variance, the paper's other observation.
    let mut costs: Vec<(String, f64)> = apps
        .iter()
        .map(|app| {
            let run = run_application(app, &cpu, &setup);
            (
                app.name.clone(),
                run.breakdown.total() as f64 / run.translations.max(1) as f64,
            )
        })
        .collect();
    costs.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nper-loop cost varies {}x across benchmarks (cheapest {} at {:.0},\n\
         priciest {} at {:.0}) — loop size drives the variance",
        (costs[0].1 / costs[costs.len() - 1].1).round(),
        costs[costs.len() - 1].0,
        costs[costs.len() - 1].1,
        costs[0].0,
        costs[0].1,
    );
}
