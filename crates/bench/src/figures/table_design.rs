//! The §3.2 design-point table: configuration, area budget, and the
//! fraction of infinite-resource speedup it attains.

use veal::sim::dse::{fraction_of_infinite, mean_speedup};
use veal::{AcceleratorConfig, CcaSpec, CpuModel};

/// Prints the design-point summary of paper §3.2.
pub fn run() {
    let la = AcceleratorConfig::paper_design();
    println!("Section 3.2: the generalized loop accelerator design point\n");
    println!("configuration: {la}");

    println!("\ndie area (90 nm):");
    println!("{}", la.area());
    println!(
        "  (paper: ~3.8 mm2 total, 2.38 mm2 in the two double-precision\n\
         FPUs; an ARM 11 is {:.2} mm2, a Cortex A8 ~{:.1} mm2 — the LA\n\
         costs less than a second simple core)",
        veal::accel::ARM11_AREA_MM2,
        veal::accel::CORTEX_A8_AREA_MM2
    );

    let apps = veal::workloads::media_fp_suite();
    let cpu = CpuModel::arm11();
    let fraction = fraction_of_infinite(&apps, &cpu, &la, Some(&CcaSpec::paper()));
    let finite = mean_speedup(&apps, &cpu, &la, Some(&CcaSpec::paper()));
    let infinite = mean_speedup(
        &apps,
        &cpu,
        &AcceleratorConfig::infinite(),
        Some(&CcaSpec::paper()),
    );
    println!(
        "\nmean speedup: {finite:.2}x (design point) vs {infinite:.2}x (infinite \
         resources)\nfraction of infinite-resource speedup attained: {:.1}%",
        100.0 * fraction
    );
    println!("(paper: the design point attains 83% of the infinite-resource speedup)");
}
