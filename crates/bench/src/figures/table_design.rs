//! The §3.2 design-point table: configuration, area budget, and the
//! fraction of infinite-resource speedup it attains.

use veal::{AcceleratorConfig, CcaSpec, CpuModel, SweepContext};

/// Prints the design-point summary of paper §3.2.
pub fn run() {
    let la = AcceleratorConfig::paper_design();
    println!("Section 3.2: the generalized loop accelerator design point\n");
    println!("configuration: {la}");

    println!("\ndie area (90 nm):");
    println!("{}", la.area());
    println!(
        "  (paper: ~3.8 mm2 total, 2.38 mm2 in the two double-precision\n\
         FPUs; an ARM 11 is {:.2} mm2, a Cortex A8 ~{:.1} mm2 — the LA\n\
         costs less than a second simple core)",
        veal::accel::ARM11_AREA_MM2,
        veal::accel::CORTEX_A8_AREA_MM2
    );

    // One context: both configurations run in parallel across apps, share
    // translations through the memo, and the infinite mean is computed once.
    let ctx = SweepContext::new(veal::workloads::media_fp_suite(), CpuModel::arm11());
    let finite = ctx.mean_speedup(&la, Some(&CcaSpec::paper()));
    let infinite = ctx.infinite_mean();
    let fraction = finite / infinite;
    println!(
        "\nmean speedup: {finite:.2}x (design point) vs {infinite:.2}x (infinite \
         resources)\nfraction of infinite-resource speedup attained: {:.1}%",
        100.0 * fraction
    );
    println!("(paper: the design point attains 83% of the infinite-resource speedup)");
}
