//! Figure 3: execution-resource needs (function units and registers).

use veal::sim::dse::mean_speedup;
use veal::{AcceleratorConfig, CcaSpec, CpuModel};
use veal_workloads::Application;

fn apps() -> Vec<Application> {
    veal::workloads::media_fp_suite()
}

fn infinite_mean(apps: &[Application], cpu: &CpuModel) -> f64 {
    mean_speedup(apps, cpu, &AcceleratorConfig::infinite(), Some(&CcaSpec::paper()))
}

/// Prints both panels of Figure 3: fraction of infinite-resource speedup
/// vs. (a) function units and (b) registers.
pub fn run() {
    let apps = apps();
    let cpu = CpuModel::arm11();
    let infinite = infinite_mean(&apps, &cpu);
    println!("Figure 3(a): fraction of infinite-resource speedup vs #FUs");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "units", "IEx (no CCA)", "IEx + 1 CCA", "FEx"
    );
    crate::rule(46);
    let inf = AcceleratorConfig::infinite();
    for &n in &[1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        // Integer units without a CCA.
        let mut cfg = inf.clone();
        cfg.int_units = n;
        cfg.cca_units = 0;
        let f_int = mean_speedup(&apps, &cpu, &cfg, None) / infinite;
        // Integer units with one CCA.
        let mut cfg = inf.clone();
        cfg.int_units = n;
        cfg.cca_units = 1;
        let f_cca = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        // FP units (CCA present, everything else infinite).
        let f_fp = if n <= 8 {
            let mut cfg = inf.clone();
            cfg.fp_units = n;
            Some(mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite)
        } else {
            None
        };
        match f_fp {
            Some(f) => println!("{n:>6} {f_int:>12.3} {f_cca:>12.3} {f:>10.3}"),
            None => println!("{n:>6} {f_int:>12.3} {f_cca:>12.3} {:>10}", "-"),
        }
    }
    println!(
        "(paper: FEx saturates with very few units; IEx needs ~24 units\n\
         without a CCA, far fewer once one CCA is added)\n"
    );

    println!("Figure 3(b): fraction of infinite-resource speedup vs #registers");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "regs", "integer", "fp", "int + CCA"
    );
    crate::rule(42);
    for &n in &[1usize, 2, 4, 8, 12, 16, 24, 32, 64] {
        let mut cfg = inf.clone();
        cfg.int_regs = n;
        cfg.cca_units = 0;
        let f_int = mean_speedup(&apps, &cpu, &cfg, None) / infinite;
        let mut cfg = inf.clone();
        cfg.fp_regs = n;
        let f_fp = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        let mut cfg = inf.clone();
        cfg.int_regs = n;
        let f_ic = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        println!("{n:>6} {f_int:>10.3} {f_fp:>10.3} {f_ic:>12.3}");
    }
    println!(
        "(paper: few registers support most loops; the CCA reduces the\n\
         integer-register requirement because collapsed temporaries never\n\
         leave the CCA fabric)"
    );
}
