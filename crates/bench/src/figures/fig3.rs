//! Figure 3: execution-resource needs (function units and registers).

use veal::{AcceleratorConfig, CcaSpec, CpuModel, SweepContext};

/// Prints both panels of Figure 3: fraction of infinite-resource speedup
/// vs. (a) function units and (b) registers.
///
/// All rows run on one [`SweepContext`], so the sweep points fan out
/// across worker threads, the per-loop translations are shared through
/// the memo, and the infinite-resource denominator is computed once.
pub fn run() {
    let ctx = SweepContext::new(veal::workloads::media_fp_suite(), CpuModel::arm11());
    let inf = AcceleratorConfig::infinite();
    // Force the shared denominator with the full thread budget before the
    // point-level fan-out pins workers to one thread each.
    let _ = ctx.infinite_mean();

    println!("Figure 3(a): fraction of infinite-resource speedup vs #FUs");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "units", "IEx (no CCA)", "IEx + 1 CCA", "FEx"
    );
    crate::rule(46);
    let unit_counts = [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32];
    let rows = ctx.eval_points(&unit_counts, |c, &n| {
        // Integer units without a CCA.
        let mut cfg = inf.clone();
        cfg.int_units = n;
        cfg.cca_units = 0;
        let f_int = c.fraction_of_infinite(&cfg, None);
        // Integer units with one CCA.
        let mut cfg = inf.clone();
        cfg.int_units = n;
        cfg.cca_units = 1;
        let f_cca = c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()));
        // FP units (CCA present, everything else infinite).
        let f_fp = (n <= 8).then(|| {
            let mut cfg = inf.clone();
            cfg.fp_units = n;
            c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()))
        });
        (f_int, f_cca, f_fp)
    });
    for (&n, (f_int, f_cca, f_fp)) in unit_counts.iter().zip(&rows) {
        match f_fp {
            Some(f) => println!("{n:>6} {f_int:>12.3} {f_cca:>12.3} {f:>10.3}"),
            None => println!("{n:>6} {f_int:>12.3} {f_cca:>12.3} {:>10}", "-"),
        }
    }
    println!(
        "(paper: FEx saturates with very few units; IEx needs ~24 units\n\
         without a CCA, far fewer once one CCA is added)\n"
    );

    println!("Figure 3(b): fraction of infinite-resource speedup vs #registers");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "regs", "integer", "fp", "int + CCA"
    );
    crate::rule(42);
    let reg_counts = [1usize, 2, 4, 8, 12, 16, 24, 32, 64];
    let rows = ctx.eval_points(&reg_counts, |c, &n| {
        let mut cfg = inf.clone();
        cfg.int_regs = n;
        cfg.cca_units = 0;
        let f_int = c.fraction_of_infinite(&cfg, None);
        let mut cfg = inf.clone();
        cfg.fp_regs = n;
        let f_fp = c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()));
        let mut cfg = inf.clone();
        cfg.int_regs = n;
        let f_ic = c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()));
        (f_int, f_fp, f_ic)
    });
    for (&n, (f_int, f_fp, f_ic)) in reg_counts.iter().zip(&rows) {
        println!("{n:>6} {f_int:>10.3} {f_fp:>10.3} {f_ic:>12.3}");
    }
    println!(
        "(paper: few registers support most loops; the CCA reduces the\n\
         integer-register requirement because collapsed temporaries never\n\
         leave the CCA fabric)"
    );
}
