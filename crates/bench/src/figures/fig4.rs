//! Figure 4: memory streams and maximum II requirements.

use veal::{AcceleratorConfig, CcaSpec, CpuModel, SweepContext};

/// Prints both panels of Figure 4: fraction of infinite-resource speedup
/// vs. (a) load/store stream budgets and (b) the maximum supported II.
///
/// Both panels run on one [`SweepContext`]: points evaluate in parallel,
/// translations are memoized across rows, and the infinite-resource
/// denominator is computed once for the whole figure.
pub fn run() {
    let ctx = SweepContext::new(veal::workloads::media_fp_suite(), CpuModel::arm11());
    let inf = AcceleratorConfig::infinite();
    // Force the shared denominator with the full thread budget before the
    // point-level fan-out pins workers to one thread each.
    let _ = ctx.infinite_mean();

    println!("Figure 4(a): fraction of infinite-resource speedup vs #streams");
    println!("{:>8} {:>12} {:>12}", "streams", "load", "store");
    crate::rule(36);
    let stream_counts = [1usize, 2, 4, 6, 8, 12, 16, 24, 32];
    let rows = ctx.eval_points(&stream_counts, |c, &n| {
        // Address generators keep the paper's 4:1 time multiplexing.
        let mut cfg = inf.clone();
        cfg.load_streams = n;
        cfg.load_addr_gens = n.div_ceil(4).max(1);
        let f_load = c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()));
        let mut cfg = inf.clone();
        cfg.store_streams = n;
        cfg.store_addr_gens = n.div_ceil(4).max(1);
        let f_store = c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()));
        (f_load, f_store)
    });
    for (&n, (f_load, f_store)) in stream_counts.iter().zip(&rows) {
        println!("{n:>8} {f_load:>12.3} {f_store:>12.3}");
    }
    println!(
        "(paper: loads matter more than stores; several important loops\n\
         need a large number of streams — hence 16 load / 8 store in the\n\
         design point, with static fission covering the tail)\n"
    );

    println!("Figure 4(b): fraction of infinite-resource speedup vs max II");
    println!("{:>8} {:>12}", "max II", "fraction");
    crate::rule(22);
    let iis = [2u32, 4, 6, 8, 12, 16, 24, 32, 64];
    let rows = ctx.eval_points(&iis, |c, &ii| {
        let mut cfg = inf.clone();
        cfg.max_ii = ii;
        c.fraction_of_infinite(&cfg, Some(&CcaSpec::paper()))
    });
    for (&ii, f) in iis.iter().zip(&rows) {
        println!("{ii:>8} {f:>12.3}");
    }
    println!(
        "(paper: the maximum supported II reflects the longest recurrence\n\
         paths; 16 suffices for the studied loops)"
    );
}
