//! Figure 4: memory streams and maximum II requirements.

use veal::sim::dse::mean_speedup;
use veal::{AcceleratorConfig, CcaSpec, CpuModel};

/// Prints both panels of Figure 4: fraction of infinite-resource speedup
/// vs. (a) load/store stream budgets and (b) the maximum supported II.
pub fn run() {
    let apps = veal::workloads::media_fp_suite();
    let cpu = CpuModel::arm11();
    let inf = AcceleratorConfig::infinite();
    let infinite = mean_speedup(&apps, &cpu, &inf, Some(&CcaSpec::paper()));

    println!("Figure 4(a): fraction of infinite-resource speedup vs #streams");
    println!("{:>8} {:>12} {:>12}", "streams", "load", "store");
    crate::rule(36);
    for &n in &[1usize, 2, 4, 6, 8, 12, 16, 24, 32] {
        // Address generators keep the paper's 4:1 time multiplexing.
        let mut cfg = inf.clone();
        cfg.load_streams = n;
        cfg.load_addr_gens = n.div_ceil(4).max(1);
        let f_load = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        let mut cfg = inf.clone();
        cfg.store_streams = n;
        cfg.store_addr_gens = n.div_ceil(4).max(1);
        let f_store = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        println!("{n:>8} {f_load:>12.3} {f_store:>12.3}");
    }
    println!(
        "(paper: loads matter more than stores; several important loops\n\
         need a large number of streams — hence 16 load / 8 store in the\n\
         design point, with static fission covering the tail)\n"
    );

    println!("Figure 4(b): fraction of infinite-resource speedup vs max II");
    println!("{:>8} {:>12}", "max II", "fraction");
    crate::rule(22);
    for &ii in &[2u32, 4, 6, 8, 12, 16, 24, 32, 64] {
        let mut cfg = inf.clone();
        cfg.max_ii = ii;
        let f = mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper())) / infinite;
        println!("{ii:>8} {f:>12.3}");
    }
    println!(
        "(paper: the maximum supported II reflects the longest recurrence\n\
         paths; 16 suffices for the studied loops)"
    );
}
