//! One module per regenerated table/figure of the paper's evaluation.
//!
//! Each module exposes a `run()` that prints the figure's rows to stdout;
//! the `src/bin/fig*` binaries and `src/bin/all_figures` are thin wrappers.

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table_design;
