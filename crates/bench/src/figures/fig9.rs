//! Figure 9: the binary-compatible static encodings.
//!
//! The paper shows the Figure 5 loop three ways: (a) plain pseudo-assembly,
//! (b) with the CCA subgraph abstracted behind a branch-and-link, and (c)
//! with the scheduling priorities in a data section before the loop. This
//! module prints the same three listings from our binary format.

use veal::ir::asm::to_asm;
use veal::{compute_hints, AcceleratorConfig, BinaryModule, CcaSpec, EncodedLoop};

/// Prints the three encodings of the Figure 5 loop.
pub fn run() {
    let (body, _) = veal::figure5_loop();
    let la = AcceleratorConfig::paper_design();
    let hints = compute_hints(&body, &la, Some(&CcaSpec::paper()));

    println!("Figure 9(a): the loop in the baseline instruction set\n");
    print!("{}", to_asm(&body));

    println!("\nFigure 9(b): CCA subgraphs as procedural abstraction");
    println!("(the VM maps each group onto whatever CCA exists, or runs the");
    println!("ops individually — no compatibility impact)\n");
    if let Some(groups) = &hints.cca_groups {
        for (i, g) in groups.iter().enumerate() {
            let members: Vec<String> = g.iter().map(|m| format!("op{}", m.index() + 1)).collect();
            println!(
                ".cca{i}: brl-abstracted subgraph {{ {} }}",
                members.join(" ")
            );
        }
    }

    println!("\nFigure 9(c): scheduling priority as a data section");
    println!("(one number per op before the loop; the VM recovers each op's");
    println!("priority with a single load at PC - n*instruction_size)\n");
    if let Some(order) = &hints.priority {
        for (rank, op) in order.iter().enumerate() {
            println!(".word {rank:2}   ; scheduling rank of node {}", op.index());
        }
    }

    // The whole thing round-trips through the module format.
    let module = BinaryModule {
        loops: vec![EncodedLoop {
            body,
            priority_hint: hints.priority,
            cca_hint: hints.cca_groups,
            family_hint: None,
        }],
    };
    let bytes = veal::encode_module(&module);
    let back = veal::decode_module(&bytes).expect("round trips");
    println!(
        "\nencoded module: {} bytes; decodes to {} loop(s) with hints intact",
        bytes.len(),
        back.loops.len()
    );
    println!(
        "a hint-ignoring consumer sees the identical loop — the encodings\n\
         are advisory, which is the binary-compatibility property of §4.2"
    );
}
