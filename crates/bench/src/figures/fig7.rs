//! Figure 7: the importance of static loop transformations.

use crate::{bar, pct};
use veal::{run_application, AccelSetup, CpuModel, TranslationPolicy};

/// Prints the Figure 7 table: per benchmark, the fraction of the
/// accelerator's speedup *benefit* attained when the binary is compiled
/// normally (no inlining / predication / re-rolling / fission) relative to
/// the transformed binary. Both runs are translation-free, isolating the
/// transformations.
pub fn run() {
    let apps = veal::workloads::media_fp_suite();
    let cpu = CpuModel::arm11();
    let with = AccelSetup {
        translation_free: true,
        ..AccelSetup::paper(TranslationPolicy::static_hints())
    };
    let without = AccelSetup {
        static_transforms: false,
        ..with.clone()
    };

    println!("Figure 7: speedup attained without static loop transformations");
    println!(
        "{:<14} {:>9} {:>9} {:>9}  (benefit retained)",
        "benchmark", "with", "without", "fraction"
    );
    crate::rule(64);
    let mut sum = 0.0f64;
    for app in &apps {
        let s_with = run_application(app, &cpu, &with).speedup();
        let s_without = run_application(app, &cpu, &without).speedup();
        let fraction = if s_with > 1.0 {
            ((s_without - 1.0) / (s_with - 1.0)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        sum += fraction;
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>9}  {}",
            app.name,
            s_with,
            s_without,
            pct(fraction),
            bar(fraction, 1.0, 20)
        );
    }
    crate::rule(64);
    let mean = sum / apps.len() as f64;
    println!("{:<14} {:>29}", "MEAN", pct(mean));
    println!(
        "\n(paper: on average, skipping the transformations forfeits ~75% of\n\
         the accelerator's benefit, and many benchmarks keep none of it —\n\
         the runtime system cannot retarget their loops without proactive\n\
         compiler help)"
    );
}
