//! Ablation studies for the design choices DESIGN.md calls out: the CCA
//! mapper's greediness, the code-cache size, the priority function, and
//! the accelerator template against related-work configurations.

use veal::{
    run_application, AccelSetup, AcceleratorConfig, CcaSpec, CostMeter, CpuModel, SweepContext,
    TranslationPolicy,
};
use veal_workloads::kernels;

/// Runs all four ablations and prints their tables.
pub fn run() {
    greedy_vs_optimal_cca();
    cache_size_sweep();
    priority_quality();
    related_work_configs();
}

/// How much coverage does the greedy seed-and-grow mapper give up against
/// the exhaustive mapper on small kernels? (The paper accepts the greedy
/// algorithm "to keep runtime overheads low"; this quantifies the cost.)
fn greedy_vs_optimal_cca() {
    println!("Ablation A: greedy vs optimal CCA coverage (small kernels)");
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "kernel", "candidates", "greedy", "optimal"
    );
    crate::rule(50);
    let spec = CcaSpec::paper();
    let bodies = [
        kernels::quantize(),
        kernels::viterbi_acs(),
        kernels::stencil3(),
        kernels::bit_unpack(),
        kernels::adpcm_step(),
    ];
    for body in &bodies {
        let sep = veal::ir::streams::separate(&body.dfg, &mut CostMeter::new()).unwrap();
        let dfg = sep.dfg;
        let candidates = dfg
            .schedulable_ops()
            .filter(|&id| dfg.node(id).opcode().is_some_and(|o| o.cca_supported()))
            .count();
        let greedy = veal::cca::identify_groups(&dfg, &spec, &mut CostMeter::new());
        let optimal = veal::cca::optimal_groups(&dfg, &spec, &mut CostMeter::new());
        match optimal {
            Some(opt) => println!(
                "{:<16} {:>10} {:>10} {:>10}",
                body.name,
                candidates,
                veal::cca::coverage(&greedy),
                veal::cca::coverage(&opt)
            ),
            None => println!(
                "{:<16} {:>10} {:>10} {:>10}",
                body.name,
                candidates,
                veal::cca::coverage(&greedy),
                "(too big)"
            ),
        }
    }
    println!();
}

/// Figure 6's other axis made concrete: drive an interleaved (per-frame)
/// invocation trace through a VM session and shrink the code cache until
/// retranslation thrashes. The whole-app engine invokes loops in bursts,
/// which any cache survives; a frame loop cycles through every hot loop
/// each frame, which is the case the paper's 16-entry sizing addresses.
fn cache_size_sweep() {
    use veal::sim::{FrameTrace, TraceLoop};
    use veal::vm::{CodeCache, VmSession};
    use veal::{StaticHints, Translator};

    println!("Ablation B: code-cache capacity (interleaved mpeg2dec frame loop)");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "entries", "translations", "trans cycles", "hit rate"
    );
    crate::rule(52);
    let app = veal::workloads::application("mpeg2dec").unwrap();
    let limits = veal::TransformLimits::default();
    // The distinct hot loops of one frame, in frame order.
    let trace = FrameTrace {
        loops: app
            .loops
            .iter()
            .flat_map(|l| veal::legalize(&l.raw, &limits))
            .enumerate()
            .map(|(key, p)| TraceLoop {
                key: key as u64,
                body: p.body,
                trips: 16,
                hints: StaticHints::none(),
            })
            .collect(),
        frames: 40,
    };
    let cpu = CpuModel::arm11();
    for entries in [1usize, 2, 4, 8, 16, 32] {
        let translator = Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::fully_dynamic(),
        );
        let mut session = VmSession::with_cache(translator, CodeCache::new(entries));
        let run = trace.run(&mut session, &cpu);
        println!(
            "{:>8} {:>14} {:>14} {:>9.1}%",
            entries,
            run.translations,
            run.translation_cycles,
            100.0 * session.cache_stats().hit_rate()
        );
    }
    println!("(paper §4.3: 16 entries ≈ 48 KB sufficed for ~100% hit rates)\n");
}

/// Schedule quality per priority function, isolated from translation cost
/// (both run translation-free).
fn priority_quality() {
    println!("Ablation C: priority function, translation declared free");
    println!("{:<14} {:>10} {:>10}", "benchmark", "swing", "height");
    crate::rule(38);
    let cpu = CpuModel::arm11();
    let names = ["gsmencode", "056.ear", "mpeg2dec", "171.swim"];
    // Independent (app, priority) runs fan out across the worker threads.
    let rows = veal_par::par_map(&names, |_, name| {
        let app = veal::workloads::application(name).unwrap();
        let swing = AccelSetup {
            translation_free: true,
            ..AccelSetup::paper(TranslationPolicy::fully_dynamic())
        };
        let height = AccelSetup {
            translation_free: true,
            ..AccelSetup::paper(TranslationPolicy::fully_dynamic_height())
        };
        (
            run_application(&app, &cpu, &swing).speedup(),
            run_application(&app, &cpu, &height).speedup(),
        )
    });
    for (name, (swing, height)) in names.iter().zip(&rows) {
        println!("{name:<14} {swing:>10.2} {height:>10.2}");
    }
    println!(
        "(with cost removed, Swing's lifetime-sensitive schedules win or\n\
         tie everywhere — height's advantage in Figure 10 is purely its\n\
         cheaper translation)\n"
    );
}

/// The paper's template against its related-work citations, priced.
fn related_work_configs() {
    println!("Ablation D: accelerator templates (translation-free means)");
    println!("{:<26} {:>9} {:>9}", "configuration", "speedup", "mm2");
    crate::rule(46);
    let ctx = SweepContext::new(veal::workloads::media_fp_suite(), CpuModel::arm11());
    let rows: [(&str, AcceleratorConfig, Option<CcaSpec>); 4] = [
        (
            "paper design point",
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
        ),
        ("RSVP-like (3 ld/1 st)", veal::accel::rsvp_like(), None),
        (
            "Mathew-Davis-like (6 str)",
            veal::accel::mathew_davis_like(),
            None,
        ),
        (
            "2x design point",
            veal::accel::scaled_design(2),
            Some(CcaSpec::paper()),
        ),
    ];
    // The four templates evaluate in parallel over the shared memo.
    let speedups = ctx.eval_points(&rows, |c, (_, cfg, cca)| c.mean_speedup(cfg, cca.as_ref()));
    for ((name, cfg, _), s) in rows.iter().zip(&speedups) {
        println!("{:<26} {:>8.2}x {:>9.2}", name, s, cfg.area().total());
    }
    println!(
        "(the design point dominates the cited templates — mostly via the\n\
         dual FPUs and the 16-load-stream budget — and doubling it buys\n\
         little: the paper's §3.2 claim)"
    );
}
