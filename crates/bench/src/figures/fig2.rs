//! Figure 2: percent of execution time spent in various types of code.

use crate::pct;
use veal::{AccelSetup, CpuModel, TranslationPolicy};

/// Prints the Figure 2 table: per benchmark, the fraction of baseline
/// execution time in modulo-schedulable loops, loops needing speculation
/// support, loops with non-inlinable subroutine calls, and acyclic code.
pub fn run() {
    println!("Figure 2: percent of execution time by code type");
    println!(
        "{:<14} {:>10} {:>12} {:>11} {:>9}",
        "benchmark", "mod-sched", "speculation", "subroutine", "acyclic"
    );
    crate::rule(60);
    let cpu = CpuModel::arm11();
    // Classification reflects the statically transformed binary (the form
    // the paper's compiler emits), with translation declared free.
    let setup = AccelSetup {
        translation_free: true,
        ..AccelSetup::paper(TranslationPolicy::static_hints())
    };
    let mut mean = [0.0f64; 4];
    let mut media_sched = 0.0f64;
    let mut media_n = 0usize;
    let apps = veal::workloads::full_suite();
    for app in &apps {
        let run = veal::run_application(app, &cpu, &setup);
        let classes = run.class_cycles();
        let total: u64 = classes.iter().sum::<u64>().max(1);
        let frac: Vec<f64> = classes.iter().map(|&c| c as f64 / total as f64).collect();
        println!(
            "{:<14} {:>10} {:>12} {:>11} {:>9}",
            app.name,
            pct(frac[0]),
            pct(frac[1]),
            pct(frac[2]),
            pct(frac[3])
        );
        for (m, f) in mean.iter_mut().zip(&frac) {
            *m += f;
        }
        if app.media_fp {
            media_sched += frac[0];
            media_n += 1;
        }
    }
    crate::rule(60);
    let n = apps.len() as f64;
    println!(
        "{:<14} {:>10} {:>12} {:>11} {:>9}",
        "MEAN",
        pct(mean[0] / n),
        pct(mean[1] / n),
        pct(mean[2] / n),
        pct(mean[3] / n)
    );
    println!(
        "media/FP subset mean modulo-schedulable time: {}",
        pct(media_sched / media_n.max(1) as f64)
    );
    println!(
        "(paper: media/FP apps spend the vast majority of time in modulo-\n\
         schedulable loops; SPECint apps are dominated by speculation/acyclic)"
    );
}
