//! Figure 6: speedup vs translation overhead per loop.

use veal::sim::overhead::{overhead_sweep, Recurrence};
use veal::CpuModel;

/// Prints the Figure 6 surface: mean speedup across the media/FP suite as
/// the per-loop translation penalty varies, one column per retranslation
/// frequency.
pub fn run() {
    let apps = veal::workloads::media_fp_suite();
    let cpu = CpuModel::arm11();
    let penalties: Vec<u64> = vec![
        0, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
    ];
    let recurrences = [
        Recurrence::Once,
        Recurrence::MissRate(0.001),
        Recurrence::MissRate(0.01),
        Recurrence::MissRate(0.10),
    ];
    let points = overhead_sweep(&apps, &cpu, &penalties, &recurrences);

    println!("Figure 6: mean speedup vs per-loop translation penalty");
    print!("{:>10}", "penalty");
    for r in &recurrences {
        print!(" {:>16}", r.label());
    }
    println!();
    crate::rule(10 + 17 * recurrences.len());
    for &p in &penalties {
        print!("{p:>10}");
        for r in &recurrences {
            let pt = points
                .iter()
                .find(|x| x.penalty == p && x.recurrence == *r)
                .expect("sweep point");
            print!(" {:>16.2}", pt.mean_speedup);
        }
        println!();
    }
    // The paper's headline delta: at a 1% miss rate, dropping the penalty
    // from 100k to 20k cycles raises the mean speedup substantially
    // (1.47 -> 1.92 in the paper).
    let at = |p: u64| {
        points
            .iter()
            .find(|x| x.penalty == p && x.recurrence == Recurrence::MissRate(0.01))
            .map(|x| x.mean_speedup)
            .unwrap_or(0.0)
    };
    println!(
        "\nat 1% miss rate: 100k-cycle penalty -> {:.2}x, 20k -> {:.2}x\n\
         (paper: 1.47 -> 1.92; driving translation cost down pays)",
        at(100_000),
        at(20_000)
    );
}
