//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index); this
//! library holds the bits they share: ASCII bar rendering and table
//! formatting.

pub mod figures;
pub mod harness;

/// Renders a horizontal ASCII bar of proportional width.
///
/// # Example
///
/// ```
/// assert_eq!(veal_bench::bar(2.0, 4.0, 8), "####");
/// assert_eq!(veal_bench::bar(4.0, 4.0, 8), "########");
/// ```
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Renders a fraction in `0.00`..`1.00` as a percentage cell.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", 100.0 * fraction)
}

/// Prints a horizontal rule sized for `width` columns.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_to_width() {
        assert_eq!(bar(10.0, 4.0, 8).len(), 8);
        assert_eq!(bar(0.0, 4.0, 8), "");
        assert_eq!(bar(1.0, 0.0, 8), "");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }
}
