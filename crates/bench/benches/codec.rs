//! Benchmarks for the binary module codec: the cost of shipping loops (and
//! their Figure 9 hint sections) through the VEAL binary format.

use criterion::{criterion_group, criterion_main, Criterion};
use veal::{
    compute_hints, decode_module, encode_module, AcceleratorConfig, BinaryModule, CcaSpec,
    EncodedLoop,
};
use veal_workloads::kernels;

fn module(with_hints: bool) -> BinaryModule {
    let la = AcceleratorConfig::paper_design();
    let bodies = vec![
        kernels::adpcm_step(),
        kernels::idct_row(),
        kernels::fir(8),
        kernels::crypto_round(4),
        kernels::swim_stencil(),
        kernels::viterbi_acs(),
    ];
    BinaryModule {
        loops: bodies
            .into_iter()
            .map(|body| {
                let hints = if with_hints {
                    compute_hints(&body, &la, Some(&CcaSpec::paper()))
                } else {
                    veal::StaticHints::none()
                };
                EncodedLoop {
                    body,
                    priority_hint: hints.priority,
                    cca_hint: hints.cca_groups,
                }
            })
            .collect(),
    }
}

fn bench_codec(c: &mut Criterion) {
    for (label, with_hints) in [("plain", false), ("hinted", true)] {
        let m = module(with_hints);
        let bytes = encode_module(&m);
        c.bench_function(&format!("encode/{label}"), |b| b.iter(|| encode_module(&m)));
        c.bench_function(&format!("decode/{label}"), |b| {
            b.iter(|| decode_module(&bytes).expect("valid module"))
        });
    }
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
