//! Benchmarks for the binary module codec: the cost of shipping loops (and
//! their Figure 9 hint sections) through the VEAL binary format.

use veal::{
    compute_hints, decode_module, encode_module, AcceleratorConfig, BinaryModule, CcaSpec,
    EncodedLoop,
};
use veal_bench::harness::bench;
use veal_workloads::kernels;

fn module(with_hints: bool) -> BinaryModule {
    let la = AcceleratorConfig::paper_design();
    let family_hint = with_hints.then(|| veal::AcceleratorFamily::point(&la).fingerprint());
    let bodies = vec![
        kernels::adpcm_step(),
        kernels::idct_row(),
        kernels::fir(8),
        kernels::crypto_round(4),
        kernels::swim_stencil(),
        kernels::viterbi_acs(),
    ];
    BinaryModule {
        loops: bodies
            .into_iter()
            .map(|body| {
                let hints = if with_hints {
                    compute_hints(&body, &la, Some(&CcaSpec::paper()))
                } else {
                    veal::StaticHints::none()
                };
                EncodedLoop {
                    body,
                    priority_hint: hints.priority,
                    cca_hint: hints.cca_groups,
                    family_hint,
                }
            })
            .collect(),
    }
}

fn main() {
    for (label, with_hints) in [("plain", false), ("hinted", true)] {
        let m = module(with_hints);
        let bytes = encode_module(&m);
        bench(&format!("encode/{label}"), || encode_module(&m));
        bench(&format!("decode/{label}"), || {
            decode_module(&bytes).expect("valid module")
        });
    }
}
