//! Benchmarks for the timing simulator: per-loop CPU scoreboard timing and
//! whole-application runs (the machinery every figure binary drives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use veal::{run_application, AccelSetup, CpuModel, TranslationPolicy};
use veal_workloads::kernels;

fn bench_loop_timing(c: &mut Criterion) {
    let bodies = [
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("mgrid27", kernels::mgrid_resid(27)),
    ];
    let mut g = c.benchmark_group("cpu_loop_cycles");
    for cpu in [CpuModel::arm11(), CpuModel::quad_issue()] {
        for (name, body) in &bodies {
            g.bench_with_input(
                BenchmarkId::new(cpu.name, name),
                body,
                |b, body| b.iter(|| cpu.loop_cycles_per_iter(&body.dfg)),
            );
        }
    }
    g.finish();
}

fn bench_app_run(c: &mut Criterion) {
    let cpu = CpuModel::arm11();
    let mut g = c.benchmark_group("run_application");
    g.sample_size(10);
    for name in ["rawcaudio", "mpeg2dec"] {
        let app = veal::workloads::application(name).expect("suite app");
        g.bench_function(BenchmarkId::new("native", name), |b| {
            b.iter(|| run_application(&app, &cpu, &AccelSetup::native()))
        });
        g.bench_function(BenchmarkId::new("fully_dynamic", name), |b| {
            b.iter(|| {
                run_application(
                    &app,
                    &cpu,
                    &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loop_timing, bench_app_run);
criterion_main!(benches);
