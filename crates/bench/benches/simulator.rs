//! Benchmarks for the timing simulator: per-loop CPU scoreboard timing and
//! whole-application runs (the machinery every figure binary drives).

use veal::{run_application, AccelSetup, CpuModel, TranslationPolicy};
use veal_bench::harness::bench;
use veal_workloads::kernels;

fn bench_loop_timing() {
    let bodies = [
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("mgrid27", kernels::mgrid_resid(27)),
    ];
    for cpu in [CpuModel::arm11(), CpuModel::quad_issue()] {
        for (name, body) in &bodies {
            bench(&format!("cpu_loop_cycles/{}/{name}", cpu.name), || {
                cpu.loop_cycles_per_iter(&body.dfg)
            });
        }
    }
}

fn bench_app_run() {
    let cpu = CpuModel::arm11();
    for name in ["rawcaudio", "mpeg2dec"] {
        let app = veal::workloads::application(name).expect("suite app");
        bench(&format!("run_application/native/{name}"), || {
            run_application(&app, &cpu, &AccelSetup::native())
        });
        bench(&format!("run_application/fully_dynamic/{name}"), || {
            run_application(
                &app,
                &cpu,
                &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
            )
        });
    }
}

fn main() {
    bench_loop_timing();
    bench_app_run();
}
