//! Wall-clock analogue of the paper's Figure 8: how long the VM's
//! translator actually takes per loop, per policy.
//!
//! The paper measured translation in x86 instructions via OProfile; here
//! Criterion measures the real host time of this implementation, so the
//! *ratios* between policies (fully dynamic vs. hinted) and between loop
//! sizes are the meaningful output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use veal::{
    compute_hints, AcceleratorConfig, CcaSpec, StaticHints, TranslationPolicy, Translator,
};
use veal_workloads::kernels;

fn translators() -> (Translator, Translator, Translator) {
    let la = AcceleratorConfig::paper_design();
    let cca = CcaSpec::paper();
    (
        Translator::new(la.clone(), Some(cca.clone()), TranslationPolicy::fully_dynamic()),
        Translator::new(
            la.clone(),
            Some(cca.clone()),
            TranslationPolicy::fully_dynamic_height(),
        ),
        Translator::new(la, Some(cca), TranslationPolicy::static_hints()),
    )
}

fn bench_policies(c: &mut Criterion) {
    let (dynamic, height, hinted) = translators();
    let la = AcceleratorConfig::paper_design();
    let bodies = [
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("crypto4", kernels::crypto_round(4)),
        ("swim_stencil", kernels::swim_stencil()),
    ];
    let mut g = c.benchmark_group("translate");
    for (name, body) in &bodies {
        let hints = compute_hints(body, &la, Some(&CcaSpec::paper()));
        g.bench_with_input(BenchmarkId::new("fully_dynamic", name), body, |b, body| {
            b.iter(|| dynamic.translate(body, &StaticHints::none()))
        });
        g.bench_with_input(BenchmarkId::new("height", name), body, |b, body| {
            b.iter(|| height.translate(body, &StaticHints::none()))
        });
        g.bench_with_input(BenchmarkId::new("static_hints", name), body, |b, body| {
            b.iter(|| hinted.translate(body, &hints))
        });
    }
    g.finish();
}

fn bench_hint_generation(c: &mut Criterion) {
    // The *static* compiler's side of the bargain.
    let la = AcceleratorConfig::paper_design();
    let body = kernels::idct_row();
    c.bench_function("compute_hints/idct_row", |b| {
        b.iter(|| compute_hints(&body, &la, Some(&CcaSpec::paper())))
    });
}

criterion_group!(benches, bench_policies, bench_hint_generation);
criterion_main!(benches);
