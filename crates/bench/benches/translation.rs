//! Wall-clock analogue of the paper's Figure 8: how long the VM's
//! translator actually takes per loop, per policy.
//!
//! The paper measured translation in x86 instructions via OProfile; here
//! we measure the real host time of this implementation, so the *ratios*
//! between policies (fully dynamic vs. hinted) and between loop sizes are
//! the meaningful output.

use veal::{compute_hints, AcceleratorConfig, CcaSpec, StaticHints, TranslationPolicy, Translator};
use veal_bench::harness::bench;
use veal_workloads::kernels;

fn translators() -> (Translator, Translator, Translator) {
    let la = AcceleratorConfig::paper_design();
    let cca = CcaSpec::paper();
    (
        Translator::new(
            la.clone(),
            Some(cca.clone()),
            TranslationPolicy::fully_dynamic(),
        ),
        Translator::new(
            la.clone(),
            Some(cca.clone()),
            TranslationPolicy::fully_dynamic_height(),
        ),
        Translator::new(la, Some(cca), TranslationPolicy::static_hints()),
    )
}

fn bench_policies() {
    let (dynamic, height, hinted) = translators();
    let la = AcceleratorConfig::paper_design();
    let bodies = [
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("crypto4", kernels::crypto_round(4)),
        ("swim_stencil", kernels::swim_stencil()),
    ];
    for (name, body) in &bodies {
        let hints = compute_hints(body, &la, Some(&CcaSpec::paper()));
        bench(&format!("translate/fully_dynamic/{name}"), || {
            dynamic.translate(body, &StaticHints::none())
        });
        bench(&format!("translate/height/{name}"), || {
            height.translate(body, &StaticHints::none())
        });
        bench(&format!("translate/static_hints/{name}"), || {
            hinted.translate(body, &hints)
        });
    }
}

fn bench_hint_generation() {
    // The *static* compiler's side of the bargain.
    let la = AcceleratorConfig::paper_design();
    let body = kernels::idct_row();
    bench("compute_hints/idct_row", || {
        compute_hints(&body, &la, Some(&CcaSpec::paper()))
    });
}

fn main() {
    bench_policies();
    bench_hint_generation();
}
