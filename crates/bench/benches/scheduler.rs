//! Micro-benchmarks for the modulo scheduler's phases: MinDist (the Θ(n³)
//! priority core), the Swing vs. height orderings, and list scheduling —
//! the per-phase picture behind Figure 8, in wall-clock terms.

use veal::ir::streams::separate;
use veal::sched::{height_order, list_schedule, rec_mii, res_mii, swing_order, MinDist};
use veal::{AcceleratorConfig, CcaSpec, CostMeter, Dfg};
use veal_bench::harness::bench;
use veal_ir::streams::StreamSummary;
use veal_workloads::{synth_loop, SynthSpec};

fn prepared(ops: usize) -> (Dfg, StreamSummary) {
    let body = synth_loop(&SynthSpec {
        seed: 42,
        compute_ops: ops,
        fp_frac: 0.0,
        loads: 4,
        stores: 1,
        recurrences: 1,
        rec_distance: 1 + ops as u32 / 8,
    });
    let sep = separate(&body.dfg, &mut CostMeter::new()).expect("separates");
    let summary = sep.summary();
    let mut dfg = sep.dfg;
    veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut CostMeter::new());
    (dfg, summary)
}

fn bench_mindist() {
    let la = AcceleratorConfig::paper_design();
    for ops in [16usize, 32, 64] {
        let (dfg, _) = prepared(ops);
        bench(&format!("mindist/{ops}"), || {
            MinDist::compute(&dfg, &la.latencies, 4, &mut CostMeter::new())
        });
    }
}

fn bench_orderings() {
    let la = AcceleratorConfig::paper_design();
    let (dfg, _) = prepared(40);
    bench("order/swing", || {
        swing_order(&dfg, &la.latencies, 4, &mut CostMeter::new())
    });
    bench("order/height", || {
        height_order(&dfg, &la.latencies, &mut CostMeter::new())
    });
}

fn bench_list_schedule() {
    let la = AcceleratorConfig::paper_design();
    let (dfg, summary) = prepared(40);
    let mii = res_mii(&dfg, &la, summary, &mut CostMeter::new()).max(rec_mii(
        &dfg,
        &la.latencies,
        &mut CostMeter::new(),
    ));
    let order = swing_order(&dfg, &la.latencies, mii, &mut CostMeter::new());
    bench("list_schedule", || {
        list_schedule(&dfg, &la, &order, mii, summary, &mut CostMeter::new())
    });
}

fn main() {
    bench_mindist();
    bench_orderings();
    bench_list_schedule();
}
