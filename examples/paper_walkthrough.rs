//! The paper's Figure 5 walkthrough, end to end, with commentary.
//!
//! Run with `cargo run -p veal --example paper_walkthrough`.

use veal::ir::pretty::render_dfg;
use veal::ir::streams::separate;
use veal::sched::{rec_mii, res_mii};
use veal::{AcceleratorConfig, CcaSpec, CostMeter, StaticHints, System, TranslationPolicy};

fn main() {
    let (body, ids) = veal::figure5_loop();
    println!("== the example loop body (paper Figure 5) ==");
    println!("(op ids below are the paper's op numbers minus one)\n");
    print!("{}", render_dfg(&body.dfg));

    // Step 1-2: identify the loop, separate control and memory streams.
    let mut meter = CostMeter::new();
    let sep = separate(&body.dfg, &mut meter).expect("separates");
    let summary = sep.summary();
    println!("\n== separating control and memory streams ==");
    println!(
        "streams: {} load, {} store; stripped control ops {:?} and address \
         generators {:?}",
        summary.loads, summary.stores, sep.control_ops, sep.addr_ops
    );

    // Step 3: CCA mapping.
    let mut dfg = sep.dfg;
    let groups = veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
    println!("\n== CCA mapping (greedy seed-and-grow) ==");
    for g in &groups {
        println!(
            "collapsed {:?} into a single CCA invocation (the paper's op 16)",
            g.members
        );
    }
    println!(
        "op {} (or) stays out: pairing it with op {} (add) would stretch \
         the mpy-or recurrence past II",
        ids.or, ids.add10
    );

    // Step 4: minimum II.
    let la = AcceleratorConfig::paper_design();
    let res = res_mii(&dfg, &la, summary, &mut meter);
    let rec = rec_mii(&dfg, &la.latencies, &mut meter);
    println!("\n== minimum II ==");
    println!("ResMII = {res} (five integer ops on two integer units)");
    println!("RecMII = {rec} (both recurrences are four cycles long)");

    // Steps 5-7: priority, scheduling, register assignment — via the VM.
    let system = System::paper(TranslationPolicy::fully_dynamic());
    let out = system.translate_loop(&body, &StaticHints::none());
    let cost = out.cost();
    let t = out.result.expect("figure 5 maps");
    println!("\n== modulo schedule ==");
    println!("{}", t.scheduled.schedule);
    println!(
        "register file usage: {} (live-ins/constants pinned: {} int, {} fp)",
        t.scheduled.registers.pressure,
        t.scheduled.registers.pinned_int,
        t.scheduled.registers.pinned_fp
    );
    println!("\ntotal dynamic translation cost: {cost} abstract instructions");

    // The static/dynamic tradeoff on this very loop.
    let hints = veal::compute_hints(&body, &la, Some(&CcaSpec::paper()));
    let hinted = System::paper(TranslationPolicy::static_hints());
    let out2 = hinted.translate_loop(&body, &hints);
    println!(
        "with the Figure 9 hint sections in the binary the VM spends only \
         {} instructions ({}x less)",
        out2.cost(),
        cost / out2.cost().max(1)
    );
}
