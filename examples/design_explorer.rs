//! A miniature design-space exploration in the style of paper §3.1:
//! sweep one accelerator resource at a time and report the fraction of
//! infinite-resource speedup retained, then price each candidate with the
//! area model.
//!
//! Run with `cargo run --release -p veal --example design_explorer`.

use veal::sim::dse::mean_speedup;
use veal::{AcceleratorConfig, CcaSpec, CpuModel};

fn main() {
    // A small, fast subset of the media/FP suite keeps this example quick;
    // `cargo run -p veal-bench --bin fig3` sweeps the whole suite.
    let apps: Vec<_> = ["rawcaudio", "cjpeg", "171.swim", "g721encode"]
        .iter()
        .filter_map(|n| veal::workloads::application(n))
        .collect();
    let cpu = CpuModel::arm11();
    let cca = CcaSpec::paper();
    let infinite = mean_speedup(&apps, &cpu, &AcceleratorConfig::infinite(), Some(&cca));
    println!("infinite-resource mean speedup: {infinite:.2}x\n");

    println!(
        "{:<34} {:>9} {:>9} {:>9}",
        "candidate", "speedup", "fraction", "mm2"
    );
    let candidates = [
        ("paper design point", AcceleratorConfig::paper_design()),
        (
            "half the FUs (1 int, 1 fp)",
            AcceleratorConfig::builder()
                .int_units(1)
                .fp_units(1)
                .build(),
        ),
        ("no CCA", AcceleratorConfig::builder().cca_units(0).build()),
        (
            "8 load streams / 2 agens",
            AcceleratorConfig::builder()
                .load_streams(8)
                .load_addr_gens(2)
                .build(),
        ),
        (
            "shallow control store (II<=8)",
            AcceleratorConfig::builder().max_ii(8).build(),
        ),
        (
            "double FUs (4 int, 4 fp, 2 CCA)",
            AcceleratorConfig::builder()
                .int_units(4)
                .fp_units(4)
                .cca_units(2)
                .build(),
        ),
    ];
    for (name, cfg) in candidates {
        let cca_opt = (cfg.cca_units > 0).then(|| cca.clone());
        let s = mean_speedup(&apps, &cpu, &cfg, cca_opt.as_ref());
        println!(
            "{:<34} {:>8.2}x {:>8.1}% {:>9.2}",
            name,
            s,
            100.0 * s / infinite,
            cfg.area().total()
        );
    }
    println!(
        "\nthe paper's point: the §3.2 design point sits at the knee —\n\
         nearly all of the attainable speedup at a fraction of the area of\n\
         the alternatives that close the remaining gap"
    );
}
