//! Quickstart: build a loop, translate it for the paper's accelerator,
//! and run an application through the full system.
//!
//! Run with `cargo run -p veal --example quickstart`.

use veal::{DfgBuilder, LoopBody, Opcode, StaticHints, System, TranslationPolicy};

fn main() {
    // 1. Describe an inner loop in the baseline ISA: a saturated
    //    multiply-accumulate over two input streams.
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let y = b.load_stream(1);
    let gain = b.live_in();
    let prod = b.op(Opcode::Mul, &[x, y]);
    let scaled = b.op(Opcode::Mul, &[prod, gain]);
    let acc = b.op(Opcode::Add, &[scaled]);
    b.loop_carried(acc, acc, 1); // acc += ...
    let hi = b.constant(1 << 20);
    let clipped = b.op(Opcode::Min, &[acc, hi]);
    b.store_stream(2, clipped);
    b.mark_live_out(acc);
    let body = LoopBody::new("mac.sat", b.finish());

    // 2. Translate it the way the VM would at runtime (fully dynamically).
    let system = System::paper(TranslationPolicy::fully_dynamic());
    let outcome = system.translate_loop(&body, &StaticHints::none());
    let cost = outcome.cost();
    match outcome.result {
        Ok(t) => {
            println!(
                "mapped onto the accelerator: II={} stages={} ({} CCA group(s))",
                t.scheduled.schedule.ii,
                t.scheduled.schedule.stage_count(),
                t.cca_groups
            );
            println!(
                "kernel throughput: one iteration every {} cycles; 1000 \
                 iterations take {} cycles",
                t.scheduled.schedule.ii,
                t.kernel_cycles(1000)
            );
            println!("translation cost: {cost} instructions\n");
        }
        Err(e) => println!("loop runs on the CPU instead: {e}\n"),
    }

    // 3. Run a whole application from the benchmark suite.
    let app = veal::workloads::application("rawcaudio").expect("suite app");
    let run = system.run(&app);
    println!(
        "{}: {:.2}x whole-application speedup over the 1-issue baseline \
         ({} loop translations, {:.1}% code-cache hit rate)",
        run.name,
        run.speedup(),
        run.translations,
        100.0 * run.cache.hit_rate()
    );
}
