//! Compare the VM's static/dynamic translation policies on one
//! application (a single row of the paper's Figure 10), including the
//! binary-compatibility story: the same hinted binary running on a system
//! with a *different* CCA.
//!
//! Run with `cargo run --release -p veal --example vm_policies`.

use veal::{run_application, AccelSetup, CcaSpec, CpuModel, System, TranslationPolicy};

fn main() {
    let app = veal::workloads::application("mpeg2dec").expect("suite app");
    let cpu = CpuModel::arm11();

    println!("mpeg2dec under each translation policy:");
    let rows = [
        ("no translation cost (static binary)", AccelSetup::native()),
        (
            "fully dynamic (Swing priority)",
            AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        ),
        (
            "fully dynamic (height priority)",
            AccelSetup::paper(TranslationPolicy::fully_dynamic_height()),
        ),
        (
            "static CCA + priority hints",
            AccelSetup::paper(TranslationPolicy::static_hints()),
        ),
    ];
    for (name, setup) in rows {
        let run = run_application(&app, &cpu, &setup);
        println!(
            "  {:<36} {:>5.2}x  (translation {:>9} cycles, {} translations)",
            name,
            run.speedup(),
            run.translation_cycles,
            run.translations
        );
    }

    // Binary compatibility: hints computed for the paper CCA still run —
    // and still help — on hardware with a narrower CCA, and on hardware
    // with no CCA at all.
    println!("\nthe same hinted binary on evolved hardware:");
    for (name, cca) in [
        ("paper CCA", Some(CcaSpec::paper())),
        ("narrow future CCA", Some(CcaSpec::narrow())),
        ("no CCA at all", None),
    ] {
        let mut setup = AccelSetup::paper(TranslationPolicy::static_hints());
        setup.cca = cca;
        if setup.cca.is_none() {
            setup.config.cca_units = 0;
        }
        let run = run_application(&app, &cpu, &setup);
        println!("  {:<20} {:>5.2}x", name, run.speedup());
    }
    println!(
        "\n(statically identified CCA subgraphs that the installed CCA cannot\n\
         execute as a unit simply run as individual ops — the binary never\n\
         breaks, which is the point of the abstraction)"
    );

    let native = System::native();
    let mean = native.mean_speedup(&veal::workloads::media_fp_suite());
    println!("\nfor reference, the suite-wide native mean is {mean:.2}x");
}
